"""Shared measurement harness for the benchmark suite.

Shared-runner noise has two shapes: slow *drift* (a CI neighbour spins
up, the CPU thermally throttles) and transient *spikes* (one round hits
a scheduler stall).  Comparing best-of-N timings taken on independent
sides misaligns both: drift lands asymmetrically on whichever side ran
later, and min-of-N silently picks two rounds that never shared machine
conditions.

The drift-cancelled estimator here interleaves the two configurations
within every round and reduces the per-round ratios with the *median*:
each ratio compares timings taken back to back (drift hits both sides
of one division equally), and the median discards rounds where a spike
hit one side.  ``bench_serve`` gates profiling overhead on it and
``repro.vmbench`` applies the same scheme to the tier-2/tier-1 ratio;
this module is the benchmark-side home for the primitives so every
bench script reports ratios and geomean rows the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter


def timed(fn):
    """Run ``fn`` and return ``(elapsed_seconds, payload)``."""
    started = perf_counter()
    payload = fn()
    return perf_counter() - started, payload


def median(values):
    """The midpoint value (mean of the middle pair for even counts)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of an empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def geomean(values):
    """Geometric mean — the right average for ratios and speedups."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class ABEstimate:
    """One drift-cancelled A/B measurement.

    ``ratios`` holds the per-round ``a/b`` elapsed-time ratios;
    ``median_ratio`` is the gate-worthy reduction.  ``best_a``/``best_b``
    are the fastest ``(elapsed, payload)`` observations of each side —
    the right numbers for absolute-time reporting.
    """

    ratios: list
    median_ratio: float
    best_a: tuple
    best_b: tuple


def interleaved_ratio(run_a, run_b, repeats: int) -> ABEstimate:
    """Alternate ``run_a``/``run_b`` for ``repeats`` rounds.

    Both runners return ``(elapsed_seconds, payload)`` — wrap plain
    callables with :func:`timed`.  The two sides run back to back inside
    every round, so machine drift cancels in each ratio instead of
    biasing whichever side ran later.
    """
    if repeats < 1:
        raise ValueError("need at least one round")
    best_a = best_b = None
    ratios = []
    for _ in range(repeats):
        timed_a = run_a()
        timed_b = run_b()
        ratios.append(timed_a[0] / timed_b[0])
        if best_a is None or timed_a[0] < best_a[0]:
            best_a = timed_a
        if best_b is None or timed_b[0] < best_b[0]:
            best_b = timed_b
    return ABEstimate(
        ratios=ratios,
        median_ratio=median(ratios),
        best_a=best_a,
        best_b=best_b,
    )
