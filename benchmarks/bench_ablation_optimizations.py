"""Ablation: the backend's IR optimizations and the groupjoin fusion.

DESIGN.md calls these design choices out; this measures what each buys.
Not a paper figure — the paper takes Umbra's optimizer as given.
"""

from repro import PlannerOptions
from repro.data.queries import ALL_QUERIES

from benchmarks.conftest import report

GROUPJOIN_SQL = """
select o_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue
from orders, lineitem
where o_orderkey = l_orderkey
group by o_orderkey
"""


def test_backend_optimizations_ablation(tpch, benchmark):
    sql = ALL_QUERIES["q1"].sql

    def measure():
        optimized = tpch.execute(sql)
        unoptimized = tpch.execute(sql, optimize_backend=False)
        return optimized, unoptimized

    optimized, unoptimized = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert sorted(optimized.rows) == sorted(unoptimized.rows)
    gain = unoptimized.cycles / optimized.cycles - 1

    # groupjoin fusion ablation
    plain = tpch.execute(GROUPJOIN_SQL)
    fused = tpch.execute(
        GROUPJOIN_SQL, planner_options=PlannerOptions(enable_groupjoin=True)
    )
    assert sorted(r[0] for r in plain.rows) == sorted(r[0] for r in fused.rows)
    fusion_gain = plain.cycles / fused.cycles - 1

    lines = [
        "Ablation — what the optimizations buy (TPC-H Q1 / groupjoin query)",
        "",
        f"constant folding + CSE + DCE: {unoptimized.cycles:,} -> "
        f"{optimized.cycles:,} cycles  ({gain * 100:+.1f}% without them)",
        f"groupjoin fusion:             {plain.cycles:,} -> {fused.cycles:,} "
        f"cycles  ({fusion_gain * 100:+.1f}% from fusing)",
    ]
    report("Optimization ablations", "\n".join(lines))

    assert unoptimized.cycles >= optimized.cycles
    assert fused.cycles < plain.cycles * 1.2  # fusion must not hurt badly
