"""Ablation: multicore morsel-driven execution (§5's multicore support).

Not a paper figure — the paper runs single-threaded for experimental
clarity while stating Umbra and Tailored Profiling support multicore.
This benchmark demonstrates that support: speedup of the slowest-worker
clock, per-worker sample lanes, and attribution quality independent of the
worker count.
"""

from repro.data.queries import ALL_QUERIES
from repro.profiling.reports import render_worker_timeline

from benchmarks.conftest import report

WORKER_COUNTS = (1, 2, 4, 8)


def test_parallel_scaling_and_attribution(tpch, benchmark):
    sql = ALL_QUERIES["q1"].sql

    def measure():
        return {w: tpch.execute(sql, workers=w).cycles for w in WORKER_COUNTS}

    times = benchmark.pedantic(measure, rounds=1, iterations=1)

    profile = tpch.profile(sql, workers=4)
    summary = profile.attribution_summary()

    lines = [
        "Multicore ablation — TPC-H Q1, morsel-driven workers",
        "",
        f"{'workers':>8} {'cycles (wall)':>14} {'speedup':>8}",
    ]
    for w in WORKER_COUNTS:
        lines.append(f"{w:>8} {times[w]:>14,} {times[1] / times[w]:>7.2f}x")
    lines.append("")
    lines.append("per-worker sample lanes (4 workers):")
    lines.append(render_worker_timeline(profile, bins=40))
    lines.append("")
    lines.append(
        f"attribution at 4 workers: {summary.attributed_share * 100:.1f}% "
        f"(operators {summary.operator_share * 100:.1f}%)"
    )
    report("Multicore ablation", "\n".join(lines))

    assert times[2] < times[1] and times[4] < times[2]
    assert times[1] / times[4] > 2.0
    assert summary.attributed_share > 0.9
