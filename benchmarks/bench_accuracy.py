"""§6.3: accuracy validation.

1. Register-tag vs call-stack cross-check: recording both payloads in every
   sample, the two disambiguation mechanisms must agree on shared-location
   samples (paper: tagging *all* instructions yields 0 IP/tag mismatches).
2. TSC plausibility: cycle-event sample timestamps reflect the sampling
   distance and adapt when the period changes.
3. Event plausibility: LOADS samples point at load instructions.
"""

from repro import Event, ProfilerConfig
from repro.data.queries import ALL_QUERIES
from repro.vm.isa import REG_TAG, CodeRegion, Opcode

from benchmarks.conftest import report

CHECK_QUERIES = ["q2", "q16", "q18"]  # the paper cross-checks these three


def test_accuracy_crosscheck_and_timestamps(tpch, benchmark):
    lines = ["§6.3 — accuracy validation", ""]

    # 1. register-tag vs call-stack agreement on shared runtime samples
    total_shared = 0
    mismatches = 0

    def run_crosschecks():
        nonlocal total_shared, mismatches
        for name in CHECK_QUERIES:
            profile = tpch.profile(
                ALL_QUERIES[name].sql, ProfilerConfig(crosscheck=True)
            )
            processor = profile.processor
            for sample in profile.samples:
                if profile.program.region_at(sample.ip) is not CodeRegion.RUNTIME:
                    continue
                tag = sample.registers[REG_TAG]
                tag_task = profile.tagging.task_by_id(tag)
                stack_task = None
                for call_site in reversed(sample.callstack):
                    if profile.program.region_at(call_site) is CodeRegion.QUERY:
                        site_ir = profile.program.debug.get(call_site)
                        if site_ir is not None:
                            tasks = profile.tagging.tasks_of_instruction(site_ir)
                            if tasks:
                                stack_task = tasks[0]
                                break
                if tag_task is None or stack_task is None:
                    continue
                total_shared += 1
                if tag_task is not stack_task:
                    mismatches += 1
        return total_shared

    benchmark.pedantic(run_crosschecks, rounds=1, iterations=1)
    lines.append(
        f"register-tag vs call-stack cross-check: {total_shared} shared-location "
        f"samples, {mismatches} mismatches (paper: 0 mismatches)"
    )

    # 2. timestamp spacing follows the sampling period
    spacing_report = []
    for period in (2000, 5000, 10000):
        profile = tpch.profile(
            ALL_QUERIES["q16"].sql,
            ProfilerConfig(event=Event.CYCLES, period=period),
        )
        tscs = [s.tsc for s in profile.samples]
        deltas = [b - a for a, b in zip(tscs, tscs[1:])]
        trimmed = sorted(deltas)[: max(1, int(len(deltas) * 0.8))]
        median = trimmed[len(trimmed) // 2]
        spacing_report.append((period, median))
        assert median >= period, "samples cannot be closer than the period"
        assert median < period * 4, "spacing must track the configured period"
    lines.append("")
    lines.append("TSC spacing (cycles event): period -> median inter-sample gap")
    for period, median in spacing_report:
        lines.append(f"  {period:>6} -> {median}")

    # 3. loads-event samples land on load instructions
    profile = tpch.profile(
        ALL_QUERIES["q16"].sql,
        ProfilerConfig(event=Event.LOADS, period=300, record_memaddr=True),
    )
    checked = bad = 0
    for sample in profile.samples:
        if profile.program.region_at(sample.ip) is CodeRegion.KERNEL:
            continue
        checked += 1
        if profile.program.code[sample.ip][0] != Opcode.LOAD:
            bad += 1
    lines.append("")
    lines.append(
        f"event plausibility: {checked} LOADS samples, {bad} not pointing at a load"
    )
    report("Accuracy validation", "\n".join(lines))

    assert mismatches == 0
    assert total_shared > 10
    assert bad == 0
