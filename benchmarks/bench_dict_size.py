"""§6.2: Tagging Dictionary size and sample storage.

Paper: ~1320 LLVM IR instructions per TPC-H query, 24 B per dictionary
entry → ~30 kB per query; samples are 54 B with registers (265 B with call
stacks), i.e. ~77 MB/s at 0.7 MHz.
"""

from repro import ProfilerConfig
from repro.data.queries import ALL_QUERIES

from benchmarks.conftest import report


def test_dictionary_and_sample_storage(tpch, benchmark):
    def measure():
        rows = []
        for name in sorted(ALL_QUERIES, key=lambda n: int(n[1:])):
            profile = tpch.profile(ALL_QUERIES[name].sql)
            ir_count = profile.ir_module.instruction_count()
            rows.append((
                name,
                ir_count,
                profile.tagging.entry_count,
                profile.tagging.size_bytes,
                profile.machine.samples.storage_bytes(profile.config.pmu_config()),
            ))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "§6.2 — Tagging Dictionary and sample storage per query",
        "",
        f"{'query':<6} {'IR instrs':>10} {'dict entries':>13} "
        f"{'dict bytes':>11} {'sample bytes':>13}",
    ]
    for name, ir_count, entries, size, sample_bytes in rows:
        lines.append(
            f"{name:<6} {ir_count:>10} {entries:>13} {size:>11,} {sample_bytes:>13,}"
        )
    avg_ir = sum(r[1] for r in rows) / len(rows)
    avg_size = sum(r[3] for r in rows) / len(rows)
    lines.append("-" * 56)
    lines.append(
        f"mean IR instructions/query: {avg_ir:.0f}   (paper: ~1320)"
    )
    lines.append(f"mean dictionary size: {avg_size / 1024:.1f} kB   (paper: ~30 kB)")
    report("Tagging Dictionary size", "\n".join(lines))

    assert 100 < avg_ir < 5000
    assert all(entries > 0 for _, _, entries, _, _ in rows)
    # the dictionary must stay tiny relative to the sample stream
    assert all(size < 200 * 1024 for _, _, _, size, _ in rows)
