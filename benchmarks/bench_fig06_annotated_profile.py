"""Figure 6: the running example's annotated plan (6a) and annotated IR (6b).

Reproduces the Listing 1 lesson: the hash join owns the single hottest
instruction (the directory-lookup load), but the aggregation's samples,
spread across many instructions, add up to more — visible only once
instructions are attributed to operators.
"""

from repro.data.queries import EXAMPLE_QUERY

from benchmarks.conftest import report


def test_fig06_annotated_profile(example_db, benchmark):
    profile = benchmark.pedantic(
        lambda: example_db.profile(EXAMPLE_QUERY.sql), rounds=1, iterations=1
    )

    plan_text = profile.annotated_plan()
    ir_text = profile.annotated_ir(pipeline_index=1)

    # quantify the lesson: hottest single join instruction vs. aggregation sum
    counts: dict[int, int] = {}
    for attribution in profile.attributions:
        if attribution.ir_id is not None and attribution.category == "operator":
            counts[attribution.ir_id] = counts.get(attribution.ir_id, 0) + 1
    total = sum(counts.values()) or 1
    per_op: dict[str, float] = {}
    hottest_join_line = 0.0
    for ir_id, count in counts.items():
        tasks = profile.tagging.tasks_of_instruction(ir_id)
        for task in tasks:
            kind = task.operator.kind
            per_op[kind] = per_op.get(kind, 0.0) + count / len(tasks)
            if kind == "hashjoin":
                hottest_join_line = max(hottest_join_line, count / total)

    groupby_share = per_op.get("groupby", 0.0) / total
    lines = [
        "Fig 6a — operator-annotated plan (example query):",
        plan_text,
        "",
        f"hottest single join instruction: {hottest_join_line * 100:.1f}% "
        "(the Listing 1 'directory lookup' load)",
        f"aggregation total (spread over many lines): {groupby_share * 100:.1f}%",
        "paper's lesson: the spread-out aggregation outweighs the hot join line",
        "",
        "Fig 6b — annotated IR excerpt (probe pipeline):",
    ]
    lines += ir_text.splitlines()[:42]
    report("Fig 6 annotated profile", "\n".join(lines))

    assert groupby_share > hottest_join_line
