"""Figure 7: operator activity over the query runtime.

The example query's profile, bucketed by sample timestamp: the probe-side
scan/join/aggregation are interleaved throughout (pipelined execution),
while the build phase is confined to the start — information invisible in
any aggregate profile.
"""

from repro.data.queries import EXAMPLE_QUERY

from benchmarks.conftest import report


def test_fig07_operator_activity(example_db, benchmark):
    profile = benchmark.pedantic(
        lambda: example_db.profile(EXAMPLE_QUERY.sql), rounds=1, iterations=1
    )
    timeline = profile.activity_timeline(bins=30)
    rendered = profile.render_timeline(bins=30)
    report(
        "Fig 7 operator activity over time",
        rendered
        + "\n\n(glyphs encode each operator's share of samples per time bucket)",
    )

    assert timeline.bins
    by_kind_first = {}
    by_kind_last = {}
    first_half = timeline.bins[: len(timeline.bins) // 2]
    last_half = timeline.bins[len(timeline.bins) // 2 :]
    for bins, acc in ((first_half, by_kind_first), (last_half, by_kind_last)):
        for bucket in bins:
            for op, weight in bucket.by_operator.items():
                acc[op.kind] = acc.get(op.kind, 0.0) + weight
    # the join's build phase happens early: the build-side scan of products
    # must not appear in the second half
    assert by_kind_first.get("groupby", 0) > 0
    assert by_kind_last.get("groupby", 0) > 0
