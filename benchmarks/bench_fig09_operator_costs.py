"""Figure 9: the domain-expert use case.

lineitem ⋈ orders with a per-orderkey average: the report aggregates
samples to the plan level.  Paper's numbers (SF 1): aggregation 65.1 %,
join 32.4 %, scans ~2 %; the expected *shape* is aggregation > join >>
scans, which must hold here too.
"""

from repro.data.queries import FIG9_QUERY

from benchmarks.conftest import report


def test_fig09_domain_expert_costs(tpch, benchmark):
    profile = benchmark.pedantic(
        lambda: tpch.profile(FIG9_QUERY.sql), rounds=1, iterations=1
    )
    costs = profile.operator_costs()
    by_kind: dict[str, float] = {}
    for op, share in costs.items():
        by_kind[op.kind] = by_kind.get(op.kind, 0.0) + share

    lines = ["Fig 9 — per-operator cost (domain-expert view):", ""]
    lines.append(profile.annotated_plan())
    lines.append("")
    lines.append(f"{'operator kind':<12} {'ours':>8}   paper (SF1)")
    paper = {"groupby": 65.1, "hashjoin": 32.4, "select": 0.3, "scan": 2.2}
    for kind in ("groupby", "hashjoin", "select", "scan"):
        ours = by_kind.get(kind, 0.0) * 100
        lines.append(f"{kind:<12} {ours:7.1f}%   {paper[kind]:.1f}%")
    lines.append("")
    lines.append("EXPLAIN ANALYZE (tuple counts) for contrast:")
    lines.append(tpch.explain_analyze(FIG9_QUERY.sql))
    report("Fig 9 domain expert operator costs", "\n".join(lines))

    # shape: aggregation and join dominate; aggregation > scans; filter tiny
    assert by_kind.get("groupby", 0) + by_kind.get("hashjoin", 0) > 0.6
    assert by_kind.get("select", 0) < 0.1
