"""Figures 10/11: the optimizer-developer use case.

Two join orders for lineitem ⋈ orders ⋈ partsupp that the cardinality
model cannot distinguish.  Because lineitem is clustered by l_orderkey and
o_orderdate correlates with o_orderkey, the date filter on orders selects a
contiguous orderkey prefix: during the probe scan the orders join flips
from always-match to never-match partway through.  The activity timeline
makes the phase change visible — the paper's point is that only the time
dimension reveals *why* the plans differ.

(Paper note: on real out-of-order hardware the partsupp-first plan won via
branch-prediction effects; in our in-order cost model the orders-first plan
wins because the phase change lets it skip the second probe entirely for
the tail of the scan.  The *methodology* — timeline reveals the phase
transition and the data-clustering cause — is what this reproduces; see
EXPERIMENTS.md.)
"""

from benchmarks.conftest import report

SQL = """
select sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, orders, partsupp
where l_orderkey = o_orderkey and l_partkey = ps_partkey
  and l_suppkey = ps_suppkey
  and o_orderdate < date '1994-06-01'
"""

ORDERS_FIRST = ["lineitem", "orders", "partsupp"]
PARTSUPP_FIRST = ["lineitem", "partsupp", "orders"]


def _join_activity(profile, key_marker: str):
    """Per-bin activity share of the join whose build keys mention a column."""
    timeline = profile.activity_timeline(bins=20)
    target = None
    for op in profile.physical.walk():
        if op.kind == "hashjoin":
            build_names = {iu.name for iu in op.build_payload} | {
                str(k) for k in op.build_keys
            }
            if any(key_marker in n for n in build_names):
                target = op
    shares = [bucket.share_of(target) for bucket in timeline.bins]
    return shares


def test_fig11_two_plans_and_phase_change(tpch, benchmark):
    result_a = tpch.execute(SQL, join_order_hint=ORDERS_FIRST)
    result_b = tpch.execute(SQL, join_order_hint=PARTSUPP_FIRST)
    assert result_a.rows == result_b.rows

    profile_a = benchmark.pedantic(
        lambda: tpch.profile(SQL, join_order_hint=ORDERS_FIRST),
        rounds=1, iterations=1,
    )
    profile_b = tpch.profile(SQL, join_order_hint=PARTSUPP_FIRST)

    # the Fig. 11 signature, in plan A: once the scan passes the orderkey
    # range selected by the date filter, the orders join eliminates every
    # tuple and the partsupp hash table is no longer probed at all
    partsupp_a = _join_activity(profile_a, "ps_")
    early = sum(partsupp_a[:8]) / 8
    late = sum(partsupp_a[-4:]) / 4

    lines = [
        "Fig 10/11 — two plans, same estimated cardinalities:",
        "",
        f"plan A (probe orders first):   {result_a.cycles:>12,} cycles",
        f"plan B (probe partsupp first): {result_b.cycles:>12,} cycles",
        f"winner: {'A' if result_a.cycles < result_b.cycles else 'B'} "
        f"by {abs(result_b.cycles - result_a.cycles) / max(result_a.cycles, result_b.cycles) * 100:.1f}%",
        "",
        "plan A activity over time:",
        profile_a.render_timeline(bins=30),
        "",
        "plan B activity over time:",
        profile_b.render_timeline(bins=30),
        "",
        "partsupp-join activity in plan A, start vs end of runtime:",
        f"  early {early * 100:.1f}%   late {late * 100:.1f}%",
        "(the phase change: once the scan passes the date cutoff's orderkey",
        " range, the orders join eliminates all tuples and the partsupp hash",
        " table is not probed at all — the Fig. 11 signature)",
    ]
    report("Fig 10-11 optimizer use case", "\n".join(lines))

    # the two plans must differ measurably, and the phase change must show
    assert abs(result_a.cycles - result_b.cycles) > 0.03 * result_a.cycles
    assert late < 0.5 * early, "partsupp probing must collapse after the cutoff"

