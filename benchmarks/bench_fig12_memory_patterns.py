"""Figure 12: per-operator memory-access patterns.

Sampling MEM_LOADS with address capture, then attributing each access to
its operator: table scans show linear address progressions (prefetcher
friendly), hash join and aggregation scatter across their tables — the
paper's visual, quantified here by per-band time/address correlation.
"""

from repro import Event, ProfilerConfig
from repro.data.queries import FIG9_QUERY
from repro.plan.physical import PhysicalGroupBy, PhysicalHashJoin, PhysicalScan

from benchmarks.conftest import report


def test_fig12_memory_access_patterns(tpch, benchmark):
    config = ProfilerConfig(event=Event.LOADS, period=100, record_memaddr=True)
    profile = benchmark.pedantic(
        lambda: tpch.profile(FIG9_QUERY.sql, config), rounds=1, iterations=1
    )
    mem = profile.memory_profile()

    lines = [
        "Fig 12 — memory access patterns per operator",
        "(band linearity: +1.0 = sequential scan, ~0 = scattered hash access)",
        "",
        f"{'operator':<22} {'samples':>8} {'addr range':>12} {'linearity':>10}",
    ]
    rows = []
    for op, points in sorted(mem.accesses.items(), key=lambda kv: kv[0].op_id):
        rows.append((op, len(points), mem.address_range(op), mem.band_linearity(op)))
        lines.append(
            f"{op.label:<22} {len(points):>8} {mem.address_range(op):>12,}"
            f" {mem.band_linearity(op):>+10.2f}"
        )
    report("Fig 12 memory access patterns", "\n".join(lines))

    scans = [r for r in rows if isinstance(r[0], PhysicalScan) and r[1] >= 10]
    hashers = [
        r for r in rows
        if isinstance(r[0], (PhysicalHashJoin, PhysicalGroupBy)) and r[1] >= 10
    ]
    assert scans and hashers
    assert all(lin > 0.85 for _, _, _, lin in scans), "scans must be linear"
    assert all(abs(lin) < 0.5 for _, _, _, lin in hashers), (
        "hash access must be scattered"
    )
