"""Figure 13: profiling overhead vs. sampling frequency, per payload.

Paper (TPC-H Q16, sample every 5000 events): IP+time 35 %, +registers 38 %
(Register Tagging's payload), IP+call-stack 529 %.  Shape requirements:
overhead grows with frequency; the register payload adds a few percent;
call-stack sampling is an order of magnitude above both.
"""

import pytest

from repro import ProfilerConfig, ProfilingMode
from repro.data.queries import ALL_QUERIES

from benchmarks.conftest import report

SQL = ALL_QUERIES["q16"].sql  # the paper uses TPC-H Q16 for this figure

MODES = [
    ("IP, Time", ProfilingMode.NONE),
    ("IP, Time, Registers", ProfilingMode.REGISTER_TAGGING),
    ("IP, Callstack", ProfilingMode.CALLSTACK),
]
PERIODS = [20000, 10000, 5000, 2500]
PAPER_AT_5000 = {"IP, Time": 35.0, "IP, Time, Registers": 38.0, "IP, Callstack": 529.0}


def test_fig13_overhead_sweep(tpch, benchmark):
    base = benchmark.pedantic(
        lambda: tpch.execute(SQL), rounds=1, iterations=1
    ).cycles

    table: dict[tuple[str, int], float] = {}
    for label, mode in MODES:
        for period in PERIODS:
            profiled = tpch.profile(SQL, ProfilerConfig(mode=mode, period=period))
            table[(label, period)] = (profiled.result.cycles / base - 1) * 100

    lines = [
        "Fig 13 — sampling overhead vs frequency (TPC-H Q16-adapted)",
        "",
        f"{'payload':<22}" + "".join(f"  period={p:<6}" for p in PERIODS)
        + "  paper@5000",
    ]
    for label, _ in MODES:
        row = f"{label:<22}"
        for period in PERIODS:
            row += f"  {table[(label, period)]:>8.1f}%   "
        row += f"  {PAPER_AT_5000[label]:.0f}%"
        lines.append(row)
    report("Fig 13 overhead vs sampling frequency", "\n".join(lines))

    for label, _ in MODES:
        overheads = [table[(label, p)] for p in PERIODS]
        assert overheads == sorted(overheads), f"{label}: must grow with frequency"
    at_default = {label: table[(label, 5000)] for label, _ in MODES}
    assert at_default["IP, Time"] < at_default["IP, Time, Registers"]
    assert at_default["IP, Time, Registers"] < at_default["IP, Time"] + 15
    assert at_default["IP, Callstack"] > 5 * at_default["IP, Time, Registers"]
    # land in the paper's band at the default frequency
    assert 15 < at_default["IP, Time"] < 70
    assert 100 < at_default["IP, Callstack"] < 1500
