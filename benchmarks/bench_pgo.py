"""Profile-guided optimization: closing the loop the paper leaves open.

The Fig. 10/11 workflow has the optimizer developer *manually* compare two
hinted join orders and read the profiles.  With the ``repro.pgo`` subsystem
the same observations — per-operator tuple counts harvested from the task
counters, branch condition-truth rates, instruction hotness — flow back
into the planner and backend automatically:

- ``test_fig11_feedback_recovers_cheap_plan``: profile ONLY the bad hinted
  plan; ``execute(pgo=True)`` without any hint then lands on the cheap
  join order, because cardinality feedback keys are plan-independent.
- ``test_pgo_improves_hint_sensitive_query``: Q8's ``p_type`` predicate is
  estimated at 1/3 selectivity but observed near zero; feedback restructures
  the join tree for a >5% simulated-cycle win, with identical results.
- ``test_pgo_profile_still_attributes``: profiles taken from PGO-compiled
  plans keep full operator attribution (the tagging dictionary tracks the
  re-laid-out code), so the paper's methodology survives the feedback loop.

These use fresh Database instances rather than the shared session fixture:
PGO mutates engine state (plan cache, profile store) and must not perturb
the other benchmarks.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report

from repro import Database
from repro.data.queries import ALL_QUERIES

# the Fig. 10/11 pair: two join orders the cardinality model cannot tell
# apart (see bench_fig11_plan_comparison.py for the phase-change analysis)
PAIR_SQL = """
select sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, orders, partsupp
where l_orderkey = o_orderkey and l_partkey = ps_partkey
  and l_suppkey = ps_suppkey
  and o_orderdate < date '1994-06-01'
"""

ORDERS_FIRST = ["lineitem", "orders", "partsupp"]
PARTSUPP_FIRST = ["lineitem", "partsupp", "orders"]


def _fresh_db():
    return Database.tpch(scale=BENCH_SCALE, seed=BENCH_SEED)


def test_fig11_feedback_recovers_cheap_plan(benchmark):
    db = _fresh_db()
    good = db.execute(PAIR_SQL, join_order_hint=ORDERS_FIRST)
    bad = db.execute(PAIR_SQL, join_order_hint=PARTSUPP_FIRST)
    assert good.rows == bad.rows
    cheap = min(good.cycles, bad.cycles)

    # feed back observations from ONLY the worse hinted plan — the
    # developer explored one wrong alternative and profiled it
    db.enable_pgo()
    db.profile(PAIR_SQL, join_order_hint=PARTSUPP_FIRST, pgo=True)

    informed = benchmark.pedantic(
        lambda: db.execute(PAIR_SQL, pgo=True), rounds=1, iterations=1,
    )
    assert informed.rows == good.rows

    lines = [
        "Fig 10/11 pair, closed-loop instead of manual hints:",
        "",
        f"hinted orders-first:   {good.cycles:>12,} cycles",
        f"hinted partsupp-first: {bad.cycles:>12,} cycles",
        f"pgo (no hint, trained on partsupp-first only): "
        f"{informed.cycles:>12,} cycles",
        "",
        "cardinality feedback is keyed by operator structure, not plan",
        "position, so observations from the bad plan still identify the",
        "cheap join order.",
    ]
    report("PGO recovers Fig 11 plan", "\n".join(lines))

    # the feedback-informed plan must match the cheaper hinted plan
    assert informed.cycles == cheap


def test_pgo_improves_hint_sensitive_query(benchmark):
    db = _fresh_db()
    sql = ALL_QUERIES["q8"].sql
    baseline = db.execute(sql)

    db.enable_pgo()
    db.profile(sql, pgo=True)
    tuned = benchmark.pedantic(
        lambda: db.execute(sql, pgo=True), rounds=1, iterations=1,
    )
    assert tuned.rows == baseline.rows
    win = (baseline.cycles - tuned.cycles) / baseline.cycles

    # second run replays the cached compiled plan
    again = db.execute(sql, pgo=True)
    assert again.cycles == tuned.cycles
    assert db.plan_cache_hits >= 1

    lines = [
        "Q8 with and without profile feedback:",
        "",
        f"default plan:      {baseline.cycles:>12,} cycles",
        f"feedback-informed: {tuned.cycles:>12,} cycles",
        f"improvement:       {win * 100:>11.1f}%",
        "",
        "the p_type predicate is estimated at 1/3 selectivity but observed",
        "near zero; feedback moves the part join to the bottom of the tree.",
        f"plan cache: {db.plan_cache_hits} hit(s), "
        f"{db.plan_cache_misses} miss(es)",
    ]
    report("PGO on-off delta (Q8)", "\n".join(lines))

    # acceptance: at least a 5% simulated-cycle improvement
    assert win >= 0.05


def test_pgo_profile_still_attributes():
    db = _fresh_db()
    sql = ALL_QUERIES["q5"].sql
    db.enable_pgo()
    first = db.profile(sql, pgo=True)
    second = db.profile(sql, pgo=True)  # compiled with feedback applied
    for profile in (first, second):
        summary = profile.attribution_summary()
        assert summary.total_samples > 0
        assert summary.operator_share > 0.5
    assert first.result.rows == second.result.rows
    feedback = db.pgo_store.feedback(sql)
    assert feedback is not None and feedback.runs == 2
