"""Portability (§6.4): the same profiling stack serves a second frontend.

One computation expressed twice — as SQL and as the streaming EventFlow
DSL — produces identical results, near-identical execution costs (same
physical algebra underneath), and profiles whose reports speak each
frontend's own vocabulary.  The Tagging Dictionary, post-processing, and
reports required zero changes for the second system.
"""

from repro.streaming import EventFlow

from benchmarks.conftest import report

SQL = """
select l_shipdate - (l_shipdate % 30) as window_start, l_returnflag,
       sum(l_extendedprice * (1 - l_discount)) as revenue,
       count(*) as events
from lineitem
where l_quantity > 10
group by l_shipdate - (l_shipdate % 30), l_returnflag
order by window_start, l_returnflag
"""


def make_flow(db):
    return (
        EventFlow(db, "lineitem", label="shipments")
        .where("l_quantity > 10")
        .derive(revenue="l_extendedprice * (1 - l_discount)")
        .tumbling_window("l_shipdate", days=30)
        .aggregate(by=["window_start", "l_returnflag"],
                   totals={"revenue": "sum(revenue)", "events": "count(*)"})
        .order_by("window_start", "l_returnflag")
    )


def test_portability_sql_vs_streaming(tpch, benchmark):
    sql_result = tpch.execute(SQL)
    flow_result = benchmark.pedantic(
        lambda: make_flow(tpch).run(), rounds=1, iterations=1
    )

    # same values (the SQL variant reports raw day numbers for the window)
    assert len(sql_result.rows) == len(flow_result.rows)
    for sql_row, flow_row in zip(sql_result.rows, flow_result.rows):
        assert sql_row[1:] == flow_row[1:]

    sql_profile = tpch.profile(SQL)
    flow_profile = make_flow(tpch).profile()
    sql_summary = sql_profile.attribution_summary()
    flow_summary = flow_profile.attribution_summary()

    lines = [
        "Portability — one computation, two frontends, one profiling stack",
        "",
        f"{'':24} {'SQL':>14} {'EventFlow DSL':>14}",
        f"{'rows':24} {len(sql_result.rows):>14} {len(flow_result.rows):>14}",
        f"{'cycles':24} {sql_result.cycles:>14,} {flow_result.cycles:>14,}",
        f"{'samples attributed':24} "
        f"{sql_summary.attributed_share * 100:>13.1f}% "
        f"{flow_summary.attributed_share * 100:>13.1f}%",
        "",
        "SQL's report vocabulary:",
        *("  " + line for line in sql_profile.annotated_plan().splitlines()[:4]),
        "",
        "the DSL's report vocabulary (same stack, its own terms):",
        *("  " + line for line in flow_profile.annotated_plan().splitlines()[:5]),
    ]
    report("Portability SQL vs streaming DSL", "\n".join(lines))

    assert flow_summary.attributed_share > 0.9
    ratio = flow_result.cycles / sql_result.cycles
    assert 0.8 < ratio < 1.3, "same algebra should cost about the same"
    assert "window-agg#" in flow_profile.annotated_plan()
    assert "group by#" in sql_profile.annotated_plan()
