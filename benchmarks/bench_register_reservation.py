"""§6.2: the cost of reserving the tag register.

Register Tagging removes one register from the allocator's pool, so the
generated code spills more — paper: 2.8 % average slowdown over all 22
TPC-H queries.  Measured here by running every query with and without the
reservation at a sampling period high enough that no sample ever fires
(isolating the code-quality effect).
"""

from repro import ProfilerConfig, ProfilingMode
from repro.data.queries import ALL_QUERIES

from benchmarks.conftest import report

NO_SAMPLES = 1 << 40  # period so large the PMU never fires


def test_register_reservation_slowdown(tpch, benchmark):
    def measure():
        rows = []
        for name in sorted(ALL_QUERIES, key=lambda n: int(n[1:])):
            sql = ALL_QUERIES[name].sql
            plain = tpch.execute(sql).cycles
            reserved = tpch.profile(
                sql,
                ProfilerConfig(mode=ProfilingMode.REGISTER_TAGGING,
                               period=NO_SAMPLES),
            ).result.cycles
            rows.append((name, plain, reserved, reserved / plain - 1))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "§6.2 — slowdown from reserving the tag register (no sampling)",
        "",
        f"{'query':<6} {'plain cycles':>14} {'reserved':>14} {'slowdown':>9}",
    ]
    for name, plain, reserved, slowdown in rows:
        lines.append(
            f"{name:<6} {plain:>14,} {reserved:>14,} {slowdown * 100:>8.2f}%"
        )
    mean = sum(r[3] for r in rows) / len(rows)
    lines.append("-" * 46)
    lines.append(f"mean slowdown: {mean * 100:.2f}%   (paper: 2.8%)")
    report("Register reservation overhead", "\n".join(lines))

    assert -0.005 < mean < 0.12, "reservation cost should be low single digits"
    assert any(r[3] > 0 for r in rows), "some queries must feel the pressure"
