"""Concurrent-service throughput: always-on profiling vs profiling off.

The serving claim is that keeping the PMU armed across every production
query (period ``SERVE_PERIOD_CYCLES``) stays within the paper-style 15%
throughput budget while attributing ≥99% of samples to the right (query,
operator) pair.  The on/off runs alternate round by round and the gate
uses the median of per-round ratios, so machine drift on shared runners
cancels instead of flaking the build; the measured trajectory is what
``BENCH_serve.json`` tracks run over run.
"""

from pathlib import Path
from time import perf_counter

from benchmarks.conftest import report

from repro import Database
from repro.serve import (
    QueryService,
    ServiceConfig,
    run_workload,
    synthetic_workload,
)
from repro.serve.profiler import percentile
from repro.vmbench import append_trajectory

# locally measured overhead is ~10% at the default period; the gate
# enforces the paper-style 15% budget on the drift-cancelled median,
# catching a real regression of the always-on sampling path
OVERHEAD_CEILING_PCT = 15.0
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

QUERIES = 32
CLIENTS = 4
REPEATS = 5


def _build(profiling: bool):
    database = Database.example(n_sales=6000, n_products=150)
    service = QueryService(database, ServiceConfig(
        workers=4, max_inflight=8, profiling=profiling,
    ))
    items = synthetic_workload(service, queries=QUERIES, clients=CLIENTS)
    service.warm(dict.fromkeys(item.sql for item in items))
    return service, items


def _run_once(service, items):
    started = perf_counter()
    summary = run_workload(service, items, warm=False)
    elapsed = perf_counter() - started
    assert summary.clean, "benchmark workload must run clean"
    return elapsed, summary


def _describe(service, items, best) -> dict:
    elapsed, summary = best
    stats = service.stats()
    latencies = sorted(r.latency_cycles for r in summary.results if r.ok)
    return {
        "elapsed_s": round(elapsed, 4),
        "qps": round(len(items) / elapsed, 2),
        "latency_p50_cycles": percentile(latencies, 0.50),
        "latency_p95_cycles": percentile(latencies, 0.95),
        "latency_p99_cycles": percentile(latencies, 0.99),
        "samples": stats.get("samples", 0),
        "tag_accuracy": stats.get("tag_accuracy", 1.0),
    }


def run_serve_bench() -> dict:
    # the two configurations alternate within every round so slow machine
    # drift (CI neighbours, thermal throttling) hits both sides equally;
    # the overhead is the *median* of the per-round on/off ratios — each
    # ratio is drift-cancelled, and the median discards transient spikes
    # that min-of-N on independent sides would misalign
    service_on, items_on = _build(profiling=True)
    service_off, items_off = _build(profiling=False)
    best_on = best_off = None
    ratios = []
    for _ in range(REPEATS):
        timed_on = _run_once(service_on, items_on)
        timed_off = _run_once(service_off, items_off)
        ratios.append(timed_on[0] / timed_off[0])
        if best_on is None or timed_on[0] < best_on[0]:
            best_on = timed_on
        if best_off is None or timed_off[0] < best_off[0]:
            best_off = timed_off
    on = _describe(service_on, items_on, best_on)
    off = _describe(service_off, items_off, best_off)
    overhead_pct = (sorted(ratios)[len(ratios) // 2] - 1.0) * 100
    return {
        "queries": QUERIES,
        "clients": CLIENTS,
        "workers": 4,
        "profiling_on": on,
        "profiling_off": off,
        "round_ratios": [round(r, 4) for r in ratios],
        "overhead_pct": round(overhead_pct, 2),
    }


def format_table(record: dict) -> str:
    on, off = record["profiling_on"], record["profiling_off"]
    lines = [
        f"{'':<16}{'profiling on':>14}{'profiling off':>15}",
        f"{'qps':<16}{on['qps']:>14.2f}{off['qps']:>15.2f}",
        f"{'p50 (cycles)':<16}{on['latency_p50_cycles']:>14,}"
        f"{off['latency_p50_cycles']:>15,}",
        f"{'p95 (cycles)':<16}{on['latency_p95_cycles']:>14,}"
        f"{off['latency_p95_cycles']:>15,}",
        f"{'p99 (cycles)':<16}{on['latency_p99_cycles']:>14,}"
        f"{off['latency_p99_cycles']:>15,}",
        f"{'samples':<16}{on['samples']:>14,}{off['samples']:>15,}",
        "",
        f"tag accuracy {on['tag_accuracy']:.4f}, "
        f"throughput overhead {record['overhead_pct']:+.2f}% "
        f"(ceiling {OVERHEAD_CEILING_PCT:.0f}%)",
    ]
    return "\n".join(lines)


def test_serve_profiling_overhead(benchmark):
    record = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)
    report(
        "Concurrent service: always-on profiling overhead",
        format_table(record),
    )
    append_trajectory(record, TRAJECTORY_PATH)
    assert record["profiling_on"]["tag_accuracy"] >= 0.99
    assert record["overhead_pct"] <= OVERHEAD_CEILING_PCT, (
        f"always-on profiling costs {record['overhead_pct']:.1f}% "
        f"throughput, above the {OVERHEAD_CEILING_PCT:.0f}% ceiling"
    )
