"""Concurrent-service throughput: always-on profiling vs profiling off.

The serving claim is that keeping the PMU armed across every production
query (period ``SERVE_PERIOD_CYCLES``) stays within the paper-style 15%
throughput budget while attributing ≥99% of samples to the right (query,
operator) pair.  The on/off runs alternate round by round and the gate
uses the median of per-round ratios, so machine drift on shared runners
cancels instead of flaking the build; the measured trajectory is what
``BENCH_serve.json`` tracks run over run.
"""

from pathlib import Path
from random import Random
from time import perf_counter

from benchmarks.conftest import report
from benchmarks._harness import geomean, interleaved_ratio

from repro import Database
from repro.fleet import Fleet, FleetConfig, run_fleet_workload
from repro.serve import (
    SYNTHETIC_TEMPLATES,
    QueryService,
    ServiceConfig,
    run_workload,
    synthetic_workload,
)
from repro.serve.profiler import percentile
from repro.vmbench import append_trajectory

# locally measured steady-state overhead is ~11% at the serve period;
# the gate enforces the paper-style 15% budget on the drift-cancelled
# median, catching a real regression of the always-on sampling path
OVERHEAD_CEILING_PCT = 15.0
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

QUERIES = 32
CLIENTS = 4
# steady-state per-round ratios still spread ~0.99-1.21 on a shared
# machine even with drift cancellation; nine rounds keep the median
# inside a few percent of the true ~1.11 where five rounds can land an
# outlier pair in the middle slot
REPEATS = 9


def _build(profiling: bool):
    database = Database.example(n_sales=6000, n_products=150)
    service = QueryService(database, ServiceConfig(
        workers=4, max_inflight=8, profiling=profiling,
    ))
    items = synthetic_workload(service, queries=QUERIES, clients=CLIENTS)
    service.warm(dict.fromkeys(item.sql for item in items))
    # Two untimed warm-up rounds reach steady state before measurement:
    # the first runs of each plan compile its fast-VM translation and
    # cross the tiering controller's hotness threshold, and the tier-2
    # recompile lands one commit point later.  Armed translations cost
    # roughly twice the unarmed ones to compile (tree + linear-fallback
    # variants per block), so timing the warm-up would charge a one-time
    # compile asymmetry to the steady-state overhead gate.
    run_workload(service, items, warm=False)
    run_workload(service, items, warm=False)
    return service, items


def _run_once(service, items):
    started = perf_counter()
    summary = run_workload(service, items, warm=False)
    elapsed = perf_counter() - started
    assert summary.clean, "benchmark workload must run clean"
    return elapsed, summary


def _describe(service, items, best) -> dict:
    elapsed, summary = best
    stats = service.stats()
    latencies = sorted(r.latency_cycles for r in summary.results if r.ok)
    return {
        "elapsed_s": round(elapsed, 4),
        "qps": round(len(items) / elapsed, 2),
        "latency_p50_cycles": percentile(latencies, 0.50),
        "latency_p95_cycles": percentile(latencies, 0.95),
        "latency_p99_cycles": percentile(latencies, 0.99),
        "samples": stats.get("samples", 0),
        "tag_accuracy": stats.get("tag_accuracy", 1.0),
    }


def run_serve_bench() -> dict:
    # drift-cancelled A/B (benchmarks._harness): the two configurations
    # alternate within every round so slow machine drift hits both sides
    # equally, and the overhead gate uses the median of per-round ratios
    service_on, items_on = _build(profiling=True)
    service_off, items_off = _build(profiling=False)
    estimate = interleaved_ratio(
        lambda: _run_once(service_on, items_on),
        lambda: _run_once(service_off, items_off),
        REPEATS,
    )
    on = _describe(service_on, items_on, estimate.best_a)
    off = _describe(service_off, items_off, estimate.best_b)
    overhead_pct = (estimate.median_ratio - 1.0) * 100
    return {
        "queries": QUERIES,
        "clients": CLIENTS,
        "workers": 4,
        "profiling_on": on,
        "profiling_off": off,
        "round_ratios": [round(r, 4) for r in estimate.ratios],
        "ratio_geomean": round(geomean(estimate.ratios), 4),
        "overhead_pct": round(overhead_pct, 2),
    }


def format_table(record: dict) -> str:
    on, off = record["profiling_on"], record["profiling_off"]
    lines = [
        f"{'':<16}{'profiling on':>14}{'profiling off':>15}",
        f"{'qps':<16}{on['qps']:>14.2f}{off['qps']:>15.2f}",
        f"{'p50 (cycles)':<16}{on['latency_p50_cycles']:>14,}"
        f"{off['latency_p50_cycles']:>15,}",
        f"{'p95 (cycles)':<16}{on['latency_p95_cycles']:>14,}"
        f"{off['latency_p95_cycles']:>15,}",
        f"{'p99 (cycles)':<16}{on['latency_p99_cycles']:>14,}"
        f"{off['latency_p99_cycles']:>15,}",
        f"{'samples':<16}{on['samples']:>14,}{off['samples']:>15,}",
        "",
        f"tag accuracy {on['tag_accuracy']:.4f}, "
        f"throughput overhead {record['overhead_pct']:+.2f}% "
        f"(ceiling {OVERHEAD_CEILING_PCT:.0f}%)",
        f"round-ratio geomean {record.get('ratio_geomean', 1.0):.4f} "
        f"over {len(record['round_ratios'])} interleaved rounds",
    ]
    return "\n".join(lines)


def test_serve_profiling_overhead(benchmark):
    record = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)
    report(
        "Concurrent service: always-on profiling overhead",
        format_table(record),
    )
    append_trajectory(record, TRAJECTORY_PATH)
    assert record["profiling_on"]["tag_accuracy"] >= 0.99
    assert record["overhead_pct"] <= OVERHEAD_CEILING_PCT, (
        f"always-on profiling costs {record['overhead_pct']:.1f}% "
        f"throughput, above the {OVERHEAD_CEILING_PCT:.0f}% ceiling"
    )


# -- fleet shard-count scaling ------------------------------------------------

# a 4-shard fleet holds a quarter of the fact table per shard, so its
# simulated makespan should approach a quarter of the single-shard run;
# 1.8x leaves room for gather overhead, replicated dimension scans, and
# skewed partitions while still catching a scatter path that stopped
# parallelising
FLEET_SHARDS = 4
FLEET_SPEEDUP_FLOOR = 1.8
FLEET_QUERIES = 16
FLEET_TENANTS = 4
FLEET_REPEATS = 3


def _fleet_items(seed: int):
    rng = Random(seed)
    return [
        (
            f"tenant-{i % FLEET_TENANTS}",
            rng.choice(SYNTHETIC_TEMPLATES).format(
                price=round(rng.uniform(50.0, 450.0), 2),
                hi_price=round(rng.uniform(400.0, 490.0), 2),
            ),
        )
        for i in range(FLEET_QUERIES)
    ]


def _fleet_run(shards: int, seed: int):
    """Run one fleet round; 'elapsed' is the simulated makespan.

    The scaling claim is about simulated parallelism, not wall clock:
    shards advance their cycle counters independently, so the fleet
    makespan is the max over shards of the busiest worker's cycles.
    Using cycles as the ratio numerator keeps the gate deterministic on
    shared CI runners.
    """
    database = Database.example(n_sales=4000, n_products=120)
    fleet = Fleet(database, FleetConfig(
        shards=shards, workers=2, max_inflight=8, seed=seed,
    ))
    results = run_fleet_workload(fleet, _fleet_items(seed))
    assert all(r.ok for r in results), "fleet benchmark must run clean"
    stats = fleet.stats()
    return float(stats["makespan_cycles"]), (fleet, results, stats)


def run_fleet_bench(shards: int = FLEET_SHARDS) -> dict:
    # same interleaved median-of-ratios estimator as the overhead gate;
    # each round uses a fresh workload seed (shared by both sides of the
    # ratio) so the median spans several query mixes rather than
    # repeating one lucky draw
    round_seed = {"value": 17}

    def run_single():
        round_seed["value"] += 1
        return _fleet_run(1, seed=round_seed["value"])

    def run_fleet():
        return _fleet_run(shards, seed=round_seed["value"])

    estimate = interleaved_ratio(run_single, run_fleet, FLEET_REPEATS)
    single_cycles, (_, single_results, _s) = estimate.best_a
    fleet_cycles, (fleet, fleet_results, stats) = estimate.best_b
    merged = fleet.profile_snapshot()
    return {
        "fleet_shards": shards,
        "queries": FLEET_QUERIES,
        "tenants": FLEET_TENANTS,
        "workers_per_shard": 2,
        "single_makespan_cycles": int(single_cycles),
        "fleet_makespan_cycles": int(fleet_cycles),
        "shard_speedups": [round(r, 4) for r in estimate.ratios],
        "shard_speedup_median": round(
            sorted(estimate.ratios)[len(estimate.ratios) // 2], 4),
        "shard_speedup_geomean": round(geomean(estimate.ratios), 4),
        "fleet_samples": 0 if merged is None else merged.samples,
        "scattered": sum(1 for r in fleet_results if r.scattered),
    }


def format_fleet_table(record: dict) -> str:
    lines = [
        f"{'':<24}{'1 shard':>14}{record['fleet_shards']:>13} shards",
        f"{'makespan (cycles)':<24}"
        f"{record['single_makespan_cycles']:>14,}"
        f"{record['fleet_makespan_cycles']:>20,}",
        "",
        f"shard speedup median {record['shard_speedup_median']:.2f}x "
        f"(floor {FLEET_SPEEDUP_FLOOR:.1f}x), "
        f"geomean {record['shard_speedup_geomean']:.2f}x "
        f"over {len(record['shard_speedups'])} interleaved rounds",
        f"merged fleet samples {record['fleet_samples']:,}, "
        f"{record['scattered']} queries scattered",
    ]
    return "\n".join(lines)


def test_fleet_shard_scaling(benchmark):
    record = benchmark.pedantic(run_fleet_bench, rounds=1, iterations=1)
    report(
        f"Fleet: {record['fleet_shards']}-shard scatter/gather scaling",
        format_fleet_table(record),
    )
    append_trajectory(record, TRAJECTORY_PATH)
    speedup = record["shard_speedup_median"]
    assert speedup >= FLEET_SPEEDUP_FLOOR, (
        f"{record['fleet_shards']}-shard fleet is only {speedup:.2f}x "
        f"a single shard, below the {FLEET_SPEEDUP_FLOOR:.1f}x floor"
    )


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="serve/fleet benchmarks (standalone, no pytest)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run the fleet scaling bench at N shards")
    args = parser.parse_args()
    if args.shards is not None:
        rec = run_fleet_bench(args.shards)
        print(format_fleet_table(rec))
        append_trajectory(rec, TRAJECTORY_PATH)
        ok = rec["shard_speedup_median"] >= FLEET_SPEEDUP_FLOOR
    else:
        rec = run_serve_bench()
        print(format_table(rec))
        append_trajectory(rec, TRAJECTORY_PATH)
        ok = rec["overhead_pct"] <= OVERHEAD_CEILING_PCT
    sys.exit(0 if ok else 1)
