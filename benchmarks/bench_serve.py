"""Concurrent-service throughput: always-on profiling vs profiling off.

The serving claim is that keeping the PMU armed across every production
query (period ``SERVE_PERIOD_CYCLES``) stays within the paper-style 15%
throughput budget while attributing ≥99% of samples to the right (query,
operator) pair.  The on/off runs alternate round by round and the gate
uses the median of per-round ratios, so machine drift on shared runners
cancels instead of flaking the build; the measured trajectory is what
``BENCH_serve.json`` tracks run over run.
"""

from pathlib import Path
from time import perf_counter

from benchmarks.conftest import report
from benchmarks._harness import geomean, interleaved_ratio

from repro import Database
from repro.serve import (
    QueryService,
    ServiceConfig,
    run_workload,
    synthetic_workload,
)
from repro.serve.profiler import percentile
from repro.vmbench import append_trajectory

# locally measured steady-state overhead is ~11% at the serve period;
# the gate enforces the paper-style 15% budget on the drift-cancelled
# median, catching a real regression of the always-on sampling path
OVERHEAD_CEILING_PCT = 15.0
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

QUERIES = 32
CLIENTS = 4
# steady-state per-round ratios still spread ~0.99-1.21 on a shared
# machine even with drift cancellation; nine rounds keep the median
# inside a few percent of the true ~1.11 where five rounds can land an
# outlier pair in the middle slot
REPEATS = 9


def _build(profiling: bool):
    database = Database.example(n_sales=6000, n_products=150)
    service = QueryService(database, ServiceConfig(
        workers=4, max_inflight=8, profiling=profiling,
    ))
    items = synthetic_workload(service, queries=QUERIES, clients=CLIENTS)
    service.warm(dict.fromkeys(item.sql for item in items))
    # Two untimed warm-up rounds reach steady state before measurement:
    # the first runs of each plan compile its fast-VM translation and
    # cross the tiering controller's hotness threshold, and the tier-2
    # recompile lands one commit point later.  Armed translations cost
    # roughly twice the unarmed ones to compile (tree + linear-fallback
    # variants per block), so timing the warm-up would charge a one-time
    # compile asymmetry to the steady-state overhead gate.
    run_workload(service, items, warm=False)
    run_workload(service, items, warm=False)
    return service, items


def _run_once(service, items):
    started = perf_counter()
    summary = run_workload(service, items, warm=False)
    elapsed = perf_counter() - started
    assert summary.clean, "benchmark workload must run clean"
    return elapsed, summary


def _describe(service, items, best) -> dict:
    elapsed, summary = best
    stats = service.stats()
    latencies = sorted(r.latency_cycles for r in summary.results if r.ok)
    return {
        "elapsed_s": round(elapsed, 4),
        "qps": round(len(items) / elapsed, 2),
        "latency_p50_cycles": percentile(latencies, 0.50),
        "latency_p95_cycles": percentile(latencies, 0.95),
        "latency_p99_cycles": percentile(latencies, 0.99),
        "samples": stats.get("samples", 0),
        "tag_accuracy": stats.get("tag_accuracy", 1.0),
    }


def run_serve_bench() -> dict:
    # drift-cancelled A/B (benchmarks._harness): the two configurations
    # alternate within every round so slow machine drift hits both sides
    # equally, and the overhead gate uses the median of per-round ratios
    service_on, items_on = _build(profiling=True)
    service_off, items_off = _build(profiling=False)
    estimate = interleaved_ratio(
        lambda: _run_once(service_on, items_on),
        lambda: _run_once(service_off, items_off),
        REPEATS,
    )
    on = _describe(service_on, items_on, estimate.best_a)
    off = _describe(service_off, items_off, estimate.best_b)
    overhead_pct = (estimate.median_ratio - 1.0) * 100
    return {
        "queries": QUERIES,
        "clients": CLIENTS,
        "workers": 4,
        "profiling_on": on,
        "profiling_off": off,
        "round_ratios": [round(r, 4) for r in estimate.ratios],
        "ratio_geomean": round(geomean(estimate.ratios), 4),
        "overhead_pct": round(overhead_pct, 2),
    }


def format_table(record: dict) -> str:
    on, off = record["profiling_on"], record["profiling_off"]
    lines = [
        f"{'':<16}{'profiling on':>14}{'profiling off':>15}",
        f"{'qps':<16}{on['qps']:>14.2f}{off['qps']:>15.2f}",
        f"{'p50 (cycles)':<16}{on['latency_p50_cycles']:>14,}"
        f"{off['latency_p50_cycles']:>15,}",
        f"{'p95 (cycles)':<16}{on['latency_p95_cycles']:>14,}"
        f"{off['latency_p95_cycles']:>15,}",
        f"{'p99 (cycles)':<16}{on['latency_p99_cycles']:>14,}"
        f"{off['latency_p99_cycles']:>15,}",
        f"{'samples':<16}{on['samples']:>14,}{off['samples']:>15,}",
        "",
        f"tag accuracy {on['tag_accuracy']:.4f}, "
        f"throughput overhead {record['overhead_pct']:+.2f}% "
        f"(ceiling {OVERHEAD_CEILING_PCT:.0f}%)",
        f"round-ratio geomean {record.get('ratio_geomean', 1.0):.4f} "
        f"over {len(record['round_ratios'])} interleaved rounds",
    ]
    return "\n".join(lines)


def test_serve_profiling_overhead(benchmark):
    record = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)
    report(
        "Concurrent service: always-on profiling overhead",
        format_table(record),
    )
    append_trajectory(record, TRAJECTORY_PATH)
    assert record["profiling_on"]["tag_accuracy"] >= 0.99
    assert record["overhead_pct"] <= OVERHEAD_CEILING_PCT, (
        f"always-on profiling costs {record['overhead_pct']:.1f}% "
        f"throughput, above the {OVERHEAD_CEILING_PCT:.0f}% ceiling"
    )
