"""Storage-layout scan economics: bytes touched and throughput.

The storage claim is that compressed segments shrink the scan working
set: a selective scan (Q6) over frame-of-reference/dictionary segments
touches a fraction of the bytes a plain int64 layout reads, without
changing results.  ``bytes touched`` is the scan's working set — the
payload bytes of every visited segment plus the segment directory —
which is what compression actually buys (cache footprint); the VM-exact
``loads`` counter is reported alongside, but per-row unpacking reloads
packed words, so it understates the footprint win.  The measured
trajectory lands in ``BENCH_storage.json`` run over run, and the gate
enforces the committed ≥2x working-set reduction on Q6.
"""

from pathlib import Path
from time import perf_counter

from benchmarks.conftest import report

from repro import Database
from repro.data.queries import ALL_QUERIES
from repro.storage import DIR_STRIDE, StorageConfig
from repro.vmbench import append_trajectory

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_storage.json"

# committed floor: a selective scan over the encoded layout must touch
# at most half the bytes of the plain layout (locally ~4.3x at both
# scale points; the floor leaves headroom for loader-heuristic drift)
BYTES_REDUCTION_FLOOR = 2.0

SCALES = (0.001, 0.01)
SEGMENT_ROWS = 256
REPEATS = 3

# the columns each query's table scans materialize (the scan working
# set); Q6 is the selective-scan gate, Q1 the full-scan baseline
SCAN_COLUMNS = {
    "q6": {
        "lineitem": (
            "l_shipdate", "l_discount", "l_quantity", "l_extendedprice",
        ),
    },
    "q1": {
        "lineitem": (
            "l_returnflag", "l_linestatus", "l_quantity",
            "l_extendedprice", "l_discount", "l_tax", "l_shipdate",
        ),
    },
}


def _bytes_touched(db, columns_by_table: dict) -> int:
    """Scan working set: visited payload bytes plus the directory."""
    total = 0
    for table_name, column_names in columns_by_table.items():
        storage = db.storage.table(table_name)
        for column in storage.columns:
            if column.name not in column_names:
                continue
            if column.plain_addr is not None:
                total += column.plain_bytes
            else:
                total += column.data_bytes
            total += len(column.segments) * DIR_STRIDE
    return total


def _best_of(db, sql: str):
    best = None
    result = None
    for _ in range(REPEATS):
        started = perf_counter()
        result = db.execute(sql)
        elapsed = perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _rows_close(a, b) -> bool:
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(sorted(map(tuple, a)), sorted(map(tuple, b))):
        for va, vb in zip(row_a, row_b):
            if isinstance(va, float) or isinstance(vb, float):
                if abs(va - vb) > 1e-6 * max(1.0, abs(va), abs(vb)):
                    return False
            elif va != vb:
                return False
    return True


def run_storage_bench() -> dict:
    record = {"segment_rows": SEGMENT_ROWS, "scales": []}
    for scale in SCALES:
        encoded = Database.tpch(
            scale=scale, seed=42,
            storage=StorageConfig(segment_rows=SEGMENT_ROWS),
        )
        plain = Database.tpch(
            scale=scale, seed=42,
            storage=StorageConfig.plain(segment_rows=SEGMENT_ROWS),
        )
        rows_scanned = encoded.storage.table("lineitem").row_count
        entry = {"scale": scale, "lineitem_rows": rows_scanned,
                 "queries": {}}
        for name, columns in SCAN_COLUMNS.items():
            sql = ALL_QUERIES[name].sql
            enc_s, enc_result = _best_of(encoded, sql)
            plain_s, plain_result = _best_of(plain, sql)
            assert _rows_close(enc_result.rows, plain_result.rows), (
                f"{name}: encoded and plain layouts disagree at {scale}"
            )
            enc_bytes = _bytes_touched(encoded, columns)
            plain_bytes = _bytes_touched(plain, columns)
            entry["queries"][name] = {
                "encoded": {
                    "elapsed_s": round(enc_s, 4),
                    "rows_per_s": round(rows_scanned / enc_s),
                    "loads": enc_result.loads,
                    "instructions": enc_result.instructions,
                    "bytes_touched": enc_bytes,
                },
                "plain": {
                    "elapsed_s": round(plain_s, 4),
                    "rows_per_s": round(rows_scanned / plain_s),
                    "loads": plain_result.loads,
                    "instructions": plain_result.instructions,
                    "bytes_touched": plain_bytes,
                },
                "bytes_reduction": round(plain_bytes / enc_bytes, 2),
            }
        record["scales"].append(entry)
    return record


def format_table(record: dict) -> str:
    lines = [
        f"{'scale':<8}{'query':<7}{'layout':<9}{'bytes':>12}"
        f"{'loads':>12}{'rows/s':>12}",
    ]
    for entry in record["scales"]:
        for name, data in entry["queries"].items():
            for layout in ("plain", "encoded"):
                side = data[layout]
                lines.append(
                    f"{entry['scale']:<8}{name:<7}{layout:<9}"
                    f"{side['bytes_touched']:>12,}{side['loads']:>12,}"
                    f"{side['rows_per_s']:>12,}"
                )
            lines.append(
                f"{'':<15} -> {data['bytes_reduction']:.2f}x fewer "
                f"bytes touched"
            )
    lines.append(
        f"\ngate: Q6 bytes-touched reduction >= "
        f"{BYTES_REDUCTION_FLOOR:.1f}x on every scale point"
    )
    return "\n".join(lines)


def test_storage_scan_bytes_touched(benchmark):
    record = benchmark.pedantic(run_storage_bench, rounds=1, iterations=1)
    report(
        "Columnar storage: scan bytes touched, plain vs encoded",
        format_table(record),
    )
    append_trajectory(record, TRAJECTORY_PATH)
    for entry in record["scales"]:
        reduction = entry["queries"]["q6"]["bytes_reduction"]
        assert reduction >= BYTES_REDUCTION_FLOOR, (
            f"scale {entry['scale']}: Q6 touches only {reduction:.2f}x "
            f"fewer bytes on the encoded layout, below the "
            f"{BYTES_REDUCTION_FLOOR:.1f}x floor"
        )
