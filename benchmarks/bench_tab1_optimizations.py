"""Table 1: attribution survives the supported optimizations.

Umbra's implemented set — operator fusion, code elimination, constant
folding, common-subexpression elimination, dataflow-graph operator fusion
(groupjoin) — each exercised while checking that the Tagging Dictionary
still attributes every sample.
"""

from repro import PlannerOptions, ProfilerConfig
from repro.data.queries import ALL_QUERIES

from benchmarks.conftest import report

GROUPJOIN_SQL = """
select o_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue
from orders, lineitem
where o_orderkey = l_orderkey
group by o_orderkey
"""

# a query whose WHERE clause contains foldable constants and repeated
# subexpressions across operators
CSE_SQL = """
select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as a,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as b
from lineitem
where l_quantity < 2 * 20 + 8
group by l_orderkey
order by a desc
limit 5
"""


def test_tab1_optimizations_keep_attribution(tpch, benchmark):
    rows = []

    def run():
        # operator fusion + folding + CSE + DCE on a rich query
        profile = tpch.profile(CSE_SQL)
        opt_stats = profile_opt_stats(tpch, CSE_SQL)
        summary = profile.attribution_summary()
        rows.append(("fusion+fold+CSE+DCE", opt_stats, summary.attributed_share))

        # dataflow-graph operator fusion: groupjoin
        fused = tpch.profile(
            GROUPJOIN_SQL, planner_options=PlannerOptions(enable_groupjoin=True)
        )
        fused_summary = fused.attribution_summary()
        task_kinds = {t.role for t in fused.task_costs()}
        rows.append((
            "groupjoin fusion",
            {"sections": sorted(r for r in task_kinds if "groupjoin" in r)},
            fused_summary.attributed_share,
        ))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Table 1 — optimizations vs attribution", ""]
    for name, stats, attributed in rows:
        lines.append(f"{name:<22} attributed {attributed * 100:5.1f}%   {stats}")
    lines.append("")
    lines.append("Umbra's implemented set (paper): operator fusion, code")
    lines.append("elimination, constant folding, CSE, dataflow-graph operator")
    lines.append("fusion — all supported; instruction fusing / loop unrolling /")
    lines.append("polyhedral not implemented, matching the paper's Table 1.")
    report("Table 1 optimization support", "\n".join(lines))

    for name, _, attributed in rows:
        assert attributed > 0.85, f"{name}: attribution must survive"


def profile_opt_stats(db, sql):
    """Compile once more to collect optimizer delta counters."""
    bound, physical = db._plan(sql)
    mark = db.memory.mark()
    try:
        from repro.backend import compile_module
        from repro.codegen import (
            build_runtime_module,
            build_syslib_module,
            generate_query_ir,
        )
        from repro.pipeline import decompose
        from repro.profiling.tagging import TaggingDictionary
        from repro.vm import CodeRegion, Program
        from repro.vm.kernel import Kernel, install_kernel_stubs
        from repro.engine import _QueryEnvironment

        tagging = TaggingDictionary()
        pipelines = decompose(physical, on_task=tagging.register_task)
        program = Program()
        kernel = Kernel(db.memory, install_kernel_stubs(program))
        env = _QueryEnvironment(db, kernel)
        query_ir = generate_query_ir(
            physical, pipelines, env, tagging,
            db._physical_estimates(bound, physical),
        )
        compile_module(build_syslib_module(), program, CodeRegion.SYSLIB)
        compile_module(build_runtime_module(), program, CodeRegion.RUNTIME)
        compiled = compile_module(query_ir.module, program, CodeRegion.QUERY)
        folded = sum(c.opt_result.folded for c in compiled.values())
        removed = sum(len(c.opt_result.removed) for c in compiled.values())
        merged = sum(len(c.opt_result.merged) for c in compiled.values())
        return {"folded": folded, "eliminated": removed, "cse_merges": merged}
    finally:
        db.memory.release(mark)
