"""Table 2: sample attribution across all 22 TPC-H queries.

Paper: 98.0 % of samples attributed (95.4 % to operators, 2.6 % to kernel
tasks), 2.0 % unattributed (untagged system libraries).  Shape: operators
carry the overwhelming majority, kernel a few percent, a small untagged
residue from the SYSLIB region.
"""

from repro.data.queries import ALL_QUERIES

from benchmarks.conftest import report


def test_tab2_attribution_all_queries(tpch, benchmark):
    def run_all():
        rows = []
        for name in sorted(ALL_QUERIES, key=lambda n: int(n[1:])):
            profile = tpch.profile(ALL_QUERIES[name].sql)
            summary = profile.attribution_summary()
            rows.append((name, summary))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Table 2 — sample attribution per query",
        "",
        f"{'query':<6} {'samples':>8} {'operators':>10} {'kernel':>8} {'unattr.':>8}",
    ]
    total_op = total_kernel = total_unattr = 0.0
    for name, summary in rows:
        lines.append(
            f"{name:<6} {summary.total_samples:>8} "
            f"{summary.operator_share * 100:>9.1f}% "
            f"{summary.kernel_share * 100:>7.1f}% "
            f"{summary.unattributed_share * 100:>7.1f}%"
        )
        total_op += summary.operator_share
        total_kernel += summary.kernel_share
        total_unattr += summary.unattributed_share
    n = len(rows)
    lines.append("-" * 46)
    lines.append(
        f"{'mean':<6} {'':>8} {total_op / n * 100:>9.1f}% "
        f"{total_kernel / n * 100:>7.1f}% {total_unattr / n * 100:>7.1f}%"
    )
    lines.append("")
    lines.append("paper:          operators 95.4%   kernel 2.6%   unattributed 2.0%")
    report("Table 2 attribution coverage", "\n".join(lines))

    assert total_op / n > 0.85
    assert total_kernel / n < 0.12
    assert total_unattr / n < 0.05


def test_tab2_no_attribution_without_disambiguation(tpch):
    """Sanity: dropping Register Tagging *and* call stacks leaves the

    shared runtime unattributable, so coverage must drop."""
    from repro import ProfilerConfig, ProfilingMode
    from repro.data.queries import FIG9_QUERY

    with_tags = tpch.profile(FIG9_QUERY.sql).attribution_summary()
    without = tpch.profile(
        FIG9_QUERY.sql, ProfilerConfig(mode=ProfilingMode.NONE)
    ).attribution_summary()
    assert without.unattributed_share > with_tags.unattributed_share
