"""Table 3: implementation effort of the profiling integration.

The paper's point: the *engine-side* integration is tiny (56 lines inside
~22 k of code-generation machinery); the bulk of Tailored Profiling lives
outside the engine, in sample processing and visualization.  We count the
same categories in this repository.
"""

import pathlib

from benchmarks.conftest import report

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"


def loc(path: pathlib.Path) -> int:
    """Non-blank, non-comment-only lines of code."""
    count = 0
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def loc_of(*relative: str) -> int:
    total = 0
    for rel in relative:
        path = SRC / rel
        if path.is_dir():
            total += sum(loc(p) for p in sorted(path.rglob("*.py")))
        else:
            total += loc(path)
    return total


def test_tab3_lines_of_code(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            ("engine (catalog/sql/plan/pipeline/codegen/backend/vm)", loc_of(
                "catalog", "sql", "plan", "pipeline", "codegen", "backend",
                "vm", "engine.py", "errors.py", "data",
            )),
            ("profiling integration hooks (trackers + tagging)", loc_of(
                "profiling/trackers.py", "profiling/tagging.py",
            )),
            ("sample processing", loc_of("profiling/postprocess.py")),
            ("reports / visualization", loc_of(
                "profiling/reports.py", "profiling/profile.py",
            )),
            ("IR layer (the 'LLVM' of the stack)", loc_of("ir")),
        ],
        rounds=1, iterations=1,
    )

    lines = [
        "Table 3 — implementation size (this repository)",
        "",
        f"{'component':<52} {'LoC':>7}",
    ]
    for name, count in rows:
        lines.append(f"{name:<52} {count:>7,}")
    lines.append("")
    lines.append("paper: Umbra codegen +56 lines; Tailored Profiling 1,686 lines")
    lines.append("(sample processing 1,176 + visualization 510) on ~22,000 engine lines")
    report("Table 3 lines of code", "\n".join(lines))

    by_name = dict(rows)
    hooks = by_name["profiling integration hooks (trackers + tagging)"]
    engine = by_name["engine (catalog/sql/plan/pipeline/codegen/backend/vm)"]
    # the paper's headline: the in-engine footprint is a rounding error
    assert hooks < engine * 0.05
