"""Materialized-view economics: incremental maintenance vs re-execution.

The serving-tier claim is that one maintained circuit amortizes a
standing query over arbitrarily many subscribers: after each delta batch
the view tier pays only for the delta flowing through the circuit, while
the batch alternative re-executes every standing query from scratch.
Both sides are measured in *simulated instructions* — the incremental
side from the maintenance cost meter (the same charges that land on the
VM workers and in the profiler), the re-execution side from the compiled
engine's instruction counter — so the ratio is deterministic and
machine-independent.  The per-view trajectory lands in
``BENCH_views.json`` run over run; the gate enforces the committed ≥3x
advantage (locally ~an order of magnitude or more).
"""

from pathlib import Path
from random import Random

from benchmarks._harness import geomean
from benchmarks.conftest import report

from repro import Database
from repro.serve import QueryService, ServiceConfig
from repro.views import ViewService
from repro.vmbench import append_trajectory

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_views.json"

# committed floor: maintaining the standing-query suite across the
# delta schedule must cost at least 3x fewer simulated instructions
# than re-executing the suite after every batch (measured headroom is
# far larger; the floor absorbs cost-model retuning)
MAINTENANCE_ADVANTAGE_FLOOR = 3.0

N_SALES = 4000
N_PRODUCTS = 200
BATCHES = 8
INSERTS_PER_BATCH = 24
RETRACTS_PER_BATCH = 12
SEED = 0

#: the standing-query suite: grouped aggregation, selective aggregation
#: with HAVING, a join, and an ORDER BY/LIMIT top-K
STANDING_QUERIES = {
    "by_bucket": (
        "select id % 11 as bucket, sum(price) as total, count(*) as n "
        "from sales group by id % 11"
    ),
    "margin_watch": (
        "select id % 7 as b, sum(price) as revenue, sum(prod_costs) as costs "
        "from sales where price > 50 group by id % 7 "
        "having count(*) > 10"
    ),
    "by_category": (
        "select p.category as category, count(*) as n, sum(s.price) as total "
        "from sales s, products p where s.id % 200 = p.id "
        "group by p.category"
    ),
    "top_tickets": (
        "select id as sale, price as price from sales "
        "order by price desc, sale asc limit 10"
    ),
}


def _decoded_sales_rows(db):
    table = db.catalog.table("sales")
    rows = []
    for raw in zip(*table.columns):
        rows.append((raw[0], raw[1] / 100, raw[2] / 100, raw[3] / 100))
    return rows


def _delta_schedule(db, rng):
    """A deterministic schedule of BATCHES decoded sales delta batches."""
    live = _decoded_sales_rows(db)
    next_id = max(row[0] for row in live) + 1
    schedule = []
    for _ in range(BATCHES):
        changes = []
        for _ in range(INSERTS_PER_BATCH):
            row = (
                next_id,
                round(rng.uniform(1.0, 700.0), 2),
                round(rng.uniform(1.0, 1.4), 2),
                round(rng.uniform(1.0, 300.0), 2),
            )
            next_id += 1
            changes.append((row, 1))
            live.append(row)
        for _ in range(RETRACTS_PER_BATCH):
            victim = live.pop(rng.randrange(len(live)))
            changes.append((victim, -1))
        schedule.append({"sales": changes})
    return schedule


def test_views_incremental_vs_reexecute():
    db = Database.example(n_sales=N_SALES, n_products=N_PRODUCTS)
    service = QueryService(db, ServiceConfig(workers=2))
    views = ViewService(service)

    # re-execution baseline: instructions to run each standing query
    # once on the compiled engine (plan cached — compile cost excluded)
    baseline = {}
    for name, sql in STANDING_QUERIES.items():
        baseline[name] = db.execute(sql).instructions
        views.register(name, sql)
    initial_load = {
        name: views.view(name).instructions for name in STANDING_QUERIES
    }

    schedule = _delta_schedule(db, Random(SEED))
    before = {name: views.view(name).instructions for name in STANDING_QUERIES}
    for batch in schedule:
        views.apply(batch)

    per_view = {}
    for name in STANDING_QUERIES:
        view = views.view(name)
        incremental = view.instructions - before[name]
        reexecute = baseline[name] * BATCHES
        per_view[name] = {
            "initial_load_instructions": initial_load[name],
            "incremental_instructions": incremental,
            "reexecute_instructions": reexecute,
            "advantage": round(reexecute / max(1, incremental), 1),
        }
    advantage = geomean(
        [stats["advantage"] for stats in per_view.values()]
    )

    lines = [
        f"example db: {N_SALES} sales rows, {BATCHES} batches of "
        f"+{INSERTS_PER_BATCH}/-{RETRACTS_PER_BATCH} rows",
        f"{'view':>14} {'incremental':>12} {'re-execute':>12} {'ratio':>8}",
    ]
    for name, stats in per_view.items():
        lines.append(
            f"{name:>14} {stats['incremental_instructions']:>12} "
            f"{stats['reexecute_instructions']:>12} "
            f"{stats['advantage']:>7.1f}x"
        )
    lines.append(
        f"geomean maintenance advantage {advantage:.1f}x "
        f"(gate >= {MAINTENANCE_ADVANTAGE_FLOOR}x)"
    )
    text = "\n".join(lines)
    report("views: incremental maintenance vs re-execution", text)

    append_trajectory(
        {
            "n_sales": N_SALES,
            "batches": BATCHES,
            "inserts_per_batch": INSERTS_PER_BATCH,
            "retracts_per_batch": RETRACTS_PER_BATCH,
            "views": per_view,
            "geomean_advantage": round(advantage, 1),
        },
        TRAJECTORY_PATH,
    )

    assert advantage >= MAINTENANCE_ADVANTAGE_FLOOR, (
        f"incremental maintenance advantage {advantage:.1f}x below the "
        f"{MAINTENANCE_ADVANTAGE_FLOOR}x floor\n{text}"
    )
    # the acceptance bar for the recorded number is stricter than the gate
    assert advantage >= 5.0, text
