"""Fast-VM speed: template-translated blocks vs the block interpreter.

The tentpole claim is a >=3x geometric-mean speedup on TPC-H with
profiling off while staying bit-identical to the interpreter (parity is
asserted inside ``run_vm_bench`` — rows and simulated counters).  The CI
gate uses a deliberately lower floor so scheduler noise on shared runners
cannot flake the build; the measured trajectory is what ``BENCH_vm.json``
tracks run over run.
"""

from pathlib import Path

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report

from repro.vmbench import append_trajectory, format_table, run_vm_bench

# locally measured geomean is ~3.4x across all 22 queries; the gate floor
# leaves headroom for noisy CI runners while still catching any real
# regression of the translated engine
SPEEDUP_FLOOR = 2.0
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_vm.json"


def test_vm_speedup_floor(benchmark):
    record = benchmark.pedantic(
        lambda: run_vm_bench(
            scale=BENCH_SCALE, seed=BENCH_SEED, repeats=2
        ),
        rounds=1, iterations=1,
    )
    report(
        "Fast-VM speedup (translated blocks vs interpreter)",
        format_table(record),
    )
    append_trajectory(record, TRAJECTORY_PATH)
    assert record["geomean_speedup"] >= SPEEDUP_FLOOR, (
        f"fast VM geomean {record['geomean_speedup']:.2f}x is below the "
        f"{SPEEDUP_FLOOR:.1f}x floor"
    )
