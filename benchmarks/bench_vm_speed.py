"""Fast-VM speed: translated blocks and specialized traces vs interpreter.

The tentpole claim is a >=3x geometric-mean speedup on TPC-H with
profiling off while staying bit-identical to the interpreter (parity is
asserted inside ``run_vm_bench`` — rows and simulated counters).  On top
of that, tier-2 profile-specialized traces must beat tier 1 on the
profile-stable queries whose hot loops the rolling profile marks for
deferred sync.  Both CI gates use deliberately lower floors so scheduler
noise on shared runners cannot flake the build; the measured trajectory
is what ``BENCH_vm.json`` tracks run over run.
"""

from pathlib import Path

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, report

from repro.vmbench import append_trajectory, format_table, run_vm_bench

# locally measured geomean is ~3.6x on the benchmarked queries; the gate
# floor leaves headroom for noisy CI runners while still catching any
# real regression of the translated engine
SPEEDUP_FLOOR = 2.0
# tier 2 over tier 1 on the profile-stable subset: locally 1.15-1.19x
# (1.4-1.6x on q6, every stable query >= 1.05x).  The gate floor sits
# below the local readings because the t2/t1 delta is tens of percent,
# not multiples — even the drift-cancelled median-of-ratios estimator
# keeps a few percent of residual noise.
TIERED_STABLE_FLOOR = 1.10
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_vm.json"


# one benchmark run feeds both gates; the CI jobs select one gate each
# (-k), so the run happens once per job, and a full local invocation of
# this file measures once and asserts twice
_CACHE: dict = {}


def _measured_record(benchmark):
    if "record" not in _CACHE:
        _CACHE["record"] = benchmark.pedantic(
            lambda: run_vm_bench(
                scale=BENCH_SCALE, seed=BENCH_SEED, repeats=2
            ),
            rounds=1, iterations=1,
        )
        report(
            "Fast-VM speedup (translated blocks vs interpreter)",
            format_table(_CACHE["record"]),
        )
        append_trajectory(_CACHE["record"], TRAJECTORY_PATH)
    return _CACHE["record"]


def test_vm_speedup_floor(benchmark):
    record = _measured_record(benchmark)
    assert record["geomean_speedup"] >= SPEEDUP_FLOOR, (
        f"fast VM geomean {record['geomean_speedup']:.2f}x is below the "
        f"{SPEEDUP_FLOOR:.1f}x floor"
    )


def test_tiered_speedup_floor(benchmark):
    record = _measured_record(benchmark)
    tiered = record["tiered_stable_geomean_speedup"]
    assert tiered >= TIERED_STABLE_FLOOR, (
        f"tier-2 geomean {tiered:.3f}x on the profile-stable subset is "
        f"below the {TIERED_STABLE_FLOOR:.2f}x floor"
    )
