"""Shared benchmark fixtures and report plumbing.

Every benchmark reproduces one table or figure of the paper's evaluation.
Beyond pytest-benchmark's timing, each registers a formatted result table
via ``report()``; the tables are printed in the terminal summary (and land
in ``bench_output.txt`` when tee'd), and also written under
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import Database

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_REPORTS: list[tuple[str, str]] = []

# Scale factors chosen so the whole harness runs in a few minutes on a
# laptop while still giving every query non-trivial work.
BENCH_SCALE = 0.001
BENCH_SEED = 42


def report(title: str, text: str) -> None:
    """Register one experiment's output table."""
    _REPORTS.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-")[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line("=" * 78)
        terminalreporter.write_line(f"== {title}")
        terminalreporter.write_line("=" * 78)
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def tpch():
    return Database.tpch(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def example_db():
    return Database.example(n_sales=12000, n_products=200)
