"""The domain-expert use case (paper §6.1, Fig. 9).

A TPC-H user wonders why their join + aggregation query is slow.  Tailored
Profiling aggregates hardware samples up to the query-plan level — the
abstraction the user already thinks in — and contrasts it with EXPLAIN
ANALYZE's tuple counts, which approximate but do not measure time.

Run:  python examples/domain_expert.py
"""

from repro import Database

QUERY = """
select l_orderkey, avg(l_extendedprice) as avg_price
from lineitem, orders
where o_orderdate < date '1995-04-01' and o_orderkey = l_orderkey
group by l_orderkey
order by avg_price desc
limit 10
"""


def main() -> None:
    print("loading TPC-H (scale 0.002)...")
    db = Database.tpch(scale=0.002)

    print("\nEXPLAIN ANALYZE — tuple counts (what most systems offer):")
    print(db.explain_analyze(QUERY))

    print("\nTailored Profiling — where the *time* actually goes:")
    profile = db.profile(QUERY)
    print(profile.annotated_plan())

    costs = sorted(
        profile.operator_costs().items(), key=lambda kv: -kv[1]
    )
    top_operator, top_share = costs[0]
    print(
        f"\n=> {top_operator.label} consumes {top_share * 100:.0f}% of the "
        "query's samples,"
    )
    runner_up, runner_share = costs[1]
    print(f"   followed by {runner_up.label} at {runner_share * 100:.0f}%.")
    print(
        "\nThe paper's point: EXPLAIN ANALYZE counts tuples, which only\n"
        "approximates cost; sampling measures where the time actually goes.\n"
        "Here the join and the aggregation together dominate — an informed\n"
        "user can now decide between an index (cheaper join) or a sampling\n"
        "operator (fewer tuples reaching the aggregation), as §6.1 discusses."
    )


if __name__ == "__main__":
    main()
