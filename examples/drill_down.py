"""The cross-cutting drill-down workflow (paper §4.3).

"The operator developer can inspect this [activity over time] to learn
about the interaction between operators and detect temporal hotspots.
Then they can use the profiler to narrow down on the next lower
abstraction level, i.e., limit the results to the time interval of the
hotspot."  — this example does exactly that: timeline → zoom onto the
hottest interval → per-task view → annotated IR of the culprit pipeline.

Run:  python examples/drill_down.py
"""

from repro import Database
from repro.data.queries import ALL_QUERIES


def main() -> None:
    print("loading TPC-H (scale 0.002)...")
    db = Database.tpch(scale=0.002)
    profile = db.profile(ALL_QUERIES["q18"].sql)

    # 1. the top level: operator activity over time
    print("\nstep 1 — activity over the whole run:")
    print(profile.render_timeline(bins=40))

    # 2. find the busiest late interval and zoom onto it
    timeline = profile.activity_timeline(bins=10)
    hottest = max(timeline.bins[5:], key=lambda b: b.total)
    zoomed = profile.zoom(hottest.start_tsc, hottest.end_tsc)
    print(
        f"\nstep 2 — zoomed onto [{hottest.start_tsc:,}, {hottest.end_tsc:,}) "
        f"({len(zoomed.samples)} of {len(profile.samples)} samples):"
    )
    print(zoomed.annotated_plan())

    # 3. one level down: which pipeline/task is hot inside the interval?
    print("\nstep 3 — pipelines of tasks inside the hotspot:")
    print(zoomed.annotated_pipelines())

    # 4. bottom level: the annotated IR of the hottest task's pipeline
    task, _ = max(zoomed.task_costs().items(), key=lambda kv: kv[1])
    pipeline = next(
        p for p in profile.pipelines if any(t.id == task.id for t in p.tasks)
    )
    print(f"\nstep 4 — annotated IR of pipeline {pipeline.index} "
          f"(hottest task: {task.label}), first 30 lines:")
    for line in zoomed.annotated_ir(pipeline.index).splitlines()[:30]:
        print(line)
    print("...")


if __name__ == "__main__":
    main()
