"""Iterative dataflow profiling (paper §4.2.6).

"Tailored Profiling also supports iterative dataflow graphs, although the
Tagging Dictionary cannot differ between iterations.  Therefore, the
post-processing phase uses the samples' timestamps to detect iterations."

This example runs the same compiled pipelines several times in one
profiling session (the shape of an iterative analytics job), lets the
post-processor split the sample stream into iterations, and drills into a
single iteration.

Run:  python examples/iterative_dataflow.py
"""

from repro import Database
from repro.data.queries import FIG9_QUERY


def main() -> None:
    print("loading TPC-H (scale 0.002)...")
    db = Database.tpch(scale=0.002)

    profile = db.profile(FIG9_QUERY.sql, repeats=4)
    print(f"\none session, {len(profile.samples)} samples across 4 runs "
          "of the same compiled dataflow\n")

    print(profile.iteration_report())

    iterations = profile.iterations()
    target = iterations[2]
    zoomed = profile.zoom(target.start_tsc, target.end_tsc)
    print(f"\nzoomed onto iteration {target.index} only:")
    print(zoomed.annotated_plan())
    print("\nits activity over time:")
    print(zoomed.render_timeline(bins=30))


if __name__ == "__main__":
    main()
