"""Morsel-driven multicore execution with per-worker profiling.

The paper's prototype is evaluated single-threaded (§6) but §5 notes that
Umbra and Tailored Profiling support multicore execution.  This example
runs TPC-H Q1 on 1-8 simulated cores: every core has its own clock, cache
hierarchy, and PMU buffer; the merged sample stream feeds the same
reports, plus a per-worker lane view.

Run:  python examples/multicore.py
"""

from repro import Database
from repro.data.queries import ALL_QUERIES
from repro.profiling.reports import render_worker_timeline


def main() -> None:
    print("loading TPC-H (scale 0.002)...")
    db = Database.tpch(scale=0.002)
    sql = ALL_QUERIES["q1"].sql

    print("\nscaling (wall clock = slowest worker):")
    baseline = None
    for workers in (1, 2, 4, 8):
        result = db.execute(sql, workers=workers)
        baseline = baseline or result.cycles
        print(
            f"  {workers} worker(s): {result.cycles:>12,} cycles "
            f"({baseline / result.cycles:.2f}x)"
        )

    profile = db.profile(sql, workers=4)
    print("\nper-worker activity lanes (4 workers):")
    print(render_worker_timeline(profile, bins=50))

    print("\noperator costs, merged across workers:")
    print(profile.annotated_plan())

    summary = profile.attribution_summary()
    print(
        f"\nattribution is unaffected by parallelism: "
        f"{summary.attributed_share * 100:.1f}% of samples attributed"
    )


if __name__ == "__main__":
    main()
