"""The operator-developer use case (paper §6.1, Figs. 6b and 12).

An engineer implementing operators needs views *below* the plan level:
the generated IR annotated with per-instruction sample shares and owning
operators (even though operator fusion interleaved their code!), and
per-operator memory access patterns from address-capturing load samples.

Run:  python examples/operator_developer.py
"""

from repro import Database, Event, ProfilerConfig
from repro.data.queries import EXAMPLE_QUERY


def main() -> None:
    print("loading the paper's Figure 3 example tables...")
    db = Database.example(n_sales=10000, n_products=200)

    # -- annotated IR (Fig. 6b): fused operators, disentangled --------------
    profile = db.profile(EXAMPLE_QUERY.sql)
    print("\nannotated IR of the probe pipeline (excerpt):")
    listing = profile.annotated_ir(pipeline_index=1).splitlines()
    for line in listing[:45]:
        print(line)
    print("...")

    print(
        "\nNote the rightmost column: although the scan, join and group-by\n"
        "are fused into one tight loop, every instruction is attributed to\n"
        "its operator via the Tagging Dictionary."
    )

    # -- memory access patterns (Fig. 12) ---------------------------------
    config = ProfilerConfig(
        event=Event.LOADS, period=150, record_memaddr=True
    )
    mem_profile = db.profile(EXAMPLE_QUERY.sql, config)
    mem = mem_profile.memory_profile()
    print("\nmemory access patterns (MEM_LOADS samples with addresses):")
    print(f"{'operator':<22} {'samples':>8} {'addr range':>12} {'linearity':>10}")
    for op, points in sorted(mem.accesses.items(), key=lambda kv: kv[0].op_id):
        print(
            f"{op.label:<22} {len(points):>8} {mem.address_range(op):>12,}"
            f" {mem.band_linearity(op):>+10.2f}"
        )
    print(
        "\nlinearity +1.0 = sequential (prefetcher-friendly) scan;\n"
        "~0 = scattered hash-table access — a starting point for choosing\n"
        "different data structures or partitioning, as §6.1 concludes."
    )


if __name__ == "__main__":
    main()
