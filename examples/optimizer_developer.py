"""The optimizer-developer use case (paper §6.1, Figs. 10/11).

Two join orders for the same query have identical estimated cardinalities —
the cost model cannot tell them apart — yet one runs measurably faster.
Operator activity *over time* reveals why: lineitem is clustered by
l_orderkey and the date filter on orders selects a contiguous orderkey
range, so partway through the probe scan the orders join flips from
always-match to never-match, starving everything downstream.

Run:  python examples/optimizer_developer.py
"""

from repro import Database

QUERY = """
select sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, orders, partsupp
where l_orderkey = o_orderkey and l_partkey = ps_partkey
  and l_suppkey = ps_suppkey
  and o_orderdate < date '1994-06-01'
"""

PLAN_A = ["lineitem", "orders", "partsupp"]  # probe orders first
PLAN_B = ["lineitem", "partsupp", "orders"]  # probe partsupp first


def main() -> None:
    print("loading TPC-H (scale 0.002)...")
    db = Database.tpch(scale=0.002)

    result_a = db.execute(QUERY, join_order_hint=PLAN_A)
    result_b = db.execute(QUERY, join_order_hint=PLAN_B)
    assert result_a.rows == result_b.rows

    print(f"\nplan A (probe orders first):   {result_a.cycles:>12,} cycles")
    print(f"plan B (probe partsupp first): {result_b.cycles:>12,} cycles")
    faster = "A" if result_a.cycles < result_b.cycles else "B"
    ratio = max(result_a.cycles, result_b.cycles) / min(
        result_a.cycles, result_b.cycles
    )
    print(f"plan {faster} is {ratio:.2f}x faster — but why?\n")

    profiles = {}
    for name, hint in (("A", PLAN_A), ("B", PLAN_B)):
        profiles[name] = db.profile(QUERY, join_order_hint=hint)
        print(f"plan {name} operator activity over time:")
        print(profiles[name].render_timeline(bins=40))
        print()

    from repro.profiling.reports import compare_profiles

    print("side-by-side comparison (§6.1's optimizer-developer workflow):")
    print(compare_profiles(profiles["A"], profiles["B"]))
    print()

    print(
        "Reading the timelines: in plan A the partsupp join's activity\n"
        "collapses partway through the scan — the orders join eliminates\n"
        "every tuple once the scan passes the orderkey range selected by\n"
        "the date filter, so the partsupp hash table is never probed again.\n"
        "Plan B pays the partsupp probe for *every* lineitem tuple.\n"
        "An optimizer developer can now extend the cost model with this\n"
        "data-layout property (clustering/correlation), as §6.1 suggests."
    )


if __name__ == "__main__":
    main()
