"""Register Tagging vs call-stack sampling (paper §4.2.5 and Fig. 13).

Both mechanisms disambiguate samples that land in *shared* code — the
pre-compiled ``ht_insert`` called by every hash-building operator.  This
example measures their overheads and shows what happens with neither.

Run:  python examples/profiling_modes.py
"""

import collections

from repro import Database, ProfilerConfig, ProfilingMode
from repro.data.queries import FIG9_QUERY


def main() -> None:
    print("loading TPC-H (scale 0.002)...")
    db = Database.tpch(scale=0.002)
    sql = FIG9_QUERY.sql  # hash-build heavy: exercises the shared runtime

    base = db.execute(sql).cycles
    print(f"\nunprofiled execution: {base:,} cycles")
    print(f"\n{'mode':<22} {'overhead':>9} {'attributed':>11}  shared-code samples")

    for label, mode in (
        ("IP + time", ProfilingMode.NONE),
        ("register tagging", ProfilingMode.REGISTER_TAGGING),
        ("call-stack sampling", ProfilingMode.CALLSTACK),
    ):
        profile = db.profile(sql, ProfilerConfig(mode=mode))
        overhead = profile.result.cycles / base - 1
        summary = profile.attribution_summary()
        shared = collections.Counter(
            a.via for a in profile.attributions if a.runtime_function
        )
        print(
            f"{label:<22} {overhead * 100:>8.1f}% "
            f"{summary.attributed_share * 100:>10.1f}%  {dict(shared)}"
        )

    print(
        "\nThe paper's trade-off (Fig. 13): with plain IP sampling the\n"
        "shared runtime cannot be attributed at all; call stacks fix that\n"
        "at ~an order of magnitude more overhead; Register Tagging fixes it\n"
        "for a few percent (one reserved register + one extra payload)."
    )


if __name__ == "__main__":
    main()
