"""Quickstart: load data, run SQL, profile it on the plan level.

Run:  python examples/quickstart.py
"""

from repro import Column, Database, DataType, Schema


def main() -> None:
    # 1. build a database: create tables, append rows, finalize
    db = Database()
    t = DataType
    sales = db.create_table("sales", Schema([
        Column("region", t.STRING),
        Column("product", t.STRING),
        Column("amount", t.DECIMAL),
        Column("sold_on", t.DATE),
    ]))
    rows = [
        ("north", "widget", 10.50, "2024-01-03"),
        ("north", "gadget", 200.00, "2024-01-04"),
        ("south", "widget", 5.25, "2024-01-10"),
        ("south", "widget", 7.75, "2024-02-01"),
        ("west", "gadget", 120.00, "2024-02-11"),
        ("west", "widget", 3.10, "2024-03-05"),
    ] * 500  # replicate so the profiler has something to sample
    sales.extend(rows)
    db.finalize()

    # 2. run a query — it is compiled through plan -> pipelines -> IR ->
    #    native code and executed on the simulated machine
    result = db.execute(
        "select region, count(*) n, sum(amount) total "
        "from sales where product = 'widget' "
        "group by region order by total desc"
    )
    print("rows:")
    for row in result.rows:
        print("  ", row)
    print(f"({result.instructions:,} instructions, {result.cycles:,} cycles)\n")

    # 3. profile the same query: the Tagging Dictionary maps every sample
    #    back to the plan operators
    profile = db.profile(
        "select region, count(*) n, sum(amount) total "
        "from sales where product = 'widget' "
        "group by region order by total desc"
    )
    print("operator-annotated plan (the domain expert's view):")
    print(profile.annotated_plan())
    print()
    summary = profile.attribution_summary()
    print(
        f"{summary.total_samples} samples: "
        f"{summary.operator_share * 100:.1f}% attributed to operators, "
        f"{summary.kernel_share * 100:.1f}% kernel, "
        f"{summary.unattributed_share * 100:.1f}% unattributed"
    )


if __name__ == "__main__":
    main()
