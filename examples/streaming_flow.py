"""Profiling a second dataflow system on the same stack (§6.4 Portability).

The EventFlow DSL is a streaming-flavoured frontend — source, where,
derive, tumbling windows, windowed aggregation, sink — lowered through the
same pipelines/IR/backend as SQL and profiled by the same Tagging
Dictionary.  Note how every report speaks the DSL's vocabulary: this is
what "report results at a granularity familiar to the reader" (§4.1) means
when the reader is a streaming engineer rather than a SQL user.

Run:  python examples/streaming_flow.py
"""

from repro import Database
from repro.streaming import EventFlow


def main() -> None:
    print("loading TPC-H (scale 0.002) as an event source...")
    db = Database.tpch(scale=0.002)

    flow = (
        EventFlow(db, "lineitem", label="shipments")
        .where("l_quantity > 10")
        .derive(revenue="l_extendedprice * (1 - l_discount)")
        .tumbling_window("l_shipdate", days=30)
        .aggregate(
            by=["window_start", "l_returnflag"],
            totals={"revenue": "sum(revenue)", "events": "count(*)"},
        )
        .order_by("window_start", "l_returnflag")
    )

    print("\nthe dataflow graph:")
    print(flow.explain())

    result = flow.run()
    print(f"\n{len(result.rows)} windows; first three:")
    for row in result.rows[:3]:
        print("  ", row)

    profile = flow.profile()
    print("\noperator costs, in the DSL's own vocabulary:")
    print(profile.annotated_plan())

    print("\nactivity over time:")
    print(profile.render_timeline(bins=40))

    summary = profile.attribution_summary()
    print(
        f"\n{summary.attributed_share * 100:.1f}% of samples attributed — "
        "the profiling stack needed zero changes for the new frontend."
    )


if __name__ == "__main__":
    main()
