"""Tailored Profiling for compiling dataflow systems.

Reproduction of Beischl et al., *Profiling Dataflow Systems on Multiple
Abstraction Levels* (EuroSys '21): a compiling relational dataflow engine
(SQL -> plan -> pipelines -> SSA IR -> simulated native code) instrumented
with the paper's Tagging Dictionary, Abstraction Trackers, and Register
Tagging, profiled by a PEBS-like sampling PMU on a cycle-accounted simulated
CPU.

Quickstart::

    from repro import Database, ProfilerConfig

    db = Database.tpch(scale=0.001)
    profile = db.profile("select l_returnflag, count(*) c from lineitem "
                         "group by l_returnflag order by l_returnflag")
    print(profile.annotated_plan())
"""

from repro.catalog import Column, DataType, Schema
from repro.engine import Database, ProfilerConfig, ProfilingMode, QueryResult
from repro.plan.physical import PlannerOptions
from repro.vm.pmu import Event

__version__ = "1.0.0"

__all__ = [
    "Column",
    "DataType",
    "Database",
    "Event",
    "PlannerOptions",
    "ProfilerConfig",
    "ProfilingMode",
    "QueryResult",
    "Schema",
    "__version__",
]
