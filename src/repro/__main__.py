"""Command-line interface: run and profile SQL on a TPC-H-like database.

Examples::

    python -m repro --query q1
    python -m repro --scale 0.002 --query q16 --profile --timeline
    python -m repro --sql "select count(*) c from lineitem" --workers 4
    python -m repro --query q9 --profile --mode callstack --json out.json
"""

from __future__ import annotations

import argparse
import sys

from repro import Database, ProfilerConfig, ProfilingMode
from repro.data.queries import ALL_QUERIES, EXAMPLE_QUERY, FIG9_QUERY
from repro.errors import SqlError, format_sql_error
from repro.profiling import export


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Tailored Profiling reproduction: compile, run, and "
                    "profile SQL on a simulated dataflow engine.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--sql", help="a SQL statement to run")
    source.add_argument(
        "--query",
        choices=sorted(ALL_QUERIES) + ["example", "fig9"],
        help="one of the adapted TPC-H queries (q1..q22), or a paper query",
    )
    parser.add_argument(
        "--scale", type=float, default=0.001,
        help="TPC-H scale factor (default 0.001)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="simulated cores for morsel-driven execution",
    )
    parser.add_argument(
        "--profile", action="store_true", help="run with the PMU armed"
    )
    parser.add_argument(
        "--mode",
        choices=[m.value for m in ProfilingMode],
        default=ProfilingMode.REGISTER_TAGGING.value,
        help="shared-location disambiguation mechanism",
    )
    parser.add_argument(
        "--period", type=int, default=5000, help="sampling period (cycles)"
    )
    parser.add_argument(
        "--timeline", action="store_true", help="print the activity timeline"
    )
    parser.add_argument(
        "--pipelines", action="store_true", help="print per-task costs"
    )
    parser.add_argument(
        "--ir", action="store_true", help="print the annotated IR listing"
    )
    parser.add_argument(
        "--explain", action="store_true", help="print the plan and exit"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the profile as JSON"
    )
    parser.add_argument(
        "--folded", metavar="PATH",
        help="write folded stacks (flamegraph input)",
    )
    parser.add_argument(
        "--save-session", metavar="DIR",
        help="persist metadata + samples for offline post-processing",
    )
    parser.add_argument(
        "--dot", metavar="PATH",
        help="write the annotated plan as Graphviz DOT",
    )
    parser.add_argument(
        "--max-rows", type=int, default=20, help="result rows to print"
    )
    _add_fast_vm_flag(parser)
    parser.add_argument(
        "--tiering", action=argparse.BooleanOptionalAction, default=False,
        help="warm the query past the tier-2 promotion threshold and "
             "execute it on profile-specialized traces (docs/TIERING.md); "
             "results and counters are identical to every other tier",
    )
    return parser


def _add_fast_vm_flag(parser: argparse.ArgumentParser) -> None:
    """The shared --fast-vm/--no-fast-vm knob (same help everywhere)."""
    parser.add_argument(
        "--fast-vm", action=argparse.BooleanOptionalAction, default=True,
        help="run on the template-translated fast VM (default) or, with "
             "--no-fast-vm, on the block interpreter; results and counters "
             "are identical — this is a debugging/measurement knob",
    )


def resolve_sql(args) -> str:
    if args.sql:
        return args.sql
    if args.query == "example":
        return EXAMPLE_QUERY.sql
    if args.query == "fig9":
        return FIG9_QUERY.sql
    return ALL_QUERIES[args.query].sql


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "pgo":
        return _pgo_main(argv[1:], out)
    if argv and argv[0] == "fuzz":
        return _fuzz_main(argv[1:], out)
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:], out)
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:], out)
    if argv and argv[0] == "fleet":
        return _fleet_main(argv[1:], out)
    if argv and argv[0] == "storage":
        return _storage_main(argv[1:], out)
    if argv and argv[0] == "views":
        return _views_main(argv[1:], out)
    args = build_parser().parse_args(argv)
    sql = resolve_sql(args)
    try:
        return _run(args, sql, out)
    except SqlError as error:
        print(format_sql_error(sql, error), file=out)
        return 1


def _run(args, sql: str, out) -> int:

    if args.query == "example":
        database = Database.example()
    else:
        database = Database.tpch(scale=args.scale, seed=args.seed)

    if args.explain:
        print(database.explain(sql), file=out)
        return 0

    fast_vm = args.fast_vm
    tiering = None
    if args.tiering:
        from repro.vm.tiering import TieringController

        # a one-shot run would finish before the default threshold ever
        # trips, so the CLI warms with a floor-level controller: the
        # warm run promotes, the reported run executes specialized
        tiering = TieringController(hot_instructions=1)
    if not args.profile:
        if tiering is not None:
            database.execute(
                sql, workers=args.workers, fast_vm=fast_vm, tiering=tiering
            )
        result = database.execute(
            sql, workers=args.workers, fast_vm=fast_vm, tiering=tiering
        )
        _print_result(result, args.max_rows, out)
        if tiering is not None:
            print(f"executed at tier {result.tier}", file=out)
        return 0

    config = ProfilerConfig(mode=ProfilingMode(args.mode), period=args.period)
    if tiering is not None:
        database.profile(
            sql, config, workers=args.workers, fast_vm=fast_vm,
            tiering=tiering,
        )
    profile = database.profile(
        sql, config, workers=args.workers, fast_vm=fast_vm, tiering=tiering
    )
    _print_result(profile.result, args.max_rows, out)
    print(file=out)
    print(profile.annotated_plan(), file=out)
    summary = profile.attribution_summary()
    print(
        f"\n{summary.total_samples} samples: "
        f"{summary.operator_share * 100:.1f}% operators, "
        f"{summary.kernel_share * 100:.1f}% kernel, "
        f"{summary.unattributed_share * 100:.1f}% unattributed",
        file=out,
    )
    if args.timeline:
        print("\nactivity over time:", file=out)
        print(profile.render_timeline(bins=40), file=out)
    if args.pipelines:
        print(file=out)
        print(profile.annotated_pipelines(), file=out)
    if args.ir:
        print(file=out)
        print(profile.annotated_ir(), file=out)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(export.to_json(profile))
        print(f"\nprofile written to {args.json}", file=out)
    if args.folded:
        with open(args.folded, "w") as handle:
            handle.write(export.folded_stacks(profile))
        print(f"folded stacks written to {args.folded}", file=out)
    if args.save_session:
        from repro.profiling.session import save_session

        save_session(profile, args.save_session)
        print(f"session saved to {args.save_session}", file=out)
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(profile.plan_dot())
        print(f"plan graph written to {args.dot}", file=out)
    return 0


def _pgo_main(argv: list[str], out) -> int:
    """``python -m repro pgo <store-dir>``: inspect stored PGO feedback."""
    parser = argparse.ArgumentParser(
        prog="python -m repro pgo",
        description="Inspect the profile-guided-optimization feedback "
                    "recorded in a ProfileStore directory.",
    )
    parser.add_argument(
        "store", help="directory of a persistent repro.pgo ProfileStore"
    )
    parser.add_argument(
        "--fingerprint", help="show only this query fingerprint"
    )
    args = parser.parse_args(argv)

    from repro.errors import ReproError
    from repro.pgo import ProfileStore

    try:
        store = ProfileStore(directory=args.store)
    except ReproError as error:
        print(str(error), file=out)
        return 1
    fingerprints = store.fingerprints()
    if args.fingerprint:
        fingerprints = [f for f in fingerprints if f == args.fingerprint]
    if not fingerprints:
        print(f"no feedback stored under {args.store}", file=out)
        return 1

    for fp in fingerprints:
        feedback = store.feedback(fp)
        print(f"query {fp}  ({feedback.runs} profiled run(s))", file=out)
        sql = " ".join(feedback.sql.split())
        if len(sql) > 100:
            sql = sql[:97] + "..."
        print(f"  sql: {sql}", file=out)
        print(f"  plan signature: {feedback.plan_signature}", file=out)
        if feedback.cardinalities:
            print("  cardinalities (observed vs estimated):", file=out)
            for key in sorted(feedback.cardinalities):
                obs = feedback.cardinalities[key]
                print(
                    f"    {key:<50} {obs.rows:>12,.0f} observed"
                    f"  {obs.estimate:>12,.0f} estimated",
                    file=out,
                )
        hot = [
            (key, stats)
            for key, stats in feedback.branches.items()
            if stats.total >= 4
        ]
        if hot:
            print("  branches (p(cond true), misses/samples):", file=out)
            hot.sort(key=lambda item: -item[1].total)
            for key, stats in hot[:10]:
                print(
                    f"    {key:<50} p={stats.taken_rate:.2f}"
                    f"  {stats.misses}/{stats.total}",
                    file=out,
                )
        if feedback.hotness:
            top = sorted(
                feedback.hotness.items(), key=lambda item: -item[1]
            )[:5]
            print("  hottest instructions:", file=out)
            for key, weight in top:
                print(f"    {key:<50} {weight:,.0f} samples", file=out)
        print(file=out)
    return 0


def _fuzz_main(argv: list[str], out) -> int:
    """``python -m repro fuzz --seed N --budget S``: differential fuzzing."""
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Differentially fuzz the engine: generated queries run "
                    "through every executor (compiled fast-VM, parallel, "
                    "block interpreter, reference interpreter, unoptimized, "
                    "groupjoin, join-order hints, PGO, concurrent query "
                    "service) and must agree — "
                    "including bit-exact fast-VM counters and PMU sample "
                    "streams; disagreements are minimized and written out "
                    "as replayable corpus cases.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    parser.add_argument(
        "--budget", type=int, default=200,
        help="number of generated queries to check (default 200)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="stop early after this much wall-clock time",
    )
    parser.add_argument(
        "--max-hints", type=int, default=4,
        help="join-order-hint permutations to try per query (default 4)",
    )
    parser.add_argument(
        "--rotate-every", type=int, default=25,
        help="generate a fresh random dataset every N queries (default 25)",
    )
    parser.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="write minimized failures to this directory",
    )
    parser.add_argument(
        "--no-pgo", action="store_true",
        help="skip the profile-guided-optimization executor configs",
    )
    parser.add_argument(
        "--no-vm-parity", action="store_true",
        help="skip the fast-VM bit-exactness check (counter and PMU "
             "sample-stream comparison against the block interpreter)",
    )
    parser.add_argument(
        "--no-serve", action="store_true",
        help="skip the concurrent-service isolation config (8 in-flight "
             "copies on shared workers vs a single-query run)",
    )
    parser.add_argument(
        "--no-storage", action="store_true",
        help="skip the storage-layout twin configs (plain vs zone-mapped "
             "vs compressed physical layouts over the same rows)",
    )
    parser.add_argument(
        "--no-fleet", action="store_true",
        help="skip the fleet-sharded twin configs (scatter/gather over "
             "1, 2, and 4 router shards vs the single-node reference, "
             "plus merged-profile sample-total accounting)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without minimizing them",
    )
    parser.add_argument(
        "--inject-miscompile", action="store_true",
        help="deliberately miscompile every query (self-test: the oracle "
             "and shrinker must catch the planted fault)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-query progress"
    )
    args = parser.parse_args(argv)

    from repro.fuzz import run_fuzz

    if args.budget < 1:
        print("--budget must be at least 1", file=out)
        return 2

    emit = None if args.quiet else (lambda message: print(message, file=out))
    report = run_fuzz(
        args.seed,
        args.budget,
        max_hints=args.max_hints,
        rotate_every=args.rotate_every,
        check_pgo=not args.no_pgo,
        check_vm_parity=not args.no_vm_parity,
        check_serve=not args.no_serve,
        check_storage=not args.no_storage,
        check_fleet=not args.no_fleet,
        inject_fault="invert-first-cmpeq" if args.inject_miscompile else None,
        time_limit=args.time_limit,
        corpus_dir=args.corpus,
        shrink_failures=not args.no_shrink,
        log=emit,
    )
    print(
        f"fuzz seed={report.seed}: ran {report.queries} queries "
        f"({report.executions} executor runs, {report.datasets} datasets, "
        f"{report.rejected} rejected) in {report.elapsed:.1f}s — "
        f"{len(report.failures)} disagreement(s)",
        file=out,
    )
    for failure in report.failures:
        repro_sql = failure.shrunk_sql or failure.sql
        print(f"  [{', '.join(failure.configs)}] {repro_sql}", file=out)
        if failure.corpus_path:
            print(f"    repro: {failure.corpus_path}", file=out)
    return 0 if report.ok else 1


def _bench_main(argv: list[str], out) -> int:
    """``python -m repro bench --vm``: engine micro-benchmarks."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark the execution engine.  --vm times every "
                    "selected TPC-H query on the template-translated fast "
                    "VM and on the block interpreter (same compiled "
                    "program, best-of-N wall time, parity asserted) and "
                    "reports per-query and geometric-mean speedups.",
    )
    parser.add_argument(
        "--vm", action="store_true",
        help="fast-VM vs interpreter speed comparison",
    )
    parser.add_argument(
        "--queries", default=None,
        help="comma-separated TPC-H query names (default: the "
             "representative vmbench subset; 'all' for q1..q22)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.001,
        help="TPC-H scale factor (default 0.001)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N timing runs per engine (default 3)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="append the run record to this trajectory file "
             "(e.g. BENCH_vm.json)",
    )
    args = parser.parse_args(argv)

    if not args.vm:
        print("nothing to benchmark: pass --vm", file=out)
        return 2

    from repro.data.queries import ALL_QUERIES
    from repro.vmbench import append_trajectory, run_vm_bench

    queries = None
    if args.queries == "all":
        queries = sorted(ALL_QUERIES, key=lambda n: int(n[1:]))
    elif args.queries:
        queries = [name.strip() for name in args.queries.split(",")]
        unknown = [name for name in queries if name not in ALL_QUERIES]
        if unknown:
            print(f"unknown queries: {', '.join(unknown)}", file=out)
            return 2

    record = run_vm_bench(
        queries=queries, scale=args.scale, seed=args.seed,
        repeats=args.repeats, log=lambda message: print(message, file=out),
    )
    if args.json:
        append_trajectory(record, args.json)
        print(f"trajectory appended to {args.json}", file=out)
    return 0


def _serve_main(argv: list[str], out) -> int:
    """``python -m repro serve``: run a workload through the query service."""
    from repro.serve import (
        SERVE_PERIOD_CYCLES,
        QueryService,
        ServiceConfig,
        load_workload,
        run_workload,
        synthetic_workload,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run a multi-client workload through the concurrent "
                    "query service: sessions, admission control, morsel "
                    "interleaving over shared VM workers, and always-on "
                    "workload profiling that attributes every PMU sample "
                    "to its (query, operator) pair.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--workload", metavar="FILE",
        help='JSONL workload file: one {"sql": ..., "client": ..., '
             '"priority": ...} object per line',
    )
    source.add_argument(
        "--synthetic", action="store_true",
        help="generate a deterministic multi-client workload from the "
             "built-in templates over the example schema",
    )
    parser.add_argument(
        "--queries", type=int, default=40,
        help="synthetic workload size (default 40)",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="synthetic workload client sessions (default 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="shared VM workers, i.e. simulated cores (default 4)",
    )
    parser.add_argument(
        "--inflight", type=int, default=8,
        help="maximum concurrently executing queries (default 8)",
    )
    parser.add_argument(
        "--queue", type=int, default=32,
        help="admission queue depth before shedding (default 32)",
    )
    parser.add_argument(
        "--morsel-size", type=int, default=256,
        help="rows per interleaved work unit (default 256)",
    )
    parser.add_argument(
        "--period", type=int, default=SERVE_PERIOD_CYCLES,
        help=f"always-on sampling period in cycles "
             f"(default {SERVE_PERIOD_CYCLES})",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="service seed; session RNGs derive from it (default 0)",
    )
    parser.add_argument(
        "--no-profiling", action="store_true",
        help="disarm the PMU (no workload profile, no PGO feedback)",
    )
    parser.add_argument(
        "--pgo-store", metavar="DIR",
        help="feed the workload profile into this PGO ProfileStore",
    )
    parser.add_argument(
        "--tpch", action="store_true",
        help="serve the TPC-H database instead of the example schema "
             "(requires --workload: the synthetic templates are written "
             "against the example schema)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.001,
        help="TPC-H scale factor for --tpch (default 0.001)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the rolling workload profile after the run",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any query failed or was shed",
    )
    _add_fast_vm_flag(parser)
    parser.add_argument(
        "--tiering", action=argparse.BooleanOptionalAction, default=True,
        help="promote hot programs to tier-2 profile-specialized traces "
             "at morsel boundaries (default; see docs/TIERING.md)",
    )
    args = parser.parse_args(argv)
    if args.tpch and args.synthetic:
        parser.error(
            "--synthetic generates queries over the example schema; "
            "use --workload with --tpch"
        )

    from repro.errors import ReproError

    database = (
        Database.tpch(scale=args.scale, seed=42)
        if args.tpch else Database.example()
    )
    store = None
    if args.pgo_store:
        from repro.pgo import ProfileStore

        store = ProfileStore(directory=args.pgo_store)
    config = ServiceConfig(
        workers=args.workers,
        max_inflight=args.inflight,
        max_queue=args.queue,
        morsel_size=args.morsel_size,
        profiling=not args.no_profiling,
        period=args.period,
        fast_vm=args.fast_vm,
        seed=args.seed,
        tiering=args.tiering,
    )
    service = QueryService(database, config, pgo_store=store)
    try:
        items = (
            load_workload(args.workload) if args.workload
            else synthetic_workload(service, args.queries, args.clients)
        )
        if not items:
            print("workload is empty", file=out)
            return 2
        summary = run_workload(service, items)
    except ReproError as error:
        print(str(error), file=out)
        return 1

    stats = service.stats()
    cache = stats["plan_cache"]
    print(
        f"served {summary.submitted} queries on {stats['workers']} workers "
        f"across {stats['epochs']} epoch(s): {summary.completed} ok, "
        f"{summary.failed} failed, {stats['cancelled']} cancelled, "
        f"{summary.shed} shed",
        file=out,
    )
    print(
        f"plan cache: {cache['hits']} hits, {cache['misses']} misses, "
        f"{cache['entries']} resident; "
        f"{stats['context_switches']} context switches",
        file=out,
    )
    if "tiering" in stats:
        tiering = stats["tiering"]
        print(
            f"tiering: {tiering['promotions']} promotion(s), "
            f"{tiering['hot_programs']} hot program(s), "
            f"{tiering['deopts']} deopt(s)",
            file=out,
        )
    if service.profiler is not None:
        print(
            f"profiling: {stats['samples']} samples, "
            f"tag accuracy {stats['tag_accuracy'] * 100:.2f}%",
            file=out,
        )
    for result in summary.results:
        if result.status != "ok":
            detail = result.error or result.status
            print(
                f"  ticket {result.ticket} [{result.session}]: {detail}",
                file=out,
            )
    if args.report and service.profiler is not None:
        print(file=out)
        print(service.workload_profile().render(), file=out)
    if store is not None:
        print(f"PGO feedback recorded under {args.pgo_store}", file=out)
    if args.strict and not summary.clean:
        return 1
    return 0


def _fleet_main(argv: list[str], out) -> int:
    """``python -m repro fleet``: a sharded workload behind the router."""
    import zlib
    from random import Random

    from repro.errors import ReproError
    from repro.fleet import Fleet, FleetConfig, fleet_profile, run_fleet_workload
    from repro.serve import SYNTHETIC_TEMPLATES

    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Run a multi-tenant workload through the fleet router: "
                    "the example fact table partitions across N query-"
                    "service shards, queries execute by scatter/gather "
                    "(partial aggregates pushed down, merged and re-sorted "
                    "router-side), and per-shard continuous profiles merge "
                    "into one fleet-wide hotspot report with per-tenant "
                    "and per-shard attribution.",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="query-service shards behind the router (default 4)",
    )
    parser.add_argument(
        "--scheme", choices=["hash", "range"], default="hash",
        help="partitioning scheme for the fact table (default hash)",
    )
    parser.add_argument(
        "--queries", type=int, default=40,
        help="synthetic workload size (default 40)",
    )
    parser.add_argument(
        "--tenants", type=int, default=3,
        help="tenants submitting round-robin (default 3)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="simulated cores per shard (default 2)",
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=None,
        help="max in-flight fleet queries per tenant (default unlimited)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="fleet seed; tenant RNGs derive from it (default 0)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the merged fleet profile after the run",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any query failed",
    )
    _add_fast_vm_flag(parser)
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be at least 1")

    try:
        fleet = Fleet(
            Database.example(),
            FleetConfig(
                shards=args.shards, scheme=args.scheme,
                workers=args.workers, fast_vm=args.fast_vm,
                seed=args.seed, tenant_quota=args.tenant_quota,
            ),
        )
    except ReproError as error:
        print(str(error), file=out)
        return 1

    # deterministic per-tenant query streams, seeded like service sessions
    names = [f"tenant-{i}" for i in range(args.tenants)]
    rngs = {
        name: Random(zlib.crc32(f"{args.seed}:{name}".encode()))
        for name in names
    }
    items = []
    for index in range(args.queries):
        name = names[index % args.tenants]
        rng = rngs[name]
        sql = rng.choice(SYNTHETIC_TEMPLATES).format(
            price=round(rng.uniform(50.0, 450.0), 2),
            hi_price=round(rng.uniform(400.0, 490.0), 2),
        )
        items.append((name, sql))

    results = run_fleet_workload(fleet, items)
    stats = fleet.stats()
    print(
        f"fleet of {stats['shards']} shard(s) "
        f"[{stats['partition']}]: served {stats['submitted']} queries — "
        f"{stats['completed']} ok ({stats['degraded']} degraded), "
        f"{stats['failed']} failed, {stats['cancelled']} cancelled; "
        f"makespan {stats['makespan_cycles']:,} cycles",
        file=out,
    )
    failed = 0
    for result in results:
        status = getattr(result, "status", "failed")
        if status in ("ok", "degraded"):
            continue
        failed += 1
        detail = getattr(result, "error", result)
        ticket = getattr(result, "ticket", "-")
        print(f"  ticket {ticket}: {detail}", file=out)
    snapshot = fleet.profile_snapshot()
    if snapshot is not None:
        print(
            f"profiling: {snapshot.samples} merged samples "
            f"(= sum over shards), tag accuracy "
            f"{snapshot.accuracy * 100:.2f}%",
            file=out,
        )
    if args.report:
        print(file=out)
        print(fleet_profile(fleet).render(), file=out)
    if args.strict and failed:
        return 1
    return 0


def _storage_main(argv: list[str], out) -> int:
    """``python -m repro storage``: inspect the physical table layout."""
    parser = argparse.ArgumentParser(
        prog="python -m repro storage",
        description="Print the columnar storage layout of the TPC-H "
                    "database: shards, segments, chosen encodings, "
                    "compression ratios, and zone-map ranges.  With "
                    "--query, run that query first so the summary also "
                    "shows observed zone-map pruning and loader advice.",
    )
    parser.add_argument(
        "--scale", type=float, default=0.001,
        help="TPC-H scale factor (default 0.001)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--segment-rows", type=int, default=None,
        help="rows per segment (power of two; default from StorageConfig)",
    )
    parser.add_argument(
        "--plain", action="store_true",
        help="build the uncompressed layout instead of the encoded one",
    )
    parser.add_argument(
        "--query", choices=sorted(ALL_QUERIES), default=None,
        help="run this TPC-H query before summarizing, to populate the "
             "observed zone-map pruning counters",
    )
    args = parser.parse_args(argv)

    from repro.errors import ReproError
    from repro.storage import StorageConfig

    kwargs = {}
    if args.segment_rows is not None:
        kwargs["segment_rows"] = args.segment_rows
    try:
        config = (
            StorageConfig.pruned(**kwargs) if args.plain
            else StorageConfig(**kwargs)
        )
        database = Database.tpch(
            scale=args.scale, seed=args.seed, storage=config
        )
        if args.query:
            database.execute(ALL_QUERIES[args.query].sql)
    except ReproError as error:
        print(str(error), file=out)
        return 1
    print(database.storage.summary(), file=out)
    advice = database.storage.encoding_advice()
    if advice:
        print(file=out)
        print("loader advice:", file=out)
        for line in advice:
            print(f"  {line}", file=out)
    return 0


def _views_main(argv: list[str], out) -> int:
    """``python -m repro views``: the incremental materialized-view tier."""
    parser = argparse.ArgumentParser(
        prog="python -m repro views",
        description="Incremental materialized views (docs/VIEWS.md).  The "
                    "default demo registers standing queries — SQL and an "
                    "EventFlow with having() — over the example database, "
                    "subscribes a session, applies delta batches including "
                    "retractions, and prints the pushed updates plus the "
                    "per-view maintenance profile.  --fuzz runs the "
                    "views-incremental differential oracle instead: every "
                    "maintained view is bag-compared against re-running "
                    "its query from scratch after every batch.",
    )
    parser.add_argument(
        "--fuzz", action="store_true",
        help="run the views-incremental differential oracle",
    )
    parser.add_argument(
        "--queries", type=int, default=100,
        help="standing queries to register under --fuzz (default 100)",
    )
    parser.add_argument(
        "--batches", type=int, default=5,
        help="delta batches per dataset under --fuzz, and demo batches "
             "(default 5)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="stop the fuzz campaign early after this much wall-clock time",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-dataset progress"
    )
    args = parser.parse_args(argv)

    if args.fuzz:
        from repro.fuzz.views import run_views_fuzz

        if args.queries < 1:
            print("--queries must be at least 1", file=out)
            return 2
        emit = (
            None if args.quiet
            else (lambda message: print(message, file=out))
        )
        report = run_views_fuzz(
            args.seed, args.queries, batches=args.batches,
            time_limit=args.time_limit, log=emit,
        )
        print(
            f"views-fuzz seed={report.seed}: {report.views} views over "
            f"{report.datasets} datasets, {report.batches} delta batches, "
            f"{report.checks} differential checks "
            f"({report.retractions} retractions, {report.rejected} "
            f"rejected) in {report.elapsed:.1f}s — "
            f"{len(report.failures)} disagreement(s)",
            file=out,
        )
        for failure in report.failures:
            print(
                f"  view {failure.view} batch {failure.batch} "
                f"[dataset {failure.dataset_seed}]: {failure.reason}",
                file=out,
            )
            if failure.sql:
                print(f"    {failure.sql}", file=out)
        return 0 if report.ok else 1

    from random import Random

    from repro.serve import QueryService, ServiceConfig
    from repro.streaming import EventFlow
    from repro.views import ViewService

    database = Database.example(n_sales=2000, n_products=100)
    service = QueryService(database, ServiceConfig(workers=2))
    views = ViewService(service)

    views.register(
        "by_bucket",
        "select id % 7 as bucket, sum(price) as total, count(*) as n "
        "from sales group by id % 7",
    )
    views.register(
        "top_tickets",
        "select id as sale, price as price from sales "
        "order by price desc, sale asc limit 5",
    )
    views.register(
        "hot_margins",
        EventFlow(database, "sales", label="tickets")
        .derive(margin="price - prod_costs")
        .aggregate(by=[], totals={"total_margin": "sum(margin)",
                                  "n": "count(*)"})
        .having("n > 0"),
    )
    subscription = views.subscribe("by_bucket", "dashboard")

    rng = Random(args.seed)
    table = database.catalog.table("sales")
    live = [
        (raw[0], raw[1] / 100, raw[2] / 100, raw[3] / 100)
        for raw in zip(*table.columns)
    ]
    next_id = max(row[0] for row in live) + 1
    for _ in range(max(1, args.batches)):
        changes = []
        for _ in range(4):
            row = (
                next_id,
                round(rng.uniform(1.0, 700.0), 2),
                round(rng.uniform(1.0, 1.4), 2),
                round(rng.uniform(1.0, 300.0), 2),
            )
            next_id += 1
            live.append(row)
            changes.append((row, 1))
        for _ in range(2):
            changes.append((live.pop(rng.randrange(len(live))), -1))
        views.apply({"sales": changes})

    for view_name in ("by_bucket", "top_tickets", "hot_margins"):
        view = views.view(view_name)
        print(
            f"view {view.name} v{view.version}: "
            f"{len(view.materialize())} row(s)",
            file=out,
        )
        for row in view.materialize()[:5]:
            print(f"  {row}", file=out)
    updates = subscription.pull()
    deltas = sum(1 for update in updates if update.kind == "delta")
    changed = sum(len(update.rows) for update in updates
                  if update.kind == "delta")
    print(
        f"subscription 'dashboard' on by_bucket: 1 snapshot + "
        f"{deltas} delta update(s), {changed} (row, weight) change(s)",
        file=out,
    )
    print(file=out)
    print(views.maintenance_report(), file=out)
    snapshot = service.profile_snapshot()
    if snapshot is not None:
        per_view = sum(s.samples for s in snapshot.views.values())
        print(
            f"\nprofiling: {snapshot.maintenance_samples} maintenance "
            f"samples ({per_view} attributed per-view), "
            f"{snapshot.maintenance_instructions:,} maintenance "
            f"instructions",
            file=out,
        )
    return 0


def _print_result(result, max_rows: int, out) -> None:
    print(" | ".join(result.columns), file=out)
    for row in result.rows[:max_rows]:
        print(" | ".join(str(v) for v in row), file=out)
    if len(result.rows) > max_rows:
        print(f"... ({len(result.rows)} rows total)", file=out)
    print(
        f"[{result.instructions:,} instructions, {result.cycles:,} cycles]",
        file=out,
    )


if __name__ == "__main__":
    raise SystemExit(main())
