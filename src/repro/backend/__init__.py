"""The final lowering step: IR to native machine instructions.

Plays the role of the LLVM backend in the paper's stack: instruction
selection, linear-scan register allocation (with an optionally *reserved*
tag register, the mechanism behind Register Tagging's 2.8 % reservation
cost), IR-level optimizations (constant folding, dead-code elimination,
common-subexpression elimination), and DWARF-like debug information mapping
every native instruction back to the IR instruction it was selected from.
"""

from repro.backend.compiler import BackendOptions, CompiledFunction, compile_module
from repro.backend.opts import OptimizationResult, optimize_function

__all__ = [
    "BackendOptions",
    "CompiledFunction",
    "OptimizationResult",
    "compile_module",
    "optimize_function",
]
