"""Backend driver: verify, optimize, select, allocate, link.

``compile_module`` appends every function of an IR module to a native
:class:`~repro.vm.isa.Program`, resolving cross-function calls against both
the module itself and anything already linked into the program (the
pre-compiled runtime library).  It returns per-function compilation
artifacts, including the optimizer's Tagging-Dictionary deltas and the
allocator's spill statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BackendError
from repro.ir.nodes import Module
from repro.ir.verifier import verify_function
from repro.vm.isa import CodeRegion, FunctionInfo, Opcode, Program, rebase
from repro.backend.feedback import BackendFeedback
from repro.backend.isel import select_function
from repro.backend.opts import OptimizationResult, optimize_function
from repro.backend.regalloc import AllocationStats, allocate_function


@dataclass(frozen=True)
class BackendOptions:
    """Knobs the evaluation sweeps over."""

    reserve_tag_register: bool = False  # Register Tagging on/off
    # query-qualified tagging (repro.serve): constant settags preserve the
    # query-id half of the tag register instead of overwriting the whole
    # register, so one cached compile serves many concurrent queries
    qualify_tags: bool = False
    optimize: bool = True  # constfold + CSE + DCE
    # profile feedback (repro.pgo): branch layout + spill-cost hints,
    # resolved per function after optimization
    feedback: "BackendFeedback | None" = None
    # deliberate-miscompile hook for the differential fuzzer: the named
    # fault is injected into the first eligible instruction of the module
    # (see _inject_fault).  Never set outside tests/fuzzing.
    inject_fault: str | None = None


_CMP_NEGATION = {
    "cmpeq": "cmpne", "cmpne": "cmpeq",
    "cmplt": "cmpge", "cmpge": "cmplt",
    "cmple": "cmpgt", "cmpgt": "cmple",
}


def _inject_fault(function, kind: str) -> bool:
    """Miscompile ``function`` in place; returns True once applied.

    ``invert-first-cmpeq`` negates the module's first equality compare —
    the shape of a real branch-inversion miscompile (cf. the PGO backend's
    branch-layout feedback, which this guards against).  Equality feeds
    filters, hash-join probes, and group-by key checks, never loop bounds,
    so the damaged code still terminates — it just answers wrongly.
    """
    if kind != "invert-first-cmpeq":
        raise BackendError(f"unknown fault injection {kind!r}")
    for instr in function.all_instructions():
        if instr.op == "cmpeq":
            instr.op = _CMP_NEGATION[instr.op]
            return True
    return False


@dataclass
class CompiledFunction:
    """Everything the profiler and the benchmarks need per function."""

    name: str
    info: FunctionInfo
    opt_result: OptimizationResult
    alloc_stats: AllocationStats
    native_size: int = 0
    debug_entries: int = 0


@dataclass
class LinkUnit:
    """Intermediate per-function artifact before placement."""

    name: str
    code: list[tuple] = field(default_factory=list)
    debug: dict[int, int] = field(default_factory=dict)
    call_fixups: list[tuple[int, str]] = field(default_factory=list)
    opt_result: OptimizationResult | None = None
    alloc_stats: AllocationStats | None = None


def compile_module(
    module: Module,
    program: Program,
    region: CodeRegion,
    options: BackendOptions | None = None,
) -> dict[str, CompiledFunction]:
    """Compile all functions of ``module`` into ``program``.

    Register Tagging instructions (IR ``settag``) are only materialized when
    ``options.reserve_tag_register`` is set; otherwise they vanish, exactly
    like profiling-disabled production builds.
    """
    options = options or BackendOptions()
    units: list[LinkUnit] = []
    fault_pending = options.inject_fault is not None
    for function in module.functions:
        verify_function(function)
        if options.optimize:
            opt_result = optimize_function(function)
            verify_function(function)
        else:
            opt_result = OptimizationResult()
        if fault_pending and _inject_fault(function, options.inject_fault):
            fault_pending = False
        if options.feedback is not None:
            # keys refer to post-optimization positions, so resolve here
            invert_branches, hotness = options.feedback.resolve(function)
        else:
            invert_branches, hotness = set(), None
        isel = select_function(
            function,
            tagging_enabled=options.reserve_tag_register,
            invert_branches=invert_branches,
            qualify_tags=options.qualify_tags,
        )
        allocated = allocate_function(
            isel.items,
            reserve_tag_register=options.reserve_tag_register,
            hotness=hotness,
        )
        units.append(
            LinkUnit(
                name=function.name,
                code=allocated.code,
                debug=allocated.debug,
                call_fixups=allocated.call_fixups,
                opt_result=opt_result,
                alloc_stats=allocated.stats,
            )
        )

    # place every function, then patch call targets by name
    placed: dict[str, FunctionInfo] = {}
    fixups: list[tuple[int, str]] = []
    compiled: dict[str, CompiledFunction] = {}
    for unit in units:
        start = len(program.code)
        info = program.append_function(
            unit.name, rebase(unit.code, start), region, debug=unit.debug
        )
        placed[unit.name] = info
        fixups.extend((start + offset, target) for offset, target in unit.call_fixups)
        compiled[unit.name] = CompiledFunction(
            name=unit.name,
            info=info,
            opt_result=unit.opt_result,
            alloc_stats=unit.alloc_stats,
            native_size=len(unit.code),
            debug_entries=len(unit.debug),
        )

    for ip, target in fixups:
        if target in placed:
            entry = placed[target].start
        else:
            entry = program.function_named(target).start
        op, _, b, c = program.code[ip]
        if op != Opcode.CALL:
            raise BackendError(f"call fixup at {ip} does not point at a call")
        program.code[ip] = (op, entry, b, c)

    return compiled
