"""Profile feedback consumed by the backend (branch layout, spill choice).

The feedback is keyed by post-optimization IR position (``fn|block|idx``
strings, see :func:`repro.pgo.feedback.ir_position_keys`); the compiler
driver resolves those keys against each function right after optimization,
yielding per-``ir_id`` hints for instruction selection and register
allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# a branch whose condition is true less often than this falls through on
# the false edge instead (with hysteresis around 0.5 so noisy estimates
# near the middle keep the default layout)
INVERT_THRESHOLD = 0.45


@dataclass(frozen=True)
class BackendFeedback:
    """Branch probabilities and instruction hotness for one IR module."""

    # "fn|block|idx" -> p(condition true), already noise-filtered
    branch_probability: dict = field(default_factory=dict)
    # "fn|block|idx" -> relative hotness weight (sample counts)
    hotness: dict = field(default_factory=dict)

    def resolve(self, function) -> tuple[set[int], dict[int, float]]:
        """Translate position keys into this compile's instruction ids.

        Returns ``(invert_branches, hotness_by_ir_id)`` for ``function``:
        the ``condbr`` ids whose hot edge is the false edge, and per-id
        hotness weights for spill-cost ranking.
        """
        invert: set[int] = set()
        hotness: dict[int, float] = {}
        if not self.branch_probability and not self.hotness:
            return invert, hotness
        for block in function.blocks:
            for idx, instr in enumerate(block.instructions):
                key = f"{function.name}|{block.name}|{idx}"
                weight = self.hotness.get(key)
                if weight is not None:
                    hotness[instr.id] = weight
                if instr.op == "condbr":
                    probability = self.branch_probability.get(key)
                    if (
                        probability is not None
                        and probability < INVERT_THRESHOLD
                    ):
                        invert.add(instr.id)
        return invert, hotness
