"""Instruction selection: SSA IR -> virtual-register machine code.

One IR block becomes one labelled region; phis are destructed into parallel
copies at predecessor block ends; constants are folded into immediate
instruction forms where the ISA has them.  Every emitted machine instruction
records the id of the IR instruction it implements — this is the debug
information (the DWARF analogue) the profiler uses for the final
native->IR mapping step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BackendError
from repro.ir.nodes import Block, Const, Function, Instr, Param, Type, Value
from repro.vm.isa import REG_TAG, TAG_TASK_MASK, Opcode
from repro.backend.minst import VREG_BASE, MCallSeq, MInst, MLabel

_BINOP_TO_OPCODE = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "mul": Opcode.MUL,
    "sdiv": Opcode.SDIV,
    "srem": Opcode.SREM,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "shl": Opcode.SHL,
    "shr": Opcode.SHR,
    "rotr": Opcode.ROTR,
    "fdiv": Opcode.FDIV,
    "crc32": Opcode.CRC32,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
    "cmpeq": Opcode.CMPEQ,
    "cmpne": Opcode.CMPNE,
    "cmplt": Opcode.CMPLT,
    "cmple": Opcode.CMPLE,
    "cmpgt": Opcode.CMPGT,
    "cmpge": Opcode.CMPGE,
}

# ops with an immediate form for a constant right-hand side
_IMM_FORM = {
    "add": Opcode.ADDI,
    "mul": Opcode.MULI,
    "and": Opcode.ANDI,
    "shl": Opcode.SHLI,
    "shr": Opcode.SHRI,
    "xor": Opcode.XORI,
    "cmpeq": Opcode.CMPEQI,
    "cmpne": Opcode.CMPNEI,
    "cmplt": Opcode.CMPLTI,
    "cmple": Opcode.CMPLEI,
    "cmpgt": Opcode.CMPGTI,
    "cmpge": Opcode.CMPGEI,
}


@dataclass
class IselResult:
    """Virtual-register code for one function, ready for allocation."""

    items: list = field(default_factory=list)
    param_vregs: list[int] = field(default_factory=list)
    next_vreg: int = VREG_BASE


class _Isel:
    def __init__(
        self,
        function: Function,
        tagging_enabled: bool,
        invert_branches: set[int] | frozenset = frozenset(),
        qualify_tags: bool = False,
    ):
        self.function = function
        self.tagging_enabled = tagging_enabled
        self.invert_branches = invert_branches
        self.qualify_tags = qualify_tags
        self.items: list = []
        self.next_vreg = VREG_BASE
        self.value_vreg: dict[int, int] = {}
        self.param_vreg: dict[int, int] = {}
        self.phi_vreg: dict[int, int] = {}

    def fresh(self) -> int:
        v = self.next_vreg
        self.next_vreg += 1
        return v

    def emit(self, op, a=0, b=0, c=0, ir_id=None) -> None:
        self.items.append(MInst(op, a, b, c, ir_id=ir_id))

    # -- operand handling --------------------------------------------------

    def vreg_of(self, value: Value, ir_id: int | None) -> int:
        """Return a vreg holding ``value``, materializing constants."""
        if isinstance(value, Const):
            v = self.fresh()
            self.emit(Opcode.MOVI, v, value.value, ir_id=ir_id)
            return v
        if isinstance(value, Param):
            return self.param_vreg[value.index]
        if isinstance(value, Instr):
            if value.op == "phi":
                return self.phi_vreg[value.id]
            try:
                return self.value_vreg[value.id]
            except KeyError:
                raise BackendError(
                    f"{self.function.name}: use of %{value.id} before selection"
                ) from None
        raise BackendError(f"cannot select operand {value!r}")

    # -- main walk ----------------------------------------------------------

    def run(self) -> IselResult:
        fn = self.function
        # params arrive in r0..r5; copy them into vregs up front
        param_vregs = []
        for param in fn.params:
            v = self.fresh()
            self.param_vreg[param.index] = v
            param_vregs.append(v)
        for i, v in enumerate(self.param_vreg.values()):
            if i > 5:
                raise BackendError("more than 6 parameters are not supported")
            self.emit(Opcode.MOV, v, i)

        # pre-assign vregs for all phis (referenced across blocks)
        for block in fn.blocks:
            for instr in block.instructions:
                if instr.op == "phi":
                    self.phi_vreg[instr.id] = self.fresh()

        if fn.blocks:
            self.emit_jump_to(fn.entry)
        for block in fn.blocks:
            self.items.append(MLabel(block.name))
            for instr in block.instructions:
                self.select(block, instr)

        return IselResult(
            items=self.items,
            param_vregs=param_vregs,
            next_vreg=self.next_vreg,
        )

    def emit_jump_to(self, block: Block) -> None:
        self.items.append(MInst(Opcode.JMP, block.name))

    def emit_phi_copies(self, pred: Block, ir_id: int) -> None:
        """Parallel copies for all phis of all successors of ``pred``."""
        term = pred.terminator
        copies: list[tuple[int, Value]] = []
        for target in term.targets:
            for instr in target.instructions:
                if instr.op != "phi":
                    break
                for value, inc_block in instr.incomings:
                    if inc_block is pred:
                        copies.append((self.phi_vreg[instr.id], value))
        if not copies:
            return
        if len(copies) == 1:
            dst, value = copies[0]
            self.emit_copy(dst, value, ir_id)
            return
        # read all sources into temps first: a correct parallel copy even
        # when a phi vreg appears as another phi's incoming value
        temps = []
        for _, value in copies:
            tmp = self.fresh()
            self.emit_copy(tmp, value, ir_id)
            temps.append(tmp)
        for (dst, _), tmp in zip(copies, temps):
            self.emit(Opcode.MOV, dst, tmp, ir_id=ir_id)

    def emit_copy(self, dst: int, value: Value, ir_id: int) -> None:
        if isinstance(value, Const):
            self.emit(Opcode.MOVI, dst, value.value, ir_id=ir_id)
        else:
            self.emit(Opcode.MOV, dst, self.vreg_of(value, ir_id), ir_id=ir_id)

    def select(self, block: Block, instr: Instr) -> None:  # noqa: C901
        op = instr.op
        iid = instr.id
        if op == "phi":
            return  # handled by predecessor copies
        if op == "nop":
            return

        if op in _BINOP_TO_OPCODE:
            a, b = instr.args
            dst = self.fresh()
            if (
                isinstance(b, Const)
                and op in _IMM_FORM
                and isinstance(b.value, int)
            ):
                imm = b.value
                if op in ("shl", "shr"):
                    imm &= 63  # the shift field is 6 bits, as on hardware
                self.emit(_IMM_FORM[op], dst, self.vreg_of(a, iid), imm, ir_id=iid)
            elif op == "sub" and isinstance(b, Const) and isinstance(b.value, int):
                self.emit(Opcode.ADDI, dst, self.vreg_of(a, iid), -b.value, ir_id=iid)
            else:
                va = self.vreg_of(a, iid)
                vb = self.vreg_of(b, iid)
                self.emit(_BINOP_TO_OPCODE[op], dst, va, vb, ir_id=iid)
            self.value_vreg[iid] = dst
            return

        if op == "gep":
            base = self.vreg_of(instr.args[0], iid)
            dst = self.fresh()
            if len(instr.args) > 1:
                index = instr.args[1]
                if isinstance(index, Const):
                    self.emit(
                        Opcode.ADDI, dst, base,
                        index.value * instr.scale + instr.offset, ir_id=iid,
                    )
                    self.value_vreg[iid] = dst
                    return
                vi = self.vreg_of(index, iid)
                scale = instr.scale
                if scale == 1:
                    scaled = vi
                elif scale & (scale - 1) == 0:
                    scaled = self.fresh()
                    self.emit(Opcode.SHLI, scaled, vi, scale.bit_length() - 1, ir_id=iid)
                else:
                    scaled = self.fresh()
                    self.emit(Opcode.MULI, scaled, vi, scale, ir_id=iid)
                if instr.offset:
                    summed = self.fresh()
                    self.emit(Opcode.ADD, summed, base, scaled, ir_id=iid)
                    self.emit(Opcode.ADDI, dst, summed, instr.offset, ir_id=iid)
                else:
                    self.emit(Opcode.ADD, dst, base, scaled, ir_id=iid)
            else:
                self.emit(Opcode.ADDI, dst, base, instr.offset, ir_id=iid)
            self.value_vreg[iid] = dst
            return

        if op == "load":
            dst = self.fresh()
            self.emit(Opcode.LOAD, dst, self.vreg_of(instr.args[0], iid), 0, ir_id=iid)
            self.value_vreg[iid] = dst
            return

        if op == "store":
            ptr, value = instr.args
            self.emit(
                Opcode.STORE,
                self.vreg_of(ptr, iid),
                self.vreg_of(value, iid),
                0,
                ir_id=iid,
            )
            return

        if op == "select":
            cond, tval, fval = instr.args
            dst = self.fresh()
            self.emit(
                Opcode.SELECT,
                dst,
                self.vreg_of(cond, iid),
                (self.vreg_of(tval, iid), self.vreg_of(fval, iid)),
                ir_id=iid,
            )
            self.value_vreg[iid] = dst
            return

        if op == "sitofp":
            dst = self.fresh()
            self.emit(Opcode.CVTIF, dst, self.vreg_of(instr.args[0], iid), ir_id=iid)
            self.value_vreg[iid] = dst
            return

        if op == "fptosi":
            dst = self.fresh()
            self.emit(Opcode.CVTFI, dst, self.vreg_of(instr.args[0], iid), ir_id=iid)
            self.value_vreg[iid] = dst
            return

        if op == "settag":
            if not self.tagging_enabled:
                return
            dst = self.fresh()
            self.emit(Opcode.MOV, dst, REG_TAG, ir_id=iid)
            tag = instr.args[0]
            if isinstance(tag, Const):
                if self.qualify_tags:
                    # preserve the query-id half installed by the serve
                    # scheduler: clear the task half, then XOR the new
                    # task id into the (now zero) low 32 bits
                    self.emit(
                        Opcode.ANDI, REG_TAG, REG_TAG, ~TAG_TASK_MASK,
                        ir_id=iid,
                    )
                    self.emit(
                        Opcode.XORI, REG_TAG, REG_TAG, tag.value, ir_id=iid
                    )
                else:
                    self.emit(Opcode.MOVI, REG_TAG, tag.value, ir_id=iid)
            else:
                # restoring a saved tag: the saved value already carries
                # the full (query-id, task) pair, MOV preserves both halves
                self.emit(Opcode.MOV, REG_TAG, self.vreg_of(tag, iid), ir_id=iid)
            self.value_vreg[iid] = dst
            return

        if op in ("call", "kcall"):
            args = []
            for arg in instr.args:
                if isinstance(arg, Const) and isinstance(arg.value, int):
                    args.append(("imm", arg.value))
                else:
                    args.append(self.vreg_of(arg, iid))
            dst = self.fresh() if instr.type != Type.VOID else None
            self.items.append(
                MCallSeq(
                    target=instr.offset if op == "kcall" else instr.callee,
                    args=args,
                    dst=dst,
                    is_kernel=(op == "kcall"),
                    ir_id=iid,
                )
            )
            if dst is not None:
                self.value_vreg[iid] = dst
            return

        if op == "br":
            self.emit_phi_copies(block, iid)
            self.emit(Opcode.JMP, instr.targets[0].name, ir_id=iid)
            return

        if op == "condbr":
            cond = self.vreg_of(instr.args[0], iid)
            self.emit_phi_copies(block, iid)
            if iid in self.invert_branches:
                # profile feedback says the condition is usually false:
                # branch on the cold (true) edge so the hot edge falls
                # through to the cheaper JMP (1 vs 2 branch instructions
                # retired on the common path)
                self.emit(Opcode.BRZ, cond, instr.targets[1].name, ir_id=iid)
                self.emit(Opcode.JMP, instr.targets[0].name, ir_id=iid)
            else:
                self.emit(Opcode.BRNZ, cond, instr.targets[0].name, ir_id=iid)
                self.emit(Opcode.JMP, instr.targets[1].name, ir_id=iid)
            return

        if op == "ret":
            if instr.args:
                value = instr.args[0]
                if isinstance(value, Const):
                    self.emit(Opcode.MOVI, 0, value.value, ir_id=iid)
                else:
                    self.emit(Opcode.MOV, 0, self.vreg_of(value, iid), ir_id=iid)
            self.emit(Opcode.RET, ir_id=iid)
            return

        raise BackendError(f"no selection rule for IR op {op!r}")


def select_function(
    function: Function,
    tagging_enabled: bool = False,
    invert_branches: set[int] | frozenset = frozenset(),
    qualify_tags: bool = False,
) -> IselResult:
    """Lower one IR function to virtual-register machine code.

    ``invert_branches`` holds the ids of ``condbr`` instructions whose hot
    edge is the *false* edge (profile feedback); those lower with the
    BRZ/JMP layout so the common path retires one branch instead of two.
    ``qualify_tags`` makes constant ``settag``s preserve the query-id half
    of the tag register (concurrent serving, repro.serve).
    """
    return _Isel(function, tagging_enabled, invert_branches, qualify_tags).run()
