"""Machine-instruction forms used between instruction selection and emission.

Instruction selection produces a flat list of :class:`MLabel`,
:class:`MInst`, and :class:`MCallSeq` items over *virtual* registers
(integers >= :data:`VREG_BASE`); the register allocator rewrites them onto
physical registers and expands call sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm.isa import Opcode

VREG_BASE = 32

# instructions whose ``c`` slot is an immediate, never a register
_IMM_C_OPS = frozenset({
    Opcode.LOAD, Opcode.ADDI, Opcode.MULI, Opcode.ANDI, Opcode.SHLI,
    Opcode.SHRI, Opcode.XORI, Opcode.CMPEQI, Opcode.CMPNEI, Opcode.CMPLTI,
    Opcode.CMPLEI, Opcode.CMPGTI, Opcode.CMPGEI, Opcode.STORE,
})


def is_vreg(operand) -> bool:
    return isinstance(operand, int) and operand >= VREG_BASE


@dataclass
class MInst:
    """One native instruction over virtual or physical registers."""

    op: int
    a: object = 0
    b: object = 0
    c: object = 0
    ir_id: int | None = None

    def defs(self) -> list[int]:
        """Virtual registers written by this instruction."""
        op = self.op
        if op in (Opcode.STORE, Opcode.JMP, Opcode.BRZ, Opcode.BRNZ,
                  Opcode.RET, Opcode.NOP, Opcode.HALT):
            return []
        return [self.a] if is_vreg(self.a) else []

    def uses(self) -> list[int]:
        """Virtual registers read by this instruction."""
        op = self.op
        out = []
        if op == Opcode.STORE:
            if is_vreg(self.a):
                out.append(self.a)
            if is_vreg(self.b):
                out.append(self.b)
        elif op in (Opcode.BRZ, Opcode.BRNZ):
            if is_vreg(self.a):
                out.append(self.a)
        elif op == Opcode.SELECT:
            if is_vreg(self.b):
                out.append(self.b)
            rt, rf = self.c
            if is_vreg(rt):
                out.append(rt)
            if is_vreg(rf):
                out.append(rf)
        elif op in (Opcode.JMP, Opcode.RET, Opcode.NOP, Opcode.HALT, Opcode.MOVI):
            pass
        else:
            if is_vreg(self.b):
                out.append(self.b)
            if op not in _IMM_C_OPS and is_vreg(self.c):
                out.append(self.c)
        return out


@dataclass
class MLabel:
    """A branch target in the virtual instruction stream."""

    name: str


@dataclass
class MCallSeq:
    """A call pseudo-instruction, expanded after register allocation.

    ``target`` is a function name (native call) or a kernel id (when
    ``is_kernel``).  ``args`` are virtual registers or immediate ints;
    ``dst`` receives r0 afterwards if not None.
    """

    target: object
    args: list = field(default_factory=list)
    dst: int | None = None
    is_kernel: bool = False
    ir_id: int | None = None

    def uses(self) -> list[int]:
        return [a for a in self.args if is_vreg(a)]

    def defs(self) -> list[int]:
        return [self.dst] if self.dst is not None else []
