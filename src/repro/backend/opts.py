"""IR-level optimization passes: constant folding, CSE, dead-code elimination.

These are the paper's Table 1 optimizations.  Each pass reports what it did
in an :class:`OptimizationResult` so the Tagging Dictionary can be kept
consistent (§4.2.7): eliminated instructions are *removed* from the
dictionary (their ids can never appear in samples), and instructions merged
by common-subexpression elimination gain *multiple* parents — a sample on
the surviving instruction belongs to every original source location.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.nodes import BINARY_OPS, CMP_OPS, Const, Function, Instr, Type, Value
from repro.vm.machine import _sdiv, crc32_mix

_MASK64 = (1 << 64) - 1

_PURE_OPS = BINARY_OPS | CMP_OPS | {"gep", "select", "sitofp", "fptosi"}


@dataclass
class OptimizationResult:
    """What the optimizer changed, keyed by IR instruction id."""

    removed: set[int] = field(default_factory=set)
    merged: dict[int, set[int]] = field(default_factory=dict)
    folded: int = 0

    def record_merge(self, survivor: int, duplicate: int) -> None:
        group = self.merged.setdefault(survivor, set())
        group.add(duplicate)
        # transitively absorb anything the duplicate had already absorbed
        if duplicate in self.merged:
            group |= self.merged.pop(duplicate)


def _wrap_mul(a: int, b: int) -> int:
    r = (a * b) & _MASK64
    return r - (1 << 64) if r >= (1 << 63) else r


def _eval_binary(op: str, a, b):
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return _wrap_mul(a, b) if isinstance(a, int) and isinstance(b, int) else a * b
    if op == "sdiv":
        return _sdiv(a, b)
    if op == "srem":
        return a - b * _sdiv(a, b)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b & 63)) & _MASK64
    if op == "shr":
        return (a & _MASK64) >> (b & 63)
    if op == "rotr":
        v = a & _MASK64
        s = b & 63
        return ((v >> s) | (v << (64 - s))) & _MASK64
    if op == "crc32":
        return crc32_mix(a, b)
    if op == "fdiv":
        return a / b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    if op == "cmpeq":
        return 1 if a == b else 0
    if op == "cmpne":
        return 1 if a != b else 0
    if op == "cmplt":
        return 1 if a < b else 0
    if op == "cmple":
        return 1 if a <= b else 0
    if op == "cmpgt":
        return 1 if a > b else 0
    if op == "cmpge":
        return 1 if a >= b else 0
    raise AssertionError(op)


def _replace_uses(function: Function, old: Instr, new: Value) -> None:
    for block in function.blocks:
        for instr in block.instructions:
            instr.args = [new if a is old else a for a in instr.args]
            if instr.op == "phi":
                instr.incomings = [
                    (new if v is old else v, b) for v, b in instr.incomings
                ]


def constant_fold(function: Function, result: OptimizationResult) -> bool:
    """Fold instructions whose operands are all constants; returns progress."""
    progress = False
    for block in function.blocks:
        for instr in list(block.instructions):
            folded: Value | None = None
            if (
                instr.op in BINARY_OPS or instr.op in CMP_OPS
            ) and all(isinstance(a, Const) for a in instr.args):
                a, b = (arg.value for arg in instr.args)
                if instr.op in ("sdiv", "srem", "fdiv") and b == 0:
                    continue  # leave the runtime fault in place
                folded = Const(_eval_binary(instr.op, a, b), instr.type)
            elif instr.op == "select" and isinstance(instr.args[0], Const):
                folded_value = instr.args[1] if instr.args[0].value else instr.args[2]
                folded = folded_value
            elif instr.op == "sitofp" and isinstance(instr.args[0], Const):
                folded = Const(float(instr.args[0].value), Type.F64)
            elif instr.op == "fptosi" and isinstance(instr.args[0], Const):
                folded = Const(int(instr.args[0].value), Type.I64)
            if folded is not None:
                _replace_uses(function, instr, folded)
                block.instructions.remove(instr)
                result.removed.add(instr.id)
                result.folded += 1
                progress = True
    return progress


def common_subexpression_elimination(
    function: Function, result: OptimizationResult
) -> bool:
    """Local (per-block) CSE over pure instructions."""
    progress = False

    def key_of(instr: Instr):
        parts: list = [instr.op, instr.type, instr.scale, instr.offset]
        for arg in instr.args:
            if isinstance(arg, Const):
                parts.append(("const", arg.value, arg.type))
            elif isinstance(arg, Instr):
                parts.append(("instr", arg.id))
            else:
                parts.append(("param", arg.index))
        return tuple(parts)

    for block in function.blocks:
        seen: dict[tuple, Instr] = {}
        for instr in list(block.instructions):
            if instr.op not in _PURE_OPS:
                continue
            key = key_of(instr)
            survivor = seen.get(key)
            if survivor is None:
                seen[key] = instr
                continue
            _replace_uses(function, instr, survivor)
            block.instructions.remove(instr)
            result.record_merge(survivor.id, instr.id)
            progress = True
    return progress


def dead_code_elimination(function: Function, result: OptimizationResult) -> bool:
    """Remove pure instructions whose results are never used."""
    progress = False
    while True:
        used: set[int] = set()
        for block in function.blocks:
            for instr in block.instructions:
                for operand in instr.operands():
                    if isinstance(operand, Instr):
                        used.add(operand.id)
        removed_now = False
        for block in function.blocks:
            for instr in list(block.instructions):
                if instr.op in _PURE_OPS and instr.id not in used:
                    block.instructions.remove(instr)
                    result.removed.add(instr.id)
                    removed_now = True
        if not removed_now:
            return progress
        progress = True


def optimize_function(function: Function) -> OptimizationResult:
    """Run all passes to fixpoint; returns the Tagging-Dictionary deltas."""
    result = OptimizationResult()
    changed = True
    while changed:
        changed = False
        changed |= constant_fold(function, result)
        changed |= common_subexpression_elimination(function, result)
        changed |= dead_code_elimination(function, result)
    return result
