"""Linear-scan register allocation and call-sequence expansion.

The allocatable pool is r7..r14; Register Tagging *reserves* r14, shrinking
the pool — which is exactly how the paper's 2.8 % reservation overhead
arises: fewer registers, more spill traffic.  All registers are caller-saved,
so any value live across a call is spilled to the stack frame (a
simplification relative to LLVM's callee-saved set, biased toward *more*
realistic pressure around the pre-compiled runtime calls the paper's
Register Tagging guards).

Spilled values are accessed through the scratch registers r4/r5, which is
safe because argument registers are only written inside expanded call
sequences, and those never need scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BackendError
from repro.vm.isa import REG_SP, REG_TAG, Opcode
from repro.backend.minst import MCallSeq, MInst, MLabel, is_vreg

POOL_FULL = tuple(range(7, 15))  # r7..r14
SCRATCH_A = 4
SCRATCH_B = 5
SCRATCH_C = 3  # only needed by SELECT, the one three-source instruction


@dataclass
class AllocationStats:
    """Spill statistics, reported by the register-reservation benchmark."""

    vregs: int = 0
    spilled: int = 0
    spill_slots: int = 0
    call_crossings: int = 0


@dataclass
class AllocatedCode:
    """Final function-relative native code plus metadata."""

    code: list[tuple] = field(default_factory=list)
    debug: dict[int, int] = field(default_factory=dict)
    call_fixups: list[tuple[int, str]] = field(default_factory=list)
    stats: AllocationStats = field(default_factory=AllocationStats)


def _successors(items, index, label_pos):
    item = items[index]
    if isinstance(item, MInst):
        if item.op == Opcode.JMP:
            return [label_pos[item.a]]
        if item.op in (Opcode.BRZ, Opcode.BRNZ):
            return [label_pos[item.b], index + 1]
        if item.op in (Opcode.RET, Opcode.HALT):
            return []
    return [index + 1] if index + 1 < len(items) else []


def _liveness(items):
    """Per-item live-out vreg sets via backward iterative dataflow."""
    label_pos = {
        item.name: i for i, item in enumerate(items) if isinstance(item, MLabel)
    }
    n = len(items)
    succs = [_successors(items, i, label_pos) for i in range(n)]
    uses = []
    defs = []
    for item in items:
        if isinstance(item, (MInst, MCallSeq)):
            uses.append(set(item.uses()))
            defs.append(set(item.defs()))
        else:
            uses.append(set())
            defs.append(set())

    live_in = [set() for _ in range(n)]
    live_out = [set() for _ in range(n)]
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            out = set()
            for s in succs[i]:
                out |= live_in[s]
            new_in = uses[i] | (out - defs[i])
            if out != live_out[i] or new_in != live_in[i]:
                live_out[i] = out
                live_in[i] = new_in
                changed = True
    return live_in, live_out


def _intervals(items, live_in, live_out):
    intervals: dict[int, list[int]] = {}

    def touch(vreg, pos):
        interval = intervals.get(vreg)
        if interval is None:
            intervals[vreg] = [pos, pos]
        else:
            if pos < interval[0]:
                interval[0] = pos
            if pos > interval[1]:
                interval[1] = pos

    for i, item in enumerate(items):
        if isinstance(item, (MInst, MCallSeq)):
            for v in item.uses():
                touch(v, i)
            for v in item.defs():
                touch(v, i)
        for v in live_in[i]:
            touch(v, i)
        for v in live_out[i]:
            touch(v, i)
    return intervals


def _vreg_weights(items, hotness: dict[int, float]) -> dict[int, float]:
    """Spill cost per vreg: summed hotness of the instructions touching it."""
    weights: dict[int, float] = {}
    for item in items:
        if not isinstance(item, (MInst, MCallSeq)) or item.ir_id is None:
            continue
        weight = hotness.get(item.ir_id)
        if not weight:
            continue
        for vreg in set(item.uses()) | set(item.defs()):
            weights[vreg] = weights.get(vreg, 0.0) + weight
    return weights


def allocate_function(
    items: list,
    reserve_tag_register: bool = False,
    hotness: dict[int, float] | None = None,
) -> AllocatedCode:
    """Allocate registers and produce final function-relative code.

    ``hotness`` (profile feedback, ir_id -> sample weight) switches the
    spill heuristic from furthest-end to cheapest-to-spill: among the
    candidates, the vreg touched by the coldest instructions is spilled —
    keeping profiled-hot values in registers.
    """
    pool = tuple(r for r in POOL_FULL if not (reserve_tag_register and r == REG_TAG))

    live_in, live_out = _liveness(items)
    intervals = _intervals(items, live_in, live_out)
    weights = _vreg_weights(items, hotness) if hotness else None
    call_positions = [
        i for i, item in enumerate(items) if isinstance(item, MCallSeq)
    ]

    stats = AllocationStats(vregs=len(intervals))

    # values live across a call are spilled (everything is caller-saved)
    spilled: set[int] = set()
    for vreg, (start, end) in intervals.items():
        if any(start < pos < end for pos in call_positions):
            spilled.add(vreg)
            stats.call_crossings += 1

    # linear scan over the remaining intervals
    order = sorted(
        (v for v in intervals if v not in spilled), key=lambda v: intervals[v][0]
    )
    assignment: dict[int, tuple[str, int]] = {}
    active: list[int] = []  # vregs currently holding a register
    free = list(pool)
    for vreg in order:
        start, end = intervals[vreg]
        for other in list(active):
            if intervals[other][1] < start:
                active.remove(other)
                free.append(assignment[other][1])
        if free:
            reg = free.pop()
            assignment[vreg] = ("reg", reg)
            active.append(vreg)
        elif weights is not None:
            # hotness-weighted choice: spill the coldest candidate
            # (ties broken toward the furthest interval end, matching the
            # default heuristic)
            def spill_cost(v, v_end):
                return (weights.get(v, 0.0), -v_end)

            victim = min(active, key=lambda v: spill_cost(v, intervals[v][1]))
            if spill_cost(victim, intervals[victim][1]) < spill_cost(vreg, end):
                assignment[vreg] = assignment[victim]
                assignment[victim] = ("spill", 0)
                spilled.add(victim)
                active.remove(victim)
                active.append(vreg)
            else:
                assignment[vreg] = ("spill", 0)
                spilled.add(vreg)
        else:
            victim = max(active, key=lambda v: intervals[v][1])
            if intervals[victim][1] > end:
                assignment[vreg] = assignment[victim]
                assignment[victim] = ("spill", 0)
                spilled.add(victim)
                active.remove(victim)
                active.append(vreg)
            else:
                assignment[vreg] = ("spill", 0)
                spilled.add(vreg)

    slot_of: dict[int, int] = {}
    for vreg in sorted(spilled):
        slot_of[vreg] = len(slot_of)
    stats.spilled = len(spilled)
    stats.spill_slots = len(slot_of)

    def location(vreg):
        if vreg in slot_of:
            return ("slot", slot_of[vreg] * 8)
        kind, reg = assignment[vreg]
        if kind != "reg":
            raise BackendError(f"vreg {vreg} has no location")
        return ("reg", reg)

    frame = len(slot_of) * 8

    # -- rewrite ----------------------------------------------------------

    out: list = []  # mix of MLabel markers and (tuple, ir_id)
    if frame:
        out.append(((Opcode.ADDI, REG_SP, REG_SP, -frame), None))

    def read_operand(operand, scratch):
        """Return a physical register holding ``operand``."""
        if not is_vreg(operand):
            return operand  # already physical
        kind, value = location(operand)
        if kind == "reg":
            return value
        out.append(((Opcode.LOAD, scratch, REG_SP, value), current_ir))
        return scratch

    for item in items:
        if isinstance(item, MLabel):
            out.append(item)
            continue
        if isinstance(item, MCallSeq):
            current_ir = item.ir_id
            for i, arg in enumerate(item.args):
                if isinstance(arg, tuple) and arg[0] == "imm":
                    out.append(((Opcode.MOVI, i, arg[1], 0), current_ir))
                else:
                    kind, value = location(arg)
                    if kind == "reg":
                        out.append(((Opcode.MOV, i, value, 0), current_ir))
                    else:
                        out.append(((Opcode.LOAD, i, REG_SP, value), current_ir))
            if item.is_kernel:
                out.append(((Opcode.KCALL, item.target, 0, 0), current_ir))
            else:
                out.append((("CALL", item.target), current_ir))
            if item.dst is not None:
                kind, value = location(item.dst)
                if kind == "reg":
                    out.append(((Opcode.MOV, value, 0, 0), current_ir))
                else:
                    out.append(((Opcode.STORE, REG_SP, 0, value), current_ir))
            continue

        ins = item
        current_ir = ins.ir_id
        op = ins.op

        if op == Opcode.RET and frame:
            out.append(((Opcode.ADDI, REG_SP, REG_SP, frame), current_ir))
            out.append(((Opcode.RET, 0, 0, 0), current_ir))
            continue

        if op == Opcode.STORE:
            base = read_operand(ins.a, SCRATCH_A)
            value = read_operand(ins.b, SCRATCH_B)
            out.append(((Opcode.STORE, base, value, ins.c), current_ir))
            continue
        if op in (Opcode.BRZ, Opcode.BRNZ):
            cond = read_operand(ins.a, SCRATCH_A)
            out.append(((op, cond, ins.b, 0), current_ir))
            continue
        if op == Opcode.JMP:
            out.append(((op, ins.a, 0, 0), current_ir))
            continue
        if op in (Opcode.RET, Opcode.NOP, Opcode.HALT):
            out.append(((op, 0, 0, 0), current_ir))
            continue

        if op == Opcode.SELECT:
            cond = read_operand(ins.b, SCRATCH_A)
            rt_in, rf_in = ins.c
            # read both candidate values; they may need the second scratch
            rt = read_operand(rt_in, SCRATCH_B)
            rf = read_operand(rf_in, SCRATCH_C)
            dst_kind, dst_value = (
                location(ins.a) if is_vreg(ins.a) else ("reg", ins.a)
            )
            if dst_kind == "reg":
                out.append(((op, dst_value, cond, (rt, rf)), current_ir))
            else:
                out.append(((op, SCRATCH_A, cond, (rt, rf)), current_ir))
                out.append(((Opcode.STORE, REG_SP, SCRATCH_A, dst_value), current_ir))
            continue

        # generic forms: a = dst (if register-writing), b/c sources
        uses_b = is_vreg(ins.b) and op != Opcode.MOVI
        b = read_operand(ins.b, SCRATCH_A) if uses_b else ins.b
        c = ins.c
        if op not in (Opcode.MOVI, Opcode.MOV, Opcode.LOAD, Opcode.ADDI,
                      Opcode.MULI, Opcode.ANDI, Opcode.SHLI, Opcode.SHRI,
                      Opcode.XORI, Opcode.CMPEQI, Opcode.CMPNEI, Opcode.CMPLTI,
                      Opcode.CMPLEI, Opcode.CMPGTI, Opcode.CMPGEI,
                      Opcode.CVTIF, Opcode.CVTFI):
            if is_vreg(ins.c):
                c = read_operand(ins.c, SCRATCH_B)

        if is_vreg(ins.a):
            dst_kind, dst_value = location(ins.a)
        else:
            dst_kind, dst_value = "reg", ins.a
        if dst_kind == "reg":
            target = dst_value
            rewritten = (op, target, b, c)
            if op == Opcode.MOV and target == b:
                continue  # coalesced copy
            out.append((rewritten, current_ir))
        else:
            out.append(((op, SCRATCH_A, b, c), current_ir))
            out.append(((Opcode.STORE, REG_SP, SCRATCH_A, dst_value), current_ir))

    # -- resolve labels to function-relative indices ----------------------

    label_index: dict[str, int] = {}
    counter = 0
    for entry in out:
        if isinstance(entry, MLabel):
            label_index[entry.name] = counter
        else:
            counter += 1

    result = AllocatedCode(stats=stats)
    for entry in out:
        if isinstance(entry, MLabel):
            continue
        (raw, ir_id) = entry
        if raw[0] == "CALL":
            result.call_fixups.append((len(result.code), raw[1]))
            raw = (Opcode.CALL, 0, 0, 0)
        else:
            op = raw[0]
            if op == Opcode.JMP:
                raw = (op, label_index[raw[1]], 0, 0)
            elif op in (Opcode.BRZ, Opcode.BRNZ):
                raw = (op, raw[1], label_index[raw[2]], 0)
        if ir_id is not None:
            result.debug[len(result.code)] = ir_id
        result.code.append(raw)
    return result
