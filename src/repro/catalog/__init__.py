"""Schema, column-store tables, statistics, and the string dictionary."""

from repro.catalog.schema import Column, DataType, Schema
from repro.catalog.strings import StringDictionary
from repro.catalog.table import ColumnStats, Table
from repro.catalog.catalog import Catalog

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "DataType",
    "Schema",
    "StringDictionary",
    "Table",
]
