"""The catalog: named tables plus the shared string dictionary."""

from __future__ import annotations

from repro.errors import CatalogError
from repro.catalog.schema import Schema
from repro.catalog.strings import StringDictionary
from repro.catalog.table import Table


class Catalog:
    """All tables of one database, with a two-phase load protocol:

    create tables, append rows, then :meth:`finalize` once — which freezes
    the order-preserving string dictionary and encodes every column to its
    64-bit storage form.  Queries may only run against a finalized catalog.
    """

    def __init__(self):
        self.tables: dict[str, Table] = {}
        self.dictionary = StringDictionary()
        self.finalized = False

    def create_table(self, name: str, schema: Schema) -> Table:
        if self.finalized:
            raise CatalogError("catalog is finalized; cannot create tables")
        key = name.lower()
        if key in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(key, schema)
        self.tables[key] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def finalize(self) -> None:
        if self.finalized:
            raise CatalogError("catalog already finalized")
        for table in self.tables.values():
            table.collect_strings(self.dictionary)
        self.dictionary.freeze()
        for table in self.tables.values():
            table.encode(self.dictionary)
        self.finalized = True
