"""Logical schema description: types, columns, schemas.

Storage is uniform 64-bit words; the logical type determines encoding:

- ``INT``     plain integers
- ``DECIMAL`` fixed-point, stored as integer hundredths (cents)
- ``DATE``    proleptic-Gregorian ordinal day numbers
- ``STRING``  ids into the database's order-preserving string dictionary
- ``FLOAT``   IEEE doubles (only produced by expressions such as ``avg``)
- ``BOOL``    0 or 1
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

from repro.errors import CatalogError

DECIMAL_SCALE = 100


class DataType(enum.Enum):
    INT = "int"
    DECIMAL = "decimal"
    DATE = "date"
    STRING = "string"
    FLOAT = "float"
    BOOL = "bool"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.DECIMAL, DataType.FLOAT)


def encode_date(text: str) -> int:
    """'YYYY-MM-DD' -> ordinal day number."""
    try:
        return datetime.date.fromisoformat(text).toordinal()
    except ValueError as exc:
        raise CatalogError(f"bad date literal {text!r}: {exc}") from None


def decode_date(ordinal: int) -> str:
    return datetime.date.fromordinal(ordinal).isoformat()


def encode_decimal(value: float | int) -> int:
    return round(value * DECIMAL_SCALE)


def decode_decimal(cents: int) -> float:
    return cents / DECIMAL_SCALE


@dataclass(frozen=True)
class Column:
    """One named, typed column."""

    name: str
    dtype: DataType


class Schema:
    """An ordered list of columns with by-name lookup."""

    def __init__(self, columns: list[Column]):
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in schema: {names}")
        self.columns = list(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"no column named {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        return name in self._index

    def names(self) -> list[str]:
        return [c.name for c in self.columns]
