"""The order-preserving string dictionary.

All string data is dictionary-encoded at load time: every distinct string in
the database gets an integer id assigned in *sorted* order, so comparisons
and ORDER BY on the ids agree with comparisons on the strings.  This is the
standard columnar-engine trick, and it is what lets the compiling engine
evaluate LIKE predicates against the dictionary at *compile* time, turning
them into integer set membership in generated code.
"""

from __future__ import annotations

import re

from repro.errors import CatalogError


class StringDictionary:
    """Two-phase dictionary: collect strings, then freeze in sorted order."""

    def __init__(self):
        self._pending: set[str] = set()
        self._id_of: dict[str, int] | None = None
        self._values: list[str] = []

    @property
    def frozen(self) -> bool:
        return self._id_of is not None

    def collect(self, value: str) -> None:
        if self.frozen:
            raise CatalogError("string dictionary already frozen")
        self._pending.add(value)

    def freeze(self) -> None:
        if self.frozen:
            raise CatalogError("string dictionary already frozen")
        self._values = sorted(self._pending)
        self._id_of = {s: i for i, s in enumerate(self._values)}
        self._pending.clear()

    def _require_frozen(self) -> dict[str, int]:
        if self._id_of is None:
            raise CatalogError("string dictionary not frozen yet")
        return self._id_of

    def id_of(self, value: str) -> int:
        """Id for a string known to be in the dictionary."""
        id_of = self._require_frozen()
        try:
            return id_of[value]
        except KeyError:
            raise CatalogError(f"string {value!r} not in dictionary") from None

    def lookup(self, value: str) -> int | None:
        """Id for ``value``, or None when absent (predicate can't match)."""
        return self._require_frozen().get(value)

    def rank(self, value: str) -> int:
        """Insertion point of ``value`` in the sorted dictionary.

        Because ids are assigned in sorted order, ``id < rank(v)`` is exactly
        ``string < v`` — which lets range predicates on strings compile to
        integer comparisons even for literals absent from the data.
        """
        import bisect

        self._require_frozen()
        return bisect.bisect_left(self._values, value)

    def value_of(self, string_id: int) -> str:
        self._require_frozen()
        if not 0 <= string_id < len(self._values):
            raise CatalogError(f"string id {string_id} out of range")
        return self._values[string_id]

    def __len__(self) -> int:
        return len(self._values) if self.frozen else len(self._pending)

    def matching_ids(self, like_pattern: str) -> set[int]:
        """Ids of all dictionary strings matching a SQL LIKE pattern."""
        self._require_frozen()
        regex = like_to_regex(like_pattern)
        return {i for i, s in enumerate(self._values) if regex.fullmatch(s)}


def like_to_regex(pattern: str) -> re.Pattern:
    """Compile a SQL LIKE pattern (``%``, ``_``) to a regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out), re.DOTALL)
