"""Column-store tables and per-column statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError
from repro.catalog.schema import DataType, Schema, encode_date, encode_decimal
from repro.catalog.strings import StringDictionary


@dataclass(frozen=True)
class ColumnStats:
    """Statistics the optimizer's cardinality model consumes."""

    min_value: int | float | None
    max_value: int | float | None
    distinct: int


class Table:
    """An in-memory columnar table.

    Rows are appended with Python-native values (strings as ``str``, dates
    as ISO text, decimals as floats); :meth:`encode` converts everything to
    dictionary ids / day ordinals / cents once the database's string
    dictionary is frozen.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self.columns: list[list] = [[] for _ in schema]
        self.encoded = False
        # physical clustering key: repro.storage sorts rows by it, builds
        # the shard spine index over it, and loaders declare it to match
        # generation order (so sorting is normally the identity)
        self.sort_key: str | None = None
        # fleet partitioning key: repro.fleet splits this table's rows
        # across service shards on it (hash or range); None means the
        # router picks one (partition_key -> sort_key -> first column)
        self.partition_key: str | None = None
        self._stats: list[ColumnStats | None] = [None] * len(schema)

    @property
    def row_count(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def append(self, row: tuple) -> None:
        if self.encoded:
            raise CatalogError(f"table {self.name} is already encoded")
        if len(row) != len(self.schema):
            raise CatalogError(
                f"{self.name}: row has {len(row)} values, schema has {len(self.schema)}"
            )
        for column, value in zip(self.columns, row):
            column.append(value)

    def extend(self, rows) -> None:
        for row in rows:
            self.append(row)

    def collect_strings(self, dictionary: StringDictionary) -> None:
        for column_def, column in zip(self.schema, self.columns):
            if column_def.dtype is DataType.STRING:
                for value in column:
                    dictionary.collect(value)

    def encode(self, dictionary: StringDictionary) -> None:
        """Convert raw values to their 64-bit storage encoding."""
        if self.encoded:
            raise CatalogError(f"table {self.name} is already encoded")
        for i, column_def in enumerate(self.schema):
            dtype = column_def.dtype
            raw = self.columns[i]
            if dtype is DataType.STRING:
                self.columns[i] = [dictionary.id_of(v) for v in raw]
            elif dtype is DataType.DATE:
                self.columns[i] = [
                    v if isinstance(v, int) else encode_date(v) for v in raw
                ]
            elif dtype is DataType.DECIMAL:
                self.columns[i] = [encode_decimal(v) for v in raw]
            elif dtype in (DataType.INT, DataType.BOOL):
                for v in raw:
                    if not isinstance(v, int):
                        raise CatalogError(
                            f"{self.name}.{column_def.name}: non-integer {v!r}"
                        )
            elif dtype is DataType.FLOAT:
                self.columns[i] = [float(v) for v in raw]
        self.encoded = True

    def column_named(self, name: str) -> list:
        return self.columns[self.schema.index_of(name)]

    def stats_for(self, column_index: int) -> ColumnStats:
        """Statistics for one column.

        When ``repro.storage`` has loaded this table the cache is already
        filled from the loader's single segment pass (zone-map min/max,
        exact distinct as the union of per-segment value sets), so no
        full-column pass runs here; the fallback below serves raw
        catalogs that were never storage-loaded (unit tests).
        """
        cached = self._stats[column_index]
        if cached is not None:
            return cached
        if not self.encoded:
            raise CatalogError(f"stats requested before encoding {self.name}")
        column = self.columns[column_index]
        if column:
            stats = ColumnStats(min(column), max(column), len(set(column)))
        else:
            stats = ColumnStats(None, None, 0)
        self._stats[column_index] = stats
        return stats
