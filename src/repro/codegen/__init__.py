"""Lowering step 2: pipelines of tasks to SSA IR (produce/consume codegen).

This package is the code-generation engine of the dataflow system and the
place where Tailored Profiling hooks in: the task Abstraction Tracker is
active while each task generates IR, the builder's emission funnel populates
Tagging Dictionary Log B, and calls into the pre-compiled runtime are
wrapped in Register Tagging (IR ``settag``).
"""

from repro.codegen.querygen import CompiledQueryIR, generate_query_ir
from repro.codegen.runtime import (
    RUNTIME_FUNCTIONS,
    SYSLIB_FUNCTIONS,
    build_runtime_module,
    build_syslib_module,
)

__all__ = [
    "CompiledQueryIR",
    "RUNTIME_FUNCTIONS",
    "SYSLIB_FUNCTIONS",
    "build_runtime_module",
    "build_syslib_module",
    "generate_query_ir",
]
