"""Code-generation context: query state layout, tuple contexts, hooks.

The :class:`CodegenContext` carries everything shared across one query's
pipelines: the IR module, the state-block layout, the Abstraction Tracker
for tasks, the Tagging Dictionary, and the data environment (column
addresses, compile-time bitmaps, the year lookup table) provided by the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import CodegenError
from repro.ir import IRBuilder, Instr, Module, Type
from repro.ir.nodes import Value
from repro.pipeline.tasks import Task
from repro.plan.expr import IU
from repro.profiling.tagging import TaggingDictionary
from repro.profiling.trackers import AbstractionTracker


class DataEnvironment(Protocol):
    """What the engine must provide for codegen to embed constant addresses."""

    def column_address(self, table_name: str, column_name: str) -> int: ...

    def row_count(self, table_name: str) -> int: ...

    def bitmap(self, values: frozenset[int]) -> tuple[int, int]:
        """Materialize a membership bitmap; returns (address, bit_limit)."""
        ...

    def year_table(self) -> tuple[int, int]:
        """Returns (address, base_ordinal) of the day->year lookup table."""
        ...

    def register_sort(self, descriptor) -> int:
        """Register a kernel sort descriptor; returns its id."""
        ...

    def table_storage(self, table_name: str):
        """The table's :class:`repro.storage.TableStorage`, or None for a
        flat (storage-less) environment.  Codegen probes this with
        ``getattr`` so minimal environments need not implement it."""
        ...


@dataclass
class HashTableSpec:
    """One hash table's state slot and geometry (sized at compile time
    from cardinality estimates, grown at runtime through the kernel)."""

    name: str
    state_offset: int
    directory_slots: int
    entry_words: int
    initial_entries: int
    key_count: int

    def key_offset(self, index: int) -> int:
        return 16 + index * 8  # after next + hash

    def payload_offset(self, index: int) -> int:
        return 16 + (self.key_count + index) * 8


@dataclass
class BufferSpec:
    """One materialization buffer's state slot and row layout."""

    name: str
    state_offset: int
    row_words: int
    initial_rows: int


class StateLayout:
    """Byte-offset registry for the per-query state block."""

    def __init__(self):
        self._offset = 0
        self.slots: dict[str, int] = {}

    def reserve(self, name: str, words: int) -> int:
        if name in self.slots:
            raise CodegenError(f"state slot {name!r} reserved twice")
        offset = self._offset
        self.slots[name] = offset
        self._offset += words * 8
        return offset

    @property
    def size_bytes(self) -> int:
        return max(self._offset, 8)


@dataclass
class CodegenContext:
    """Shared state for generating one query's IR module."""

    module: Module
    env: DataEnvironment
    tagging: TaggingDictionary
    task_tracker: AbstractionTracker
    state: StateLayout = field(default_factory=StateLayout)
    hashtables: list[HashTableSpec] = field(default_factory=list)
    buffers: list[BufferSpec] = field(default_factory=list)
    sort_calls: list = field(default_factory=list)  # filled by querygen

    def install_tagging_listener(self, builder: IRBuilder) -> None:
        """Wire the emission funnel: every IR instruction links to the

        currently-active task (the paper's single-code-location hook)."""

        def listener(instr: Instr) -> None:
            task = self.task_tracker.current
            if task is not None:
                self.tagging.link_instruction(instr.id, task)

        builder.listeners.append(listener)

    def call_runtime(
        self, b: IRBuilder, task: Task, callee: str, args: list[Value],
        type: Type = Type.PTR,
    ) -> Instr:
        """Call a shared runtime function under Register Tagging (Listing 2):

        write the task's tag into the reserved register, call, restore."""
        old = b.settag(b.const(task.id))
        result = b.call(callee, args, type)
        b.settag(old)
        return result


class TupleContext:
    """The set of IUs available at the current point of a pipeline.

    IUs are materialized lazily: a provider emits the IR on first use,
    attributed to the task *requesting* the value — this matches Umbra's
    produce/consume attribution, visible in the paper's Fig. 6b, where the
    loads of the aggregation's input columns are tagged "group by" and the
    join-key column load is part of the hash join's 45.7 %, while the table
    scan keeps only its loop control (2.4 %).  When no task is active (the
    driver loop itself), the provider's owning task is used as fallback.
    """

    def __init__(self, ctx: CodegenContext):
        self._ctx = ctx
        self._values: dict[int, Value] = {}
        self._providers: dict[int, tuple[Task, Callable[[], Value]]] = {}

    def set(self, iu: IU, value: Value) -> None:
        self._values[iu.id] = value

    def provide(self, iu: IU, task: Task, emit: Callable[[], Value]) -> None:
        self._providers[iu.id] = (task, emit)

    def has(self, iu: IU) -> bool:
        return iu.id in self._values or iu.id in self._providers

    def get(self, iu: IU) -> Value:
        value = self._values.get(iu.id)
        if value is not None:
            return value
        entry = self._providers.get(iu.id)
        if entry is None:
            raise CodegenError(f"IU {iu} not available in tuple context")
        owner_task, emit = entry
        if self._ctx.task_tracker.current is not None:
            value = emit()  # attributed to the requesting task
        else:
            with self._ctx.task_tracker.active(owner_task):
                value = emit()
        self._values[iu.id] = value
        return value

    def fork(self) -> "TupleContext":
        """A copy for a nested scope (values emitted there stay there)."""
        child = TupleContext(self._ctx)
        child._values = dict(self._values)
        child._providers = dict(self._providers)
        return child
