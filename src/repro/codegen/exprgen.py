"""Expression code generation: bound expressions to SSA IR.

Semantics must mirror :mod:`repro.plan.interpret` exactly — the test suite
enforces this by running every query through both executors.
"""

from __future__ import annotations

from repro.catalog.schema import DataType
from repro.codegen.context import CodegenContext, TupleContext
from repro.errors import CodegenError
from repro.ir import IRBuilder, Type
from repro.ir.nodes import Value
from repro.plan.expr import (
    BinaryExpr,
    CaseExpr,
    CompareExpr,
    ConstExpr,
    Expr,
    FuncExpr,
    IURef,
    InSetExpr,
    LogicalExpr,
    NotExpr,
)

_CMP_TO_IR = {
    "=": "cmpeq",
    "<>": "cmpne",
    "<": "cmplt",
    "<=": "cmple",
    ">": "cmpgt",
    ">=": "cmpge",
}

_SMALL_SET = 4  # at most this many values as a compare chain; else a bitmap


class ExprCodegen:
    """Emits IR for bound expressions against a tuple context."""

    def __init__(self, ctx: CodegenContext, b: IRBuilder, tuples: TupleContext):
        self.ctx = ctx
        self.b = b
        self.tuples = tuples

    # -- helpers -----------------------------------------------------------

    def _natural(self, value: Value, dtype: DataType) -> Value:
        """Convert an encoded value to natural units as F64."""
        b = self.b
        if dtype is DataType.FLOAT:
            return value
        as_float = b.sitofp(value)
        if dtype is DataType.DECIMAL:
            return b.fdiv(as_float, b.const_f64(100.0))
        return as_float

    def emit_bool(self, expr: Expr) -> Value:
        value = self.emit(expr)
        if value.type is not Type.BOOL:
            raise CodegenError(f"expected boolean expression, got {value.type}")
        return value

    # -- main dispatch -------------------------------------------------------

    def emit(self, expr: Expr) -> Value:  # noqa: C901
        b = self.b
        if isinstance(expr, IURef):
            return self.tuples.get(expr.iu)
        if isinstance(expr, ConstExpr):
            if expr.dtype is DataType.FLOAT:
                return b.const_f64(float(expr.value))
            if expr.dtype is DataType.BOOL:
                return b.const(1 if expr.value else 0, Type.BOOL)
            return b.const(int(expr.value))
        if isinstance(expr, BinaryExpr):
            return self._emit_binary(expr)
        if isinstance(expr, CompareExpr):
            left = self.emit(expr.left)
            right = self.emit(expr.right)
            return b.cmp(_CMP_TO_IR[expr.op], left, right)
        if isinstance(expr, LogicalExpr):
            values = [self.emit_bool(e) for e in expr.operands]
            acc = values[0]
            for value in values[1:]:
                acc = b.and_(acc, value) if expr.op == "and" else b.or_(acc, value)
            return acc
        if isinstance(expr, NotExpr):
            value = self.emit_bool(expr.operand)
            return b.cmp("cmpeq", value, b.const(0, Type.BOOL))
        if isinstance(expr, InSetExpr):
            return self._emit_in_set(expr)
        if isinstance(expr, CaseExpr):
            result = self.emit(expr.default)
            for cond, value in reversed(expr.whens):
                cond_v = self.emit_bool(cond)
                value_v = self.emit(value)
                result = b.select(cond_v, value_v, result)
            return result
        if isinstance(expr, FuncExpr):
            return self._emit_func(expr)
        raise CodegenError(f"cannot generate code for {type(expr).__name__}")

    def _emit_binary(self, expr: BinaryExpr) -> Value:
        b = self.b
        lt, rt = expr.left.dtype, expr.right.dtype
        left = self.emit(expr.left)
        right = self.emit(expr.right)
        op = expr.op
        if op == "/":
            return b.fdiv(self._natural(left, lt), self._natural(right, rt))
        if expr.dtype is DataType.FLOAT:
            left = self._natural(left, lt)
            right = self._natural(right, rt)
            return {"+": b.add, "-": b.sub, "*": b.mul}[op](left, right)
        if op == "+":
            return b.add(left, right)
        if op == "-":
            return b.sub(left, right)
        if op == "%":
            return b.srem(left, right)
        product = b.mul(left, right)
        if lt is DataType.DECIMAL and rt is DataType.DECIMAL:
            return b.sdiv(product, b.const(100))
        return product

    def _emit_in_set(self, expr: InSetExpr) -> Value:
        b = self.b
        value = self.emit(expr.operand)
        values = sorted(expr.values)
        if not values:
            return b.const(0, Type.BOOL)
        if len(values) <= _SMALL_SET:
            acc = b.cmp("cmpeq", value, b.const(values[0]))
            for candidate in values[1:]:
                acc = b.or_(acc, b.cmp("cmpeq", value, b.const(candidate)))
            return acc
        addr, limit = self.ctx.env.bitmap(frozenset(expr.values))
        base = b.const(addr, Type.PTR)
        non_negative = b.cmp("cmpge", value, b.const(0))
        below = b.cmp("cmplt", value, b.const(limit))
        in_range = b.and_(non_negative, below)
        safe = b.select(in_range, value, b.const(0))
        word = b.load(b.gep(base, b.shr(safe, b.const(6)), scale=8),
                      comment="membership bitmap")
        bit = b.and_(b.shr(word, b.and_(safe, b.const(63))), b.const(1))
        hit = b.cmp("cmpne", bit, b.const(0))
        return b.and_(in_range, hit)

    def _emit_func(self, expr: FuncExpr) -> Value:
        b = self.b
        value = self.emit(expr.operand)
        if expr.func == "year":
            addr, base_ordinal = self.ctx.env.year_table()
            index = b.sub(value, b.const(base_ordinal))
            table = b.const(addr, Type.PTR)
            return b.load(b.gep(table, index, scale=8), comment="year lookup")
        if expr.func == "to_cents":
            return b.mul(value, b.const(100))
        if expr.func == "float":
            return b.sitofp(value)
        raise CodegenError(f"unknown function {expr.func}")
