"""Hash emission, shaped after the paper's Listing 1 (crc32 mixing)."""

from __future__ import annotations

from repro.ir import IRBuilder
from repro.ir.nodes import Value

CRC_SEED_A = 5961697176435608501
CRC_SEED_B = 2231409791114444147
MIX_CONSTANT = 2685821657736338717


def emit_hash(b: IRBuilder, values: list[Value]) -> Value:
    """Hash one or more key values into a 64-bit mixed hash."""
    first = values[0]
    h1 = b.crc32(first, b.const(CRC_SEED_A))
    h2 = b.crc32(first, b.const(CRC_SEED_B))
    h = b.xor(h1, b.rotr(h2, b.const(32)))
    for value in values[1:]:
        h = b.crc32(h, value)
    return b.mul(h, b.const(MIX_CONSTANT))
