"""Per-task code generation: the produce/consume engine.

One :class:`PipelineCodegen` generates one IR function per pipeline.  The
driver task (scan, hash-table scan, sorted-buffer scan) emits the tuple
loop; every later task emits its code inside the loop body and delegates to
the next task — operator fusion into a tight loop, exactly the structure of
the paper's Listing 1.

While a task's code is generated, the task Abstraction Tracker holds it, so
the IR builder's emission funnel attributes each instruction in the Tagging
Dictionary (Log B).  Calls into the shared runtime go through
``ctx.call_runtime``, which wraps them in Register Tagging.
"""

from __future__ import annotations

from repro.catalog.schema import DataType
from repro.codegen.context import (
    CodegenContext,
    HashTableSpec,
    TupleContext,
)
from repro.codegen.exprgen import ExprCodegen
from repro.codegen.hashing import emit_hash
from repro.codegen.runtime import (
    BUF_CAP,
    BUF_COUNT,
    BUF_DATA,
    ENTRY_HASH,
    ENTRY_NEXT,
    HT_DIR,
    HT_MASK,
)
from repro.errors import CodegenError
from repro.ir import Function, IRBuilder, Type
from repro.ir.nodes import Value
from repro.pipeline.tasks import Pipeline, Task
from repro.plan.expr import IU, AggCall, conjuncts
from repro.plan.physical import (
    PhysicalSemiJoin,
    PhysicalGroupBy,
    PhysicalGroupJoin,
    PhysicalHashJoin,
    PhysicalLimit,
    PhysicalMap,
    PhysicalOutput,
    PhysicalScan,
    PhysicalSort,
)
from repro.vm.kernel import K_OUTPUT_ROW


class PipelineCodegen:
    """Generates the IR function for one pipeline."""

    def __init__(
        self,
        ctx: CodegenContext,
        pipeline: Pipeline,
        function: Function,
        plan_meta: "QueryPlanMeta",
    ):
        self.ctx = ctx
        self.pipeline = pipeline
        self.fn = function
        self.meta = plan_meta
        self.b = IRBuilder(function)
        ctx.install_tagging_listener(self.b)
        self.tuples = TupleContext(ctx)
        self.exprs = ExprCodegen(ctx, self.b, self.tuples)
        self.state_ptr = function.params[0]
        self.begin = function.params[1]  # morsel range [begin, end)
        self.end = function.params[2]
        self.skip_targets: list = []  # innermost "drop this tuple" blocks
        self.exit_block = None

    # ------------------------------------------------------------------

    def generate(self) -> None:
        b = self.b
        entry = b.block("entry")
        self.exit_block = b.block("exitPipeline")
        b.set_block(entry)
        self._emit_task(0)
        b.set_block(self.exit_block)
        # the pipeline epilogue belongs to the driver task
        with self.ctx.task_tracker.active(self.pipeline.driver):
            b.ret()

    def _emit_task(self, index: int) -> None:
        if index >= len(self.pipeline.tasks):
            return
        task = self.pipeline.tasks[index]
        with self.ctx.task_tracker.active(task):
            counter = self.meta.task_counter_of.get(task.id)
            if counter is not None:
                # PGO tuple counting: entry count of this task = output of
                # the previous task's operator.  load/store are impure, so
                # the optimizer never folds these away.
                addr = self._state_addr(counter)
                self.b.store(addr, self.b.add(self.b.load(addr), self.b.const(1)))
            self._dispatch(task, index)

    def _continue(self, index: int) -> None:
        """Generate the rest of the task chain after ``index``."""
        self._emit_task(index + 1)

    def _ensure_jump(self, target) -> None:
        if self.b.current.terminator is None:
            self.b.br(target)

    def _state_addr(self, offset: int, extra: int = 0):
        return self.b.gep(self.state_ptr, None, offset=offset + extra)

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch(self, task: Task, index: int) -> None:  # noqa: C901
        op = task.operator
        role = task.role
        if role == "scan":
            self._emit_scan(task, op, index)
        elif role == "filter":
            self._emit_filter(task, op.condition, index)
        elif role == "map":
            self._emit_map(task, op, index)
        elif role == "limit":
            self._emit_limit(task, op, index)
        elif role == "output":
            self._emit_output(task, op, index)
        elif role == "build":
            self._emit_join_build(task, op, index)
        elif role == "probe":
            self._emit_join_probe(task, op, index)
        elif role == "semi-build":
            self._emit_semi_build(task, op, index)
        elif role == "semi-probe":
            self._emit_semi_probe(task, op, index)
        elif role == "materialize" and isinstance(op, PhysicalGroupBy):
            self._emit_groupby_materialize(task, op, index)
        elif role == "aggregate":
            self._emit_groupby_scan(task, op, index)
        elif role == "materialize" and isinstance(op, PhysicalSort):
            self._emit_sort_materialize(task, op, index)
        elif role == "output-scan":
            self._emit_sort_scan(task, op, index)
        elif role == "groupjoin-join build":
            self._emit_groupjoin_build(task, op, index)
        elif role == "groupjoin-groupby probe":
            self._emit_groupjoin_probe(task, op, index)
        elif role == "groupjoin-groupby output":
            self._emit_groupjoin_scan(task, op, index)
        else:
            raise CodegenError(f"no emitter for task role {role!r}")

    # ------------------------------------------------------------------
    # drivers

    def _emit_scan(self, task: Task, op: PhysicalScan, index: int) -> None:
        storage = None
        env_storage = getattr(self.ctx.env, "table_storage", None)
        if env_storage is not None:
            storage = env_storage(op.table.name)
        if storage is None:
            row_count = self.ctx.env.row_count(op.table.name)
            self.meta.pipeline_domains[self.pipeline.index] = (
                "rows", row_count,
            )
            self._emit_flat_scan(task, op, index, {
                column: self.ctx.env.column_address(op.table.name, column)
                for column in op.column_ius
            })
            return
        self._emit_storage_scan(task, op, index, storage)

    def _emit_flat_scan(
        self, task: Task, op: PhysicalScan, index: int,
        address_of: dict[str, int],
    ) -> None:
        """The classic single-loop scan over contiguous columns."""
        b = self.b
        loop = b.block("loopTuples")
        body = b.block("scanBody")
        cont = b.block("contScan")
        b.br(loop)

        b.set_block(loop)
        tid = b.phi(Type.I64)
        b.add_incoming(tid, self.begin, loop.predecessors()[0])
        done = b.cmp("cmpge", tid, self.end)
        b.condbr(done, self.exit_block, body)

        b.set_block(body)
        for column, iu in op.column_ius.items():
            address = address_of[column]

            def emit_load(address=address, column=column):
                base = b.const(address, Type.PTR)
                return b.load(b.gep(base, tid, scale=8), comment=f"col {column}")

            self.tuples.provide(iu, task, emit_load)

        self.skip_targets.append(cont)
        self._continue(index)
        self.skip_targets.pop()
        self._ensure_jump(cont)

        b.set_block(cont)
        next_tid = b.add(tid, b.const(1))
        b.add_incoming(tid, next_tid, cont)
        b.br(loop)

    # -- storage-backed scans ------------------------------------------

    def _zone_bounds(
        self, op: PhysicalScan, index: int
    ) -> tuple[dict[str, tuple], int]:
        """Compile-time zone-map pushdown: per scan column, the conjunct-
        implied inclusive ``[lo, hi]`` window (either side may be None),
        plus the pipeline position of the filter the bounds came from.

        Only the *first* filter task after the scan is harvested, and
        only map tasks (pure, 1:1) may sit in between: a segment whose
        ``[min, max]`` misses that filter's window would have reached it
        whole and been dropped there entirely, so skipping it changes
        nothing observable — and the rows it would have pushed through
        the intermediate maps into the filter are a known, exact count
        (the PGO tuple counters are bulk-compensated on the skip path).
        Filters further downstream are out: an intervening filter's
        selectivity on the skipped rows is unknowable.  Float columns
        are left alone so zone comparisons stay pure integer compares.
        """
        from repro.plan.expr import CompareExpr, ConstExpr, InSetExpr, IURef

        name_of = {iu.id: column for column, iu in op.column_ius.items()}
        float_ius = {
            iu.id for iu in op.column_ius.values()
            if iu.dtype is DataType.FLOAT
        }
        bounds: dict[str, list] = {}

        def narrow(iu_id: int, lo, hi) -> None:
            if iu_id not in name_of or iu_id in float_ius:
                return
            window = bounds.setdefault(name_of[iu_id], [None, None])
            if lo is not None and (window[0] is None or lo > window[0]):
                window[0] = lo
            if hi is not None and (window[1] is None or hi < window[1]):
                window[1] = hi

        filter_position = index
        for position in range(index + 1, len(self.pipeline.tasks)):
            later = self.pipeline.tasks[position]
            if later.role == "map":
                continue
            if later.role != "filter":
                break
            filter_position = position
            for conjunct in conjuncts(later.operator.condition):
                if isinstance(conjunct, InSetExpr):
                    operand = conjunct.operand
                    values = conjunct.values
                    if (
                        isinstance(operand, IURef) and values
                        and all(isinstance(v, int) for v in values)
                    ):
                        narrow(operand.iu.id, min(values), max(values))
                    continue
                if not isinstance(conjunct, CompareExpr):
                    continue
                left, right, cmp_op = conjunct.left, conjunct.right, conjunct.op
                if isinstance(right, IURef) and isinstance(left, ConstExpr):
                    left, right = right, left
                    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                    cmp_op = flip.get(cmp_op, cmp_op)
                if not (
                    isinstance(left, IURef)
                    and isinstance(right, ConstExpr)
                    and isinstance(right.value, int)
                ):
                    continue
                v = right.value
                if cmp_op == "<":
                    narrow(left.iu.id, None, v - 1)
                elif cmp_op == "<=":
                    narrow(left.iu.id, None, v)
                elif cmp_op == ">":
                    narrow(left.iu.id, v + 1, None)
                elif cmp_op == ">=":
                    narrow(left.iu.id, v, None)
                elif cmp_op == "=":
                    narrow(left.iu.id, v, v)
            break  # only the first filter is harvested (see docstring)
        return (
            {column: (lo, hi) for column, (lo, hi) in bounds.items()},
            filter_position,
        )

    def _emit_storage_scan(
        self, task: Task, op: PhysicalScan, index: int, storage
    ) -> None:
        """Segment-at-a-time scan over the columnar layout.

        Structure: an outer loop walks the segments a morsel overlaps;
        per segment the directory supplies decode parameters and zone
        min/max (pruned segments jump straight to the next one, counting
        the skip); the inner loop decodes the column's encoding inline —
        so skipping, decode cost, and stride are all ordinary generated
        instructions the cycle/cache/PMU machinery observes.
        """
        from repro.storage import (
            DIR_DATA, DIR_MAX, DIR_MIN, DIR_PARAM, DIR_STRIDE, Encoding,
        )

        b = self.b
        config = storage.config
        seg_rows = config.segment_rows
        log2_seg = seg_rows.bit_length() - 1
        schema = op.table.schema
        columns = [
            (column, iu, storage.column(schema.index_of(column)))
            for column, iu in op.column_ius.items()
        ]
        bounds, filter_position = (
            self._zone_bounds(op, index) if config.prune else ({}, index)
        )
        # counters of the tasks the skipped rows would have reached (all
        # maps plus the harvested filter itself): bulk-compensated so PGO
        # cardinalities match an unpruned execution exactly
        compensate = [
            (t.id, self.meta.task_counter_of[t.id])
            for t in self.pipeline.tasks[index + 1 : filter_position + 1]
            if t.id in self.meta.task_counter_of
        ]

        # compile-time zone-map consultation: the spine index narrows the
        # scanned row range when the clustered key itself is bounded
        row_base, row_end = 0, storage.row_count
        if storage.sort_key in bounds:
            row_base, row_end = storage.prune_range(
                storage.sort_key, *bounds[storage.sort_key]
            )
        total = max(0, row_end - row_base)
        self.meta.pipeline_domains[self.pipeline.index] = ("rows", total)

        if not bounds and row_base == 0 and all(
            col.encoding is Encoding.PLAIN for _, _, col in columns
        ):
            # all-plain, nothing to skip: the flat loop is byte- and
            # instruction-identical, so keep the classic shape
            self._emit_flat_scan(task, op, index, {
                column: col.plain_addr for column, _, col in columns
            })
            return

        zone_slot = None
        if bounds:
            from repro.codegen.querygen import ZoneSlot

            zone_slot = ZoneSlot(
                considered_offset=self.ctx.state.reserve(
                    f"zone_considered_{op.op_id}", 1
                ),
                table_name=op.table.name,
                static_excluded=storage.row_count - total,
                compensate_task_ids=tuple(t for t, _ in compensate),
            )
            for column in sorted(bounds):
                zone_slot.skip_offsets.append((
                    schema.index_of(column),
                    self.ctx.state.reserve(
                        f"zone_skips_{op.op_id}_{column}", 1
                    ),
                ))
            self.meta.zone_slots[op.op_id] = zone_slot

        # blocks are created in control-flow order (the backend requires
        # defs to precede uses in block order); skip-block bodies are
        # filled in once contSegment exists
        seg_loop = b.block("loopSegments")
        seg_head = b.block("segHead")

        # entry: absolute morsel range, first segment base
        if row_base:
            abs_begin = b.add(self.begin, b.const(row_base))
            abs_end = b.add(self.end, b.const(row_base))
        else:
            abs_begin, abs_end = self.begin, self.end
        seg_first = b.and_(abs_begin, b.const(~(seg_rows - 1)))
        entry_pred = b.current
        b.br(seg_loop)

        b.set_block(seg_loop)
        seg_base = b.phi(Type.I64)
        b.add_incoming(seg_base, seg_first, entry_pred)
        seg_done = b.cmp("cmpge", seg_base, abs_end)
        b.condbr(seg_done, self.exit_block, seg_head)

        # segment head: directory pointers, zone checks
        b.set_block(seg_head)
        seg_idx = b.shr(seg_base, b.const(log2_seg))
        dir_ptrs: dict[str, object] = {}
        for column in sorted(
            set(bounds) | {name for name, _, _ in columns},
            key=schema.index_of,
        ):
            col = storage.column(schema.index_of(column))
            dir_ptrs[column] = b.gep(
                b.const(col.dir_addr, Type.PTR), seg_idx, scale=DIR_STRIDE,
            )
        if zone_slot is not None:
            addr = self._state_addr(zone_slot.considered_offset)
            b.store(addr, b.add(b.load(addr), b.const(1)))
        skip_offset_of = dict(
            (schema.columns[index].name, offset)
            for index, offset in (zone_slot.skip_offsets if zone_slot else [])
        )
        skip_blocks: list[tuple[str, object]] = []
        for column in sorted(bounds, key=schema.index_of):
            lo, hi = bounds[column]
            skip = b.block(f"skipSeg_{column}")
            skip_blocks.append((column, skip))
            for bound, dir_off, cmp_op in (
                (lo, DIR_MAX, "cmplt"),  # whole segment below the window
                (hi, DIR_MIN, "cmpgt"),  # whole segment above the window
            ):
                if bound is None:
                    continue
                zone = b.load(
                    b.gep(dir_ptrs[column], None, offset=dir_off),
                    comment=f"zone {column}",
                )
                scan_on = b.block("zoneNext")
                b.condbr(b.cmp(cmp_op, zone, b.const(bound)), skip, scan_on)
                b.set_block(scan_on)

        # segment prep: morsel-clamped row range + per-encoding parameters
        row_lo = b.max(seg_base, abs_begin)
        row_hi = b.min(b.add(seg_base, b.const(seg_rows)), abs_end)
        plain_base: dict[str, object] = {}
        frame_of: dict[str, object] = {}
        data_of: dict[str, object] = {}
        aux_of: dict[str, object] = {}
        rle_seeds: list[tuple[str, object, object]] = []
        for column, _, col in columns:
            dir_ptr = dir_ptrs[column]
            if col.encoding is Encoding.PLAIN:
                data = b.load(
                    b.gep(dir_ptr, None, offset=DIR_DATA), Type.PTR,
                    comment=f"seg {column}",
                )
                # bias by the segment base once, so the inner loop indexes
                # with tid exactly like the flat layout does
                plain_base[column] = b.sub(data, b.shl(seg_base, b.const(3)))
            elif col.encoding is Encoding.FOR:
                frame_of[column] = b.load(
                    b.gep(dir_ptr, None, offset=DIR_PARAM),
                    comment=f"frame {column}",
                )
                if col.bits:
                    data_of[column] = b.load(
                        b.gep(dir_ptr, None, offset=DIR_DATA), Type.PTR,
                        comment=f"seg {column}",
                    )
            elif col.encoding is Encoding.DICT:
                data_of[column] = b.load(
                    b.gep(dir_ptr, None, offset=DIR_DATA), Type.PTR,
                    comment=f"seg {column}",
                )
                aux_of[column] = b.load(
                    b.gep(dir_ptr, None, offset=DIR_PARAM), Type.PTR,
                    comment=f"dict {column}",
                )
            else:  # RLE
                data_of[column] = b.load(
                    b.gep(dir_ptr, None, offset=DIR_DATA), Type.PTR,
                    comment=f"runs {column}",
                )
                aux_of[column] = b.load(
                    b.gep(dir_ptr, None, offset=DIR_PARAM), Type.PTR,
                    comment=f"ends {column}",
                )
        # position each RLE run cursor at the morsel's first row: runs end
        # at cumulative offsets, so seek while the row is past the end
        if any(col.encoding is Encoding.RLE for _, _, col in columns):
            rel_lo = b.sub(row_lo, seg_base)
        for column, _, col in columns:
            if col.encoding is not Encoding.RLE:
                continue
            seek = b.block(f"seekRun_{column}")
            bump = b.block(f"seekNext_{column}")
            done = b.block(f"seekDone_{column}")
            seek_pred = b.current
            b.br(seek)
            b.set_block(seek)
            run = b.phi(Type.I64)
            b.add_incoming(run, b.const(0), seek_pred)
            run_end = b.load(b.gep(aux_of[column], run, scale=8))
            b.condbr(b.cmp("cmpge", rel_lo, run_end), bump, done)
            b.set_block(bump)
            b.add_incoming(run, b.add(run, b.const(1)), bump)
            b.br(seek)
            b.set_block(done)
            rle_seeds.append((column, run, b.current))
        prep_pred = b.current
        row_loop = b.block("loopTuples")
        row_body = b.block("scanBody")
        cont_row = b.block("contScan")
        cont_seg = b.block("contSegment")
        b.br(row_loop)

        # deferred skip-block bodies (needed contSegment to exist)
        for column, skip in skip_blocks:
            b.set_block(skip)
            addr = self._state_addr(skip_offset_of[column])
            b.store(addr, b.add(b.load(addr), b.const(1)))
            if compensate:
                # the skipped rows would have flowed through every map and
                # died at the harvested filter: credit their counters with
                # this segment's share of the morsel, so PGO tuple counts
                # equal an unpruned run's
                overlap = b.sub(
                    b.min(b.add(seg_base, b.const(seg_rows)), abs_end),
                    b.max(seg_base, abs_begin),
                )
                for _task_id, offset in compensate:
                    caddr = self._state_addr(offset)
                    b.store(caddr, b.add(b.load(caddr), overlap))
            b.br(cont_seg)

        # inner loop over the segment's slice of the morsel
        b.set_block(row_loop)
        tid = b.phi(Type.I64)
        b.add_incoming(tid, row_lo, prep_pred)
        run_phis: dict[str, object] = {}
        for column, seed, seed_pred in rle_seeds:
            run = b.phi(Type.I64)
            b.add_incoming(run, seed, prep_pred)
            run_phis[column] = run
        row_done = b.cmp("cmpge", tid, row_hi)
        b.condbr(row_done, cont_seg, row_body)

        b.set_block(row_body)
        rel = None
        if any(
            col.encoding in (Encoding.FOR, Encoding.DICT)
            and col.bits for _, _, col in columns
        ):
            rel = b.sub(tid, seg_base)

        def unpack(column, col, rel):
            """Inline shift/mask decode of a packed value."""
            per_word = 64 // col.bits
            word = b.load(
                b.gep(
                    data_of[column],
                    b.shr(rel, b.const(per_word.bit_length() - 1)),
                    scale=8,
                ),
                comment=f"col {column}",
            )
            shift = b.shl(
                b.and_(rel, b.const(per_word - 1)),
                b.const(col.bits.bit_length() - 1),
            )
            return b.and_(b.shr(word, shift), b.const((1 << col.bits) - 1))

        for column, iu, col in columns:
            if col.encoding is Encoding.PLAIN:
                def emit(column=column):
                    return b.load(
                        b.gep(plain_base[column], tid, scale=8),
                        comment=f"col {column}",
                    )
            elif col.encoding is Encoding.FOR:
                def emit(column=column, col=col):
                    if not col.bits:  # constant segment: the frame is it
                        return frame_of[column]
                    return b.add(frame_of[column], unpack(column, col, rel))
            elif col.encoding is Encoding.DICT:
                def emit(column=column, col=col):
                    return b.load(
                        b.gep(aux_of[column], unpack(column, col, rel), scale=8),
                        comment=f"dict {column}",
                    )
            else:  # RLE: the cursor phi tracks the current run
                def emit(column=column):
                    return b.load(
                        b.gep(data_of[column], run_phis[column], scale=8),
                        comment=f"run {column}",
                    )
            self.tuples.provide(iu, task, emit)

        self.skip_targets.append(cont_row)
        self._continue(index)
        self.skip_targets.pop()
        self._ensure_jump(cont_row)

        b.set_block(cont_row)
        next_tid = b.add(tid, b.const(1))
        b.add_incoming(tid, next_tid, cont_row)
        if rle_seeds:
            next_rel = b.sub(next_tid, seg_base)
            for column, _, _ in rle_seeds:
                run = run_phis[column]
                run_end = b.load(b.gep(aux_of[column], run, scale=8))
                # consecutive rows cross at most one run boundary; the
                # BOOL compare adds as 0/1
                advanced = b.add(run, b.cmp("cmpge", next_rel, run_end))
                b.add_incoming(run, advanced, cont_row)
        b.br(row_loop)

        b.set_block(cont_seg)
        next_seg = b.add(seg_base, b.const(seg_rows))
        b.add_incoming(seg_base, next_seg, cont_seg)
        b.br(seg_loop)

    def _emit_ht_scan_loop(
        self, task: Task, ht: HashTableSpec, emit_entry_body
    ) -> None:
        """Shared driver: iterate all entries of a hash table via its

        directory chains.  ``emit_entry_body(entry_ptr, cont_chain)`` emits
        the per-entry work."""
        b = self.b
        directory = b.load(self._state_addr(ht.state_offset, HT_DIR), Type.PTR)
        mask = b.load(self._state_addr(ht.state_offset, HT_MASK))

        slot_loop = b.block("loopSlots")
        slot_body = b.block("slotBody")
        chain_loop = b.block("loopEntries")
        entry_body = b.block("entryBody")
        cont_chain = b.block("contEntry")
        cont_slot = b.block("contSlot")

        entry_pred = b.current
        b.br(slot_loop)

        b.set_block(slot_loop)
        slot = b.phi(Type.I64)
        b.add_incoming(slot, self.begin, entry_pred)
        done = b.cmp("cmpge", slot, self.end)
        b.condbr(done, self.exit_block, slot_body)

        b.set_block(slot_body)
        head = b.load(b.gep(directory, slot, scale=8), Type.PTR, comment="chain head")
        b.br(chain_loop)

        b.set_block(chain_loop)
        entry = b.phi(Type.PTR)
        b.add_incoming(entry, head, slot_body)
        is_null = b.cmp("cmpeq", entry, b.const(0))
        b.condbr(is_null, cont_slot, entry_body)

        b.set_block(entry_body)
        emit_entry_body(entry, cont_chain)
        self._ensure_jump(cont_chain)

        b.set_block(cont_chain)
        next_entry = b.load(b.gep(entry, None, offset=ENTRY_NEXT), Type.PTR)
        b.add_incoming(entry, next_entry, cont_chain)
        b.br(chain_loop)

        b.set_block(cont_slot)
        next_slot = b.add(slot, b.const(1))
        b.add_incoming(slot, next_slot, cont_slot)
        b.br(slot_loop)

    def _emit_groupby_scan(self, task: Task, op: PhysicalGroupBy, index: int) -> None:
        ht = self.meta.hashtable_of[op.op_id]
        b = self.b
        self.meta.pipeline_domains[self.pipeline.index] = (
            "slots", ht.directory_slots,
        )

        if not op.keys:
            # SQL: a global aggregate over empty input yields one identity
            # row (count = 0, sums 0).  Check the table's entry count and
            # run the consume chain once with constant values; only the
            # first morsel emits it.
            from repro.catalog.schema import DataType
            from repro.codegen.context import TupleContext
            from repro.codegen.runtime import HT_COUNT

            count = b.load(self._state_addr(ht.state_offset, HT_COUNT))
            is_empty = b.cmp("cmpeq", count, b.const(0))
            first_morsel = b.cmp("cmpeq", self.begin, b.const(0))
            need_identity = b.and_(is_empty, first_morsel)
            identity = b.block("emptyAggIdentity")
            normal = b.block("aggScan")
            b.condbr(need_identity, identity, normal)

            b.set_block(identity)
            saved_tuples, saved_exprs_tuples = self.tuples, self.exprs.tuples
            self.tuples = TupleContext(self.ctx)
            self.exprs.tuples = self.tuples
            for agg in op.aggregates:
                if agg.output.dtype is DataType.FLOAT:
                    self.tuples.set(agg.output, b.const_f64(0.0))
                else:
                    self.tuples.set(agg.output, b.const(0))
            self.skip_targets.append(self.exit_block)
            self._continue(index)
            self.skip_targets.pop()
            self._ensure_jump(self.exit_block)
            self.tuples, self.exprs.tuples = saved_tuples, saved_exprs_tuples
            b.set_block(normal)

        def body(entry, cont_chain):
            for i, (iu, _) in enumerate(op.keys):
                self._provide_entry_field(task, iu, entry, ht.key_offset(i))
            for j, agg in enumerate(op.aggregates):
                self._provide_entry_field(
                    task, agg.output, entry, ht.payload_offset(j)
                )
            self.skip_targets.append(cont_chain)
            self._continue(index)
            self.skip_targets.pop()

        self._emit_ht_scan_loop(task, ht, body)

    def _emit_groupjoin_scan(self, task: Task, op: PhysicalGroupJoin, index: int) -> None:
        ht = self.meta.hashtable_of[op.op_id]
        b = self.b
        self.meta.pipeline_domains[self.pipeline.index] = (
            "slots", ht.directory_slots,
        )
        payload = self.meta.payload_of[op.op_id]
        agg_base = len(payload)
        matched_index = agg_base + len(op.aggregates)

        def body(entry, cont_chain):
            matched = b.load(
                b.gep(entry, None, offset=ht.payload_offset(matched_index)),
                comment="matched flag",
            )
            keep = b.block("matchedEntry")
            is_matched = b.cmp("cmpne", matched, b.const(0))
            b.condbr(is_matched, keep, cont_chain)
            b.set_block(keep)
            for i, iu in enumerate(op.key_ius):
                self._provide_entry_field(task, iu, entry, ht.key_offset(i))
            # the build keys themselves may be referenced downstream
            for i, key_expr in enumerate(op.build_keys):
                from repro.plan.expr import IURef

                if isinstance(key_expr, IURef) and not self.tuples.has(key_expr.iu):
                    self._provide_entry_field(
                        task, key_expr.iu, entry, ht.key_offset(i)
                    )
            for i, iu in enumerate(payload):
                self._provide_entry_field(task, iu, entry, ht.payload_offset(i))
            for j, agg in enumerate(op.aggregates):
                self._provide_entry_field(
                    task, agg.output, entry, ht.payload_offset(agg_base + j)
                )
            self.skip_targets.append(cont_chain)
            self._continue(index)
            self.skip_targets.pop()

        self._emit_ht_scan_loop(task, ht, body)

    def _emit_sort_scan(self, task: Task, op: PhysicalSort, index: int) -> None:
        b = self.b
        buffer = self.meta.buffer_of[op.op_id]
        self.meta.pipeline_domains[self.pipeline.index] = (
            "buffer", buffer.state_offset, op.limit,
        )
        self.meta.prepare_sorts[self.pipeline.index] = (task, op)
        buf_data = b.load(self._state_addr(buffer.state_offset, BUF_DATA), Type.PTR)

        loop = b.block("loopRows")
        body = b.block("rowBody")
        cont = b.block("contRow")
        pred = b.current
        b.br(loop)

        b.set_block(loop)
        i = b.phi(Type.I64)
        b.add_incoming(i, self.begin, pred)
        done = b.cmp("cmpge", i, self.end)
        b.condbr(done, self.exit_block, body)

        b.set_block(body)
        row = b.gep(buf_data, b.mul(i, b.const(buffer.row_words)), scale=8)
        for j, iu in enumerate(self.meta.row_layout_of[op.op_id]):
            self._provide_entry_field(task, iu, row, j * 8)
        self.skip_targets.append(cont)
        self._continue(index)
        self.skip_targets.pop()
        self._ensure_jump(cont)

        b.set_block(cont)
        b.add_incoming(i, b.add(i, b.const(1)), cont)
        b.br(loop)

    def _provide_entry_field(self, task: Task, iu: IU, entry, offset: int) -> None:
        b = self.b

        def emit(entry=entry, offset=offset, iu=iu):
            return b.load(
                b.gep(entry, None, offset=offset), comment=f"field {iu.name}"
            )

        self.tuples.provide(iu, task, emit)

    # ------------------------------------------------------------------
    # streaming tasks

    def _emit_filter(self, task: Task, condition, index: int) -> None:
        b = self.b
        skip = self.skip_targets[-1]
        for conjunct in conjuncts(condition):
            cond = self.exprs.emit_bool(conjunct)
            ok = b.block("pass")
            b.condbr(cond, ok, skip)
            b.set_block(ok)
        self._continue(index)

    def _emit_map(self, task: Task, op: PhysicalMap, index: int) -> None:
        for iu, expr in op.computed:
            def emit(expr=expr):
                return self.exprs.emit(expr)

            self.tuples.provide(iu, task, emit)
        self._continue(index)

    def _emit_limit(self, task: Task, op: PhysicalLimit, index: int) -> None:
        b = self.b
        offset = self.meta.limit_slot_of[op.op_id]
        counter_addr = self._state_addr(offset)
        count = b.load(counter_addr, comment="limit counter")
        full = b.cmp("cmpge", count, b.const(op.count))
        go = b.block("underLimit")
        b.condbr(full, self.exit_block, go)
        b.set_block(go)
        b.store(counter_addr, b.add(count, b.const(1)))
        self._continue(index)

    def _emit_output(self, task: Task, op: PhysicalOutput, index: int) -> None:
        b = self.b
        offset = self.meta.output_row_offset
        for i, (_, iu) in enumerate(op.columns):
            value = self.tuples.get(iu)
            b.store(self._state_addr(offset, i * 8), value)
        b.kcall(K_OUTPUT_ROW, [self._state_addr(offset), b.const(len(op.columns))])
        self._continue(index)

    # ------------------------------------------------------------------
    # hash join

    def _emit_join_build(self, task: Task, op: PhysicalHashJoin, index: int) -> None:
        b = self.b
        ht = self.meta.hashtable_of[op.op_id]
        keys = [self.exprs.emit(k) for k in op.build_keys]
        hash_value = emit_hash(b, keys)
        ht_ptr = self._state_addr(ht.state_offset)
        entry = self.ctx.call_runtime(b, task, "ht_insert", [ht_ptr, hash_value])
        for i, key in enumerate(keys):
            b.store(b.gep(entry, None, offset=ht.key_offset(i)), key)
        for i, iu in enumerate(self.meta.payload_of[op.op_id]):
            value = self.tuples.get(iu)
            b.store(b.gep(entry, None, offset=ht.payload_offset(i)), value)
        self._continue(index)

    def _emit_chain_probe(
        self, task: Task, ht: HashTableSpec, keys: list[Value], hash_value: Value
    ):
        """Emit directory lookup + chain walk; returns (entry, match_block,

        cont_probe).  The builder is positioned in the match block with hash
        and keys already verified; the caller emits the match body and must
        leave every open path jumping to ``cont_probe`` (next chain entry)
        or further."""
        b = self.b
        directory = b.load(
            self._state_addr(ht.state_offset, HT_DIR), Type.PTR,
            comment="directory",
        )
        mask = b.load(self._state_addr(ht.state_offset, HT_MASK))
        bucket_addr = b.gep(directory, b.and_(hash_value, mask), scale=8)
        head = b.load(bucket_addr, Type.PTR, comment="directory lookup")

        chain = b.block("loopHashChain")
        check = b.block("checkEntry")
        cont_probe = b.block("contProbe")
        match = b.block("match")

        pred = b.current
        b.br(chain)

        b.set_block(chain)
        entry = b.phi(Type.PTR)
        b.add_incoming(entry, head, pred)
        is_null = b.cmp("cmpeq", entry, b.const(0))
        b.condbr(is_null, self.skip_targets[-1], check)

        b.set_block(check)
        stored_hash = b.load(b.gep(entry, None, offset=ENTRY_HASH))
        hash_eq = b.cmp("cmpeq", stored_hash, hash_value)
        current_fail = cont_probe
        next_block = match
        # compare each key after the hash check
        key_checks = b.block("checkKeys") if keys else match
        b.condbr(hash_eq, key_checks if keys else match, current_fail)
        if keys:
            b.set_block(key_checks)
            for i, key in enumerate(keys):
                stored = b.load(b.gep(entry, None, offset=ht.key_offset(i)))
                eq = b.cmp("cmpeq", stored, key)
                if i + 1 < len(keys):
                    nxt = b.block("checkKeys")
                else:
                    nxt = match
                b.condbr(eq, nxt, cont_probe)
                if i + 1 < len(keys):
                    b.set_block(nxt)

        b.set_block(cont_probe)
        next_entry = b.load(b.gep(entry, None, offset=ENTRY_NEXT), Type.PTR)
        b.add_incoming(entry, next_entry, cont_probe)
        b.br(chain)

        b.set_block(match)
        return entry, match, cont_probe

    def _emit_join_probe(self, task: Task, op: PhysicalHashJoin, index: int) -> None:
        b = self.b
        ht = self.meta.hashtable_of[op.op_id]
        keys = [self.exprs.emit(k) for k in op.probe_keys]
        hash_value = emit_hash(b, keys)
        entry, match, cont_probe = self._emit_chain_probe(task, ht, keys, hash_value)

        for i, iu in enumerate(self.meta.payload_of[op.op_id]):
            self._provide_entry_field(task, iu, entry, ht.payload_offset(i))
        # build-side key IUs may be referenced upstream (e.g. in outputs)
        from repro.plan.expr import IURef

        for i, key_expr in enumerate(op.build_keys):
            if isinstance(key_expr, IURef) and not self.tuples.has(key_expr.iu):
                self._provide_entry_field(task, key_expr.iu, entry, ht.key_offset(i))

        self.skip_targets.append(cont_probe)
        if op.residual is not None:
            for conjunct in conjuncts(op.residual):
                cond = self.exprs.emit_bool(conjunct)
                ok = b.block("residualPass")
                b.condbr(cond, ok, cont_probe)
                b.set_block(ok)
        self._continue(index)
        self.skip_targets.pop()
        self._ensure_jump(cont_probe)

    # ------------------------------------------------------------------
    # semi / anti join (unnested EXISTS / IN subqueries)

    def _emit_semi_build(self, task: Task, op: PhysicalSemiJoin, index: int) -> None:
        """Insert subquery-side keys (plus residual payload) into the table."""
        b = self.b
        ht = self.meta.hashtable_of[op.op_id]
        keys = [self.exprs.emit(k) for k in op.build_keys]
        hash_value = emit_hash(b, keys)
        ht_ptr = self._state_addr(ht.state_offset)
        entry = self.ctx.call_runtime(b, task, "ht_insert", [ht_ptr, hash_value])
        for i, key in enumerate(keys):
            b.store(b.gep(entry, None, offset=ht.key_offset(i)), key)
        for i, iu in enumerate(self.meta.payload_of[op.op_id]):
            b.store(
                b.gep(entry, None, offset=ht.payload_offset(i)), self.tuples.get(iu)
            )
        self._continue(index)

    def _emit_semi_probe(self, task: Task, op: PhysicalSemiJoin, index: int) -> None:
        """Chain walk: a probe tuple proceeds on first match (semi) or on

        chain exhaustion (anti); residual conjuncts are checked per
        candidate entry against its payload (Q21-style correlations)."""
        b = self.b
        ht = self.meta.hashtable_of[op.op_id]
        payload = self.meta.payload_of[op.op_id]
        skip = self.skip_targets[-1]

        keys = [self.exprs.emit(k) for k in op.probe_keys]
        hash_value = emit_hash(b, keys)
        directory = b.load(
            self._state_addr(ht.state_offset, HT_DIR), Type.PTR, comment="directory"
        )
        mask = b.load(self._state_addr(ht.state_offset, HT_MASK))
        bucket_addr = b.gep(directory, b.and_(hash_value, mask), scale=8)
        head = b.load(bucket_addr, Type.PTR, comment="semi directory lookup")

        chain = b.block("loopSemiChain")
        check = b.block("checkSemiEntry")
        cont_probe = b.block("contSemi")
        proceed = b.block("semiProceed")

        pred = b.current
        b.br(chain)

        b.set_block(chain)
        entry = b.phi(Type.PTR)
        b.add_incoming(entry, head, pred)
        is_null = b.cmp("cmpeq", entry, b.const(0))
        # anti join: surviving the whole chain means "no match" -> proceed
        b.condbr(is_null, proceed if op.anti else skip, check)

        b.set_block(check)
        stored_hash = b.load(b.gep(entry, None, offset=ENTRY_HASH))
        hash_eq = b.cmp("cmpeq", stored_hash, hash_value)
        key_block = b.block("checkSemiKeys")
        b.condbr(hash_eq, key_block, cont_probe)
        b.set_block(key_block)
        for i, key in enumerate(keys):
            stored = b.load(b.gep(entry, None, offset=ht.key_offset(i)))
            eq = b.cmp("cmpeq", stored, key)
            nxt = b.block("checkSemiKeys") if i + 1 < len(keys) else None
            if nxt is not None:
                b.condbr(eq, nxt, cont_probe)
                b.set_block(nxt)
            else:
                matched = b.block("semiMatched")
                b.condbr(eq, matched, cont_probe)
                b.set_block(matched)

        if op.residual is not None:
            # evaluate residual against this candidate's payload in a
            # scoped context so per-entry loads never leak downstream
            forked = self.tuples.fork()
            for i, iu in enumerate(payload):
                def emit(entry=entry, offset=ht.payload_offset(i), iu=iu):
                    return b.load(
                        b.gep(entry, None, offset=offset),
                        comment=f"semi payload {iu.name}",
                    )
                forked.provide(iu, task, emit)
            residual_exprs = ExprCodegen(self.ctx, b, forked)
            for conjunct in conjuncts(op.residual):
                cond = residual_exprs.emit_bool(conjunct)
                ok = b.block("semiResidualPass")
                b.condbr(cond, ok, cont_probe)
                b.set_block(ok)

        # a fully matching entry: semi -> tuple passes; anti -> tuple fails
        if op.anti:
            b.br(skip)
        else:
            b.br(proceed)

        b.set_block(cont_probe)
        next_entry = b.load(b.gep(entry, None, offset=ENTRY_NEXT), Type.PTR)
        b.add_incoming(entry, next_entry, cont_probe)
        b.br(chain)

        b.set_block(proceed)
        self._continue(index)

    # ------------------------------------------------------------------
    # group by (hash aggregation)

    def _emit_agg_update(
        self, entry, aggregates: list[AggCall], base_index: int,
        arg_values: dict[int, Value], ht: HashTableSpec, init: bool,
    ) -> None:
        b = self.b
        for j, agg in enumerate(aggregates):
            addr = b.gep(entry, None, offset=ht.payload_offset(base_index + j))
            if agg.kind == "count":
                if init:
                    b.store(addr, b.const(1), comment="count init")
                else:
                    current = b.load(addr, comment="count")
                    b.store(addr, b.add(current, b.const(1)))
                continue
            value = arg_values[j]
            if init:
                b.store(addr, value, comment=f"{agg.kind} init")
                continue
            current = b.load(addr, comment=agg.kind)
            if agg.kind == "sum":
                updated = b.add(current, value)
            elif agg.kind == "min":
                updated = b.min(current, value)
            else:
                updated = b.max(current, value)
            b.store(addr, updated)

    def _emit_groupby_materialize(
        self, task: Task, op: PhysicalGroupBy, index: int
    ) -> None:
        b = self.b
        ht = self.meta.hashtable_of[op.op_id]
        skip = self.skip_targets[-1]

        key_values = [self.exprs.emit(expr) for _, expr in op.keys]
        if key_values:
            hash_value = emit_hash(b, key_values)
        else:
            hash_value = b.crc32(b.const(0), b.const(1))  # global aggregate
        arg_values = {
            j: self.exprs.emit(agg.arg)
            for j, agg in enumerate(op.aggregates)
            if agg.arg is not None
        }

        directory = b.load(self._state_addr(ht.state_offset, HT_DIR), Type.PTR)
        mask = b.load(self._state_addr(ht.state_offset, HT_MASK))
        bucket_addr = b.gep(directory, b.and_(hash_value, mask), scale=8)
        head = b.load(bucket_addr, Type.PTR, comment="agg directory lookup")

        chain = b.block("loopAggChain")
        check = b.block("checkGroup")
        cont_probe = b.block("contGroup")
        found = b.block("groupHit")
        missing = b.block("groupMiss")

        pred = b.current
        b.br(chain)

        b.set_block(chain)
        entry = b.phi(Type.PTR)
        b.add_incoming(entry, head, pred)
        is_null = b.cmp("cmpeq", entry, b.const(0))
        b.condbr(is_null, missing, check)

        b.set_block(check)
        stored_hash = b.load(b.gep(entry, None, offset=ENTRY_HASH))
        hash_eq = b.cmp("cmpeq", stored_hash, hash_value)
        if key_values:
            keys_block = b.block("checkGroupKeys")
            b.condbr(hash_eq, keys_block, cont_probe)
            b.set_block(keys_block)
            for i, key in enumerate(key_values):
                stored = b.load(b.gep(entry, None, offset=ht.key_offset(i)))
                eq = b.cmp("cmpeq", stored, key)
                nxt = b.block("checkGroupKeys") if i + 1 < len(key_values) else found
                b.condbr(eq, nxt, cont_probe)
                if i + 1 < len(key_values):
                    b.set_block(nxt)
        else:
            b.condbr(hash_eq, found, cont_probe)

        b.set_block(cont_probe)
        next_entry = b.load(b.gep(entry, None, offset=ENTRY_NEXT), Type.PTR)
        b.add_incoming(entry, next_entry, cont_probe)
        b.br(chain)

        b.set_block(found)
        self._emit_agg_update(entry, op.aggregates, 0, arg_values, ht, init=False)
        b.br(skip)

        b.set_block(missing)
        ht_ptr = self._state_addr(ht.state_offset)
        fresh = self.ctx.call_runtime(b, task, "ht_insert", [ht_ptr, hash_value])
        for i, key in enumerate(key_values):
            b.store(b.gep(fresh, None, offset=ht.key_offset(i)), key)
        self._emit_agg_update(fresh, op.aggregates, 0, arg_values, ht, init=True)
        b.br(skip)

    # ------------------------------------------------------------------
    # groupjoin (fused group-by + join)

    def _emit_groupjoin_build(
        self, task: Task, op: PhysicalGroupJoin, index: int
    ) -> None:
        b = self.b
        ht = self.meta.hashtable_of[op.op_id]
        keys = [self.exprs.emit(k) for k in op.build_keys]
        hash_value = emit_hash(b, keys)
        ht_ptr = self._state_addr(ht.state_offset)
        entry = self.ctx.call_runtime(b, task, "ht_insert", [ht_ptr, hash_value])
        for i, key in enumerate(keys):
            b.store(b.gep(entry, None, offset=ht.key_offset(i)), key)
        for i, iu in enumerate(self.meta.payload_of[op.op_id]):
            b.store(
                b.gep(entry, None, offset=ht.payload_offset(i)), self.tuples.get(iu)
            )
        # aggregate slots and the matched flag start zeroed (fresh chunks
        # are zero-filled), so nothing else to initialize here
        self._continue(index)

    def _emit_groupjoin_probe(
        self, task: Task, op: PhysicalGroupJoin, index: int
    ) -> None:
        b = self.b
        ht = self.meta.hashtable_of[op.op_id]
        payload = self.meta.payload_of[op.op_id]
        agg_base = len(payload)
        matched_offset = ht.payload_offset(agg_base + len(op.aggregates))

        keys = [self.exprs.emit(k) for k in op.probe_keys]
        hash_value = emit_hash(b, keys)
        arg_values = {
            j: self.exprs.emit(agg.arg)
            for j, agg in enumerate(op.aggregates)
            if agg.arg is not None
        }
        entry, match, cont_probe = self._emit_chain_probe(task, ht, keys, hash_value)

        skip = self.skip_targets[-1]
        matched = b.load(b.gep(entry, None, offset=matched_offset))
        first = b.block("firstMatch")
        again = b.block("laterMatch")
        is_first = b.cmp("cmpeq", matched, b.const(0))
        b.condbr(is_first, first, again)

        b.set_block(first)
        b.store(b.gep(entry, None, offset=matched_offset), b.const(1))
        self._emit_agg_update(entry, op.aggregates, agg_base, arg_values, ht, init=True)
        b.br(skip)

        b.set_block(again)
        self._emit_agg_update(entry, op.aggregates, agg_base, arg_values, ht, init=False)
        b.br(skip)

    # ------------------------------------------------------------------
    # sort

    def _emit_sort_materialize(self, task: Task, op: PhysicalSort, index: int) -> None:
        b = self.b
        buffer = self.meta.buffer_of[op.op_id]
        layout = self.meta.row_layout_of[op.op_id]
        values = [self.tuples.get(iu) for iu in layout]

        count_addr = self._state_addr(buffer.state_offset, BUF_COUNT)
        count = b.load(count_addr, comment="buffer count")
        capacity = b.load(self._state_addr(buffer.state_offset, BUF_CAP))
        full = b.cmp("cmpge", count, capacity)
        grow = b.block("growBuffer")
        have = b.block("haveRoom")
        b.condbr(full, grow, have)

        b.set_block(grow)
        buf_ptr = self._state_addr(buffer.state_offset)
        self.ctx.call_runtime(b, task, "buffer_grow", [buf_ptr])
        b.br(have)

        b.set_block(have)
        data = b.load(self._state_addr(buffer.state_offset, BUF_DATA), Type.PTR)
        row = b.gep(data, b.mul(count, b.const(buffer.row_words)), scale=8)
        for j, value in enumerate(values):
            b.store(b.gep(row, None, offset=j * 8), value)
        b.store(count_addr, b.add(count, b.const(1)))
        self._continue(index)
