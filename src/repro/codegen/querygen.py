"""Top-level query code generation: pipelines to an IR module.

Produces one IR function per pipeline plus a ``query_setup`` function that
allocates hash tables and buffers through the kernel (so allocation cost and
kernel samples occur during execution, as on a real system).  Also computes
the physical metadata — hash-table geometry from cardinality estimates,
payload layouts, sort descriptors, state-block layout — that the engine
needs to run the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.context import (
    BufferSpec,
    CodegenContext,
    DataEnvironment,
    HashTableSpec,
    StateLayout,
)
from repro.codegen.operators import PipelineCodegen
from repro.codegen.runtime import (
    BUF_CAP,
    BUF_COUNT,
    BUF_DATA,
    BUF_ROW_WORDS,
    HT_COUNT,
    HT_DIR,
    HT_END,
    HT_ENTRY_WORDS,
    HT_MASK,
    HT_NEXT_FREE,
)
from repro.errors import CodegenError
from repro.ir import IRBuilder, Module, Type, verify_module
from repro.pipeline.tasks import Pipeline, Task
from repro.plan.expr import IU, IURef
from repro.plan.physical import (
    PhysicalSemiJoin,
    PhysicalGroupBy,
    PhysicalGroupJoin,
    PhysicalHashJoin,
    PhysicalLimit,
    PhysicalMap,
    PhysicalOperator,
    PhysicalOutput,
    PhysicalSelect,
    PhysicalSort,
)
from repro.profiling.tagging import TaggingDictionary
from repro.profiling.trackers import AbstractionTracker
from repro.vm.kernel import K_ALLOC, SortDescriptor, SortKey


@dataclass
class ZoneSlot:
    """State offsets of one scan's zone-map counters: the generated
    segment loop counts considered segments and, per pruned column,
    skipped segments; the engine harvests them after every run."""

    considered_offset: int
    table_name: str
    # (schema column index, state byte offset of its skip counter)
    skip_offsets: list[tuple[int, int]] = field(default_factory=list)
    # rows removed by compile-time spine narrowing: they never enter any
    # morsel, so the engine adds them back to the PGO tuple counters of
    # the tasks below (ids), keeping observed cardinalities layout-free
    static_excluded: int = 0
    compensate_task_ids: tuple = ()


@dataclass
class QueryPlanMeta:
    """Per-operator physical metadata shared by all pipeline generators."""

    hashtable_of: dict[int, HashTableSpec] = field(default_factory=dict)
    payload_of: dict[int, list[IU]] = field(default_factory=dict)
    buffer_of: dict[int, BufferSpec] = field(default_factory=dict)
    row_layout_of: dict[int, list[IU]] = field(default_factory=dict)
    sort_descriptor_of: dict[int, int] = field(default_factory=dict)
    limit_slot_of: dict[int, int] = field(default_factory=dict)
    output_row_offset: int = 0
    setup_tasks: list[tuple[Task, PhysicalOperator]] = field(default_factory=list)
    # per-pipeline morsel domains: ("rows", n) | ("slots", n) |
    # ("buffer", state_offset, limit)
    pipeline_domains: dict[int, tuple] = field(default_factory=dict)
    # pipelines that need a single-threaded prepare step (the kernel sort)
    prepare_sorts: dict[int, tuple[Task, PhysicalOperator]] = field(
        default_factory=dict
    )
    # task id -> state byte offset of its entry counter (PGO tuple counts);
    # populated only when generating with count_tuples=True
    task_counter_of: dict[int, int] = field(default_factory=dict)
    # scan op id -> its zone-map counter slots (storage-backed scans with
    # at least one prunable predicate)
    zone_slots: dict[int, ZoneSlot] = field(default_factory=dict)


@dataclass
class CompiledQueryIR:
    """Everything generated for one query, before the backend runs."""

    module: Module
    state: StateLayout
    meta: QueryPlanMeta
    pipelines: list[Pipeline]
    ctx: CodegenContext


def _used_ius(root: PhysicalOutput) -> set[IU]:
    """Every IU referenced by any expression or output in the plan."""
    used: set[IU] = set()
    for op in root.walk():
        if isinstance(op, PhysicalSelect):
            used |= op.condition.ius()
        elif isinstance(op, PhysicalMap):
            for _, expr in op.computed:
                used |= expr.ius()
        elif isinstance(op, (PhysicalHashJoin, PhysicalSemiJoin)):
            for key in op.build_keys + op.probe_keys:
                used |= key.ius()
            if op.residual is not None:
                used |= op.residual.ius()
        elif isinstance(op, PhysicalGroupJoin):
            for key in op.build_keys + op.probe_keys:
                used |= key.ius()
            for agg in op.aggregates:
                if agg.arg is not None:
                    used |= agg.arg.ius()
        elif isinstance(op, PhysicalGroupBy):
            for _, expr in op.keys:
                used |= expr.ius()
            for agg in op.aggregates:
                if agg.arg is not None:
                    used |= agg.arg.ius()
        elif isinstance(op, PhysicalSort):
            for expr, _ in op.keys:
                used |= expr.ius()
        elif isinstance(op, PhysicalOutput):
            used |= {iu for _, iu in op.columns}
    return used


def _pow2_at_least(n: int) -> int:
    size = 8
    while size < n:
        size *= 2
    return size


def generate_query_ir(
    root: PhysicalOutput,
    pipelines: list[Pipeline],
    env: DataEnvironment,
    tagging: TaggingDictionary,
    estimates: dict[int, float] | None = None,
    count_tuples: bool = False,
) -> CompiledQueryIR:
    """Generate the full IR module for a decomposed query.

    ``count_tuples`` plants one counter per non-driver task in the query
    state; each task increments its counter on entry, so the entry count of
    task *k* observes the output cardinality of the operator owning task
    *k-1* — the feedback :mod:`repro.pgo` extracts.
    """
    estimates = estimates or {}
    module = Module("query")
    ctx = CodegenContext(
        module=module,
        env=env,
        tagging=tagging,
        task_tracker=AbstractionTracker("task"),
    )
    meta = QueryPlanMeta()
    used = _used_ius(root)

    def estimate(op: PhysicalOperator, default: float = 1024.0) -> int:
        return max(1, int(estimates.get(op.op_id, default)))

    # task lookup: operator id + role -> task (for setup attribution)
    task_of: dict[tuple[int, str], Task] = {}
    for pipeline in pipelines:
        for task in pipeline.tasks:
            task_of[(task.operator.op_id, task.role)] = task

    # -- physical metadata -------------------------------------------------

    for op in root.walk():
        if isinstance(op, PhysicalHashJoin):
            key_ius = {
                k.iu for k in op.build_keys if isinstance(k, IURef)
            }
            payload = [
                iu for iu in op.build_payload if iu in used and iu not in key_ius
            ]
            meta.payload_of[op.op_id] = payload
            rows = estimate(op.build)
            spec = HashTableSpec(
                name=f"ht_join_{op.op_id}",
                state_offset=ctx.state.reserve(f"ht_join_{op.op_id}", 6),
                directory_slots=_pow2_at_least(rows * 2),
                entry_words=2 + len(op.build_keys) + len(payload),
                initial_entries=max(16, int(rows * 1.25)),
                key_count=len(op.build_keys),
            )
            meta.hashtable_of[op.op_id] = spec
            ctx.hashtables.append(spec)
            meta.setup_tasks.append((task_of[(op.op_id, "build")], op))
        elif isinstance(op, PhysicalSemiJoin):
            payload = list(op.build_payload)
            meta.payload_of[op.op_id] = payload
            rows = estimate(op.build)
            spec = HashTableSpec(
                name=f"ht_semi_{op.op_id}",
                state_offset=ctx.state.reserve(f"ht_semi_{op.op_id}", 6),
                directory_slots=_pow2_at_least(rows * 2),
                entry_words=2 + len(op.build_keys) + len(payload),
                initial_entries=max(16, int(rows * 1.25)),
                key_count=len(op.build_keys),
            )
            meta.hashtable_of[op.op_id] = spec
            ctx.hashtables.append(spec)
            meta.setup_tasks.append((task_of[(op.op_id, "semi-build")], op))
        elif isinstance(op, PhysicalGroupJoin):
            key_ius = {k.iu for k in op.build_keys if isinstance(k, IURef)}
            payload = [
                iu for iu in op.build_payload if iu in used and iu not in key_ius
            ]
            meta.payload_of[op.op_id] = payload
            rows = estimate(op.build)
            entry_words = (
                2 + len(op.build_keys) + len(payload) + len(op.aggregates) + 1
            )
            spec = HashTableSpec(
                name=f"ht_groupjoin_{op.op_id}",
                state_offset=ctx.state.reserve(f"ht_groupjoin_{op.op_id}", 6),
                directory_slots=_pow2_at_least(rows * 2),
                entry_words=entry_words,
                initial_entries=max(16, int(rows * 1.25)),
                key_count=len(op.build_keys),
            )
            meta.hashtable_of[op.op_id] = spec
            ctx.hashtables.append(spec)
            meta.setup_tasks.append(
                (task_of[(op.op_id, "groupjoin-join build")], op)
            )
        elif isinstance(op, PhysicalGroupBy):
            groups = estimate(op)
            spec = HashTableSpec(
                name=f"ht_groupby_{op.op_id}",
                state_offset=ctx.state.reserve(f"ht_groupby_{op.op_id}", 6),
                directory_slots=_pow2_at_least(groups * 2),
                entry_words=2 + len(op.keys) + len(op.aggregates),
                initial_entries=max(16, int(groups * 1.25)),
                key_count=len(op.keys),
            )
            meta.hashtable_of[op.op_id] = spec
            ctx.hashtables.append(spec)
            meta.setup_tasks.append((task_of[(op.op_id, "materialize")], op))
        elif isinstance(op, PhysicalSort):
            key_ius: list[IU] = []
            for expr, _ in op.keys:
                if not isinstance(expr, IURef):
                    raise CodegenError("sort keys must be materialized IUs")
                key_ius.append(expr.iu)
            # everything above the sort (only limit/output can be) reads
            # from the materialized rows, so output columns join the layout
            needed = list(key_ius)
            for _, out_iu in root.columns:
                if out_iu not in needed:
                    needed.append(out_iu)
            meta.row_layout_of[op.op_id] = needed
            rows = estimate(op.child, default=256.0)
            # buffers start deliberately small and double through
            # buffer_grow/memcpy — growth is normal operation in a real
            # engine, and the untagged SYSLIB memcpy is the source of the
            # paper's ~2 % unattributable samples (Table 2)
            spec = BufferSpec(
                name=f"sortbuf_{op.op_id}",
                state_offset=ctx.state.reserve(f"sortbuf_{op.op_id}", 4),
                row_words=len(needed),
                initial_rows=max(16, int(rows * 0.25)),
            )
            meta.buffer_of[op.op_id] = spec
            ctx.buffers.append(spec)
            descriptor = SortDescriptor(
                row_words=len(needed),
                keys=tuple(
                    SortKey(needed.index(expr.iu), ascending)
                    for expr, ascending in op.keys
                ),
                limit=op.limit,
            )
            meta.sort_descriptor_of[op.op_id] = env.register_sort(descriptor)
            meta.setup_tasks.append((task_of[(op.op_id, "materialize")], op))
        elif isinstance(op, PhysicalLimit):
            meta.limit_slot_of[op.op_id] = ctx.state.reserve(
                f"limit_{op.op_id}", 1
            )
        elif isinstance(op, PhysicalOutput):
            meta.output_row_offset = ctx.state.reserve(
                "output_row", max(1, len(op.columns))
            )

    if count_tuples:
        for pipeline in pipelines:
            for position, task in enumerate(pipeline.tasks):
                if position == 0:
                    continue  # the driver's domain is already known
                meta.task_counter_of[task.id] = ctx.state.reserve(
                    f"task_counter_{pipeline.index}_{position}", 1
                )

    # -- setup function ----------------------------------------------------

    _generate_setup(ctx, meta)

    # -- pipeline functions --------------------------------------------------

    for pipeline in pipelines:
        fn = module.new_function(
            f"pipeline_{pipeline.index}",
            [("state", Type.PTR), ("begin", Type.I64), ("end", Type.I64)],
        )
        PipelineCodegen(ctx, pipeline, fn, meta).generate()

    _generate_prepare_functions(ctx, meta)

    verify_module(module)
    return CompiledQueryIR(
        module=module, state=ctx.state, meta=meta, pipelines=pipelines, ctx=ctx
    )


def _generate_setup(ctx: CodegenContext, meta: QueryPlanMeta) -> None:
    """Allocate hash tables and sort buffers through the kernel."""
    fn = ctx.module.new_function("query_setup", [("state", Type.PTR)])
    b = IRBuilder(fn)
    ctx.install_tagging_listener(b)
    b.set_block(b.block("entry"))
    state = fn.params[0]

    setup_by_op = {op.op_id: task for task, op in meta.setup_tasks}

    for spec in ctx.hashtables:
        op_id = int(spec.name.rsplit("_", 1)[1])
        task = setup_by_op.get(op_id)
        tracker_ctx = (
            ctx.task_tracker.active(task) if task is not None else _null_ctx()
        )
        with tracker_ctx:
            base = b.gep(state, None, offset=spec.state_offset)
            directory = b.kcall(
                K_ALLOC, [b.const(spec.directory_slots * 8)], Type.PTR
            )
            b.store(b.gep(base, None, offset=HT_DIR), directory)
            b.store(b.gep(base, None, offset=HT_MASK),
                    b.const(spec.directory_slots - 1))
            b.store(b.gep(base, None, offset=HT_ENTRY_WORDS),
                    b.const(spec.entry_words))
            b.store(b.gep(base, None, offset=HT_COUNT), b.const(0))
            chunk_bytes = spec.initial_entries * spec.entry_words * 8
            chunk = b.kcall(K_ALLOC, [b.const(chunk_bytes)], Type.PTR)
            b.store(b.gep(base, None, offset=HT_NEXT_FREE), chunk)
            b.store(b.gep(base, None, offset=HT_END),
                    b.add(chunk, b.const(chunk_bytes)))

    for spec in ctx.buffers:
        op_id = int(spec.name.rsplit("_", 1)[1])
        task = setup_by_op.get(op_id)
        tracker_ctx = (
            ctx.task_tracker.active(task) if task is not None else _null_ctx()
        )
        with tracker_ctx:
            base = b.gep(state, None, offset=spec.state_offset)
            data_bytes = spec.initial_rows * spec.row_words * 8
            data = b.kcall(K_ALLOC, [b.const(data_bytes)], Type.PTR)
            b.store(b.gep(base, None, offset=BUF_DATA), data)
            b.store(b.gep(base, None, offset=BUF_COUNT), b.const(0))
            b.store(b.gep(base, None, offset=BUF_CAP), b.const(spec.initial_rows))
            b.store(b.gep(base, None, offset=BUF_ROW_WORDS),
                    b.const(spec.row_words))

    # the epilogue belongs to whichever operator's setup ran (glue code;
    # attribute it to the first materializing task so the dictionary stays
    # total over generated instructions)
    if meta.setup_tasks:
        with ctx.task_tracker.active(meta.setup_tasks[0][0]):
            b.ret()
    else:
        b.ret()


def _generate_prepare_functions(ctx: CodegenContext, meta: QueryPlanMeta) -> None:
    """One single-threaded prepare function per sort-output pipeline: the

    kernel sort must run exactly once before the (possibly parallel) morsel
    scan of the sorted buffer."""
    from repro.codegen.runtime import BUF_COUNT, BUF_DATA
    from repro.vm.kernel import K_SORT

    for pipeline_index, (task, op) in meta.prepare_sorts.items():
        fn = ctx.module.new_function(
            f"pipeline_{pipeline_index}_prepare", [("state", Type.PTR)]
        )
        b = IRBuilder(fn)
        ctx.install_tagging_listener(b)
        b.set_block(b.block("entry"))
        with ctx.task_tracker.active(task):
            buffer = meta.buffer_of[op.op_id]
            state = fn.params[0]
            data = b.load(
                b.gep(state, None, offset=buffer.state_offset + BUF_DATA),
                Type.PTR,
            )
            count = b.load(
                b.gep(state, None, offset=buffer.state_offset + BUF_COUNT)
            )
            descriptor_id = meta.sort_descriptor_of[op.op_id]
            b.kcall(K_SORT, [data, count, b.const(descriptor_id)])
            b.ret()


def _null_ctx():
    from contextlib import nullcontext

    return nullcontext()
