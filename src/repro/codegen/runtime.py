"""The pre-compiled runtime library, written in the engine's own IR.

These functions are compiled once per query image into the RUNTIME code
region and *shared* by every operator instance that calls them — they are
the paper's "shared source locations" (§4.2.5): a profiling sample inside
``ht_insert`` cannot be attributed by IP alone, which is exactly what
Register Tagging (or call-stack sampling) disambiguates.

``memcpy`` is deliberately compiled into the SYSLIB region and excluded
from the Tagging Dictionary: it models the system libraries the paper did
not tag, producing Table 2's ~2 % unattributed samples.

Hash-table layout (all offsets in bytes, one word each):

====  ============  =================================================
0     dir           pointer to the power-of-two directory
8     mask          directory slot mask
16    entry_words   words per entry (next, hash, keys..., payload...)
24    count         number of inserted entries
32    next_free     bump pointer into the current entry chunk
40    end           end of the current entry chunk
====  ============  =================================================

Entries: ``[next][hash][key...][payload...]``.

Buffer layout: ``[data][count][capacity][row_words]``.
"""

from __future__ import annotations

from repro.ir import IRBuilder, Module, Type
from repro.vm.kernel import K_ALLOC

HT_DIR = 0
HT_MASK = 8
HT_ENTRY_WORDS = 16
HT_COUNT = 24
HT_NEXT_FREE = 32
HT_END = 40
HT_HEADER_WORDS = 6

ENTRY_NEXT = 0
ENTRY_HASH = 8
ENTRY_DATA = 16  # first key field

BUF_DATA = 0
BUF_COUNT = 8
BUF_CAP = 16
BUF_ROW_WORDS = 24
BUF_HEADER_WORDS = 4

GROW_ENTRIES = 1024  # entries added per hash-table chunk growth

RUNTIME_FUNCTIONS = ("ht_insert", "buffer_grow")
SYSLIB_FUNCTIONS = ("memcpy",)


def build_syslib_module() -> Module:
    """``memcpy(dst, src, words) -> dst`` — the untagged system library."""
    module = Module("syslib")
    fn = module.new_function(
        "memcpy",
        [("dst", Type.PTR), ("src", Type.PTR), ("words", Type.I64)],
        Type.PTR,
    )
    b = IRBuilder(fn)
    dst, src, words = fn.params
    entry = b.block("entry")
    loop = b.block("loop")
    body = b.block("body")
    done = b.block("done")
    b.set_block(entry)
    b.br(loop)
    b.set_block(loop)
    i = b.phi(Type.I64)
    b.add_incoming(i, b.const(0), entry)
    finished = b.cmp("cmpge", i, words)
    b.condbr(finished, done, body)
    b.set_block(body)
    value = b.load(b.gep(src, i, scale=8))
    b.store(b.gep(dst, i, scale=8), value)
    next_i = b.add(i, b.const(1))
    b.add_incoming(i, next_i, body)
    b.br(loop)
    b.set_block(done)
    b.ret(dst)
    return module


def build_runtime_module() -> Module:
    """Build ``ht_insert`` and ``buffer_grow``."""
    module = Module("runtime")
    _build_ht_insert(module)
    _build_buffer_grow(module)
    return module


def _build_ht_insert(module: Module) -> None:
    """``ht_insert(ht, hash) -> entry``: allocate an entry (growing the

    chunk through the kernel when exhausted), link it into the bucket chain,
    and store the hash; the *caller* fills keys and payload inline."""
    fn = module.new_function(
        "ht_insert", [("ht", Type.PTR), ("hash", Type.I64)], Type.PTR
    )
    b = IRBuilder(fn)
    ht, hash_value = fn.params
    entry_block = b.block("entry")
    grow = b.block("grow")
    have = b.block("have")

    b.set_block(entry_block)
    free = b.load(b.gep(ht, None, offset=HT_NEXT_FREE), Type.PTR, comment="next_free")
    end = b.load(b.gep(ht, None, offset=HT_END), Type.PTR)
    fits = b.cmp("cmplt", free, end)
    b.condbr(fits, have, grow)

    b.set_block(grow)
    entry_words = b.load(b.gep(ht, None, offset=HT_ENTRY_WORDS))
    chunk_bytes = b.mul(entry_words, b.const(8 * GROW_ENTRIES))
    fresh = b.kcall(K_ALLOC, [chunk_bytes], Type.PTR)
    new_end = b.add(fresh, chunk_bytes)
    b.store(b.gep(ht, None, offset=HT_END), new_end)
    b.br(have)

    b.set_block(have)
    slot = b.phi(Type.PTR)
    b.add_incoming(slot, free, entry_block)
    b.add_incoming(slot, fresh, grow)
    words = b.load(b.gep(ht, None, offset=HT_ENTRY_WORDS))
    entry_bytes = b.shl(words, b.const(3))
    next_free = b.add(slot, entry_bytes)
    b.store(b.gep(ht, None, offset=HT_NEXT_FREE), next_free)

    directory = b.load(b.gep(ht, None, offset=HT_DIR), Type.PTR, comment="directory")
    mask = b.load(b.gep(ht, None, offset=HT_MASK))
    bucket = b.and_(hash_value, mask)
    bucket_addr = b.gep(directory, bucket, scale=8)
    head = b.load(bucket_addr, Type.PTR, comment="chain head")
    b.store(b.gep(slot, None, offset=ENTRY_NEXT), head)
    b.store(b.gep(slot, None, offset=ENTRY_HASH), hash_value)
    b.store(bucket_addr, slot)
    count = b.load(b.gep(ht, None, offset=HT_COUNT))
    b.store(b.gep(ht, None, offset=HT_COUNT), b.add(count, b.const(1)))
    b.ret(slot)


def _build_buffer_grow(module: Module) -> None:
    """``buffer_grow(buf) -> data``: double capacity, memcpy rows over."""
    fn = module.new_function("buffer_grow", [("buf", Type.PTR)], Type.PTR)
    b = IRBuilder(fn)
    (buf,) = fn.params
    b.set_block(b.block("entry"))
    capacity = b.load(b.gep(buf, None, offset=BUF_CAP))
    row_words = b.load(b.gep(buf, None, offset=BUF_ROW_WORDS))
    count = b.load(b.gep(buf, None, offset=BUF_COUNT))
    new_capacity = b.mul(capacity, b.const(2))
    total_words = b.mul(new_capacity, row_words)
    total_bytes = b.shl(total_words, b.const(3))
    fresh = b.kcall(K_ALLOC, [total_bytes], Type.PTR)
    old = b.load(b.gep(buf, None, offset=BUF_DATA), Type.PTR)
    used_words = b.mul(count, row_words)
    b.call("memcpy", [fresh, old, used_words], Type.PTR)
    b.store(b.gep(buf, None, offset=BUF_DATA), fresh)
    b.store(b.gep(buf, None, offset=BUF_CAP), new_capacity)
    b.ret(fresh)
