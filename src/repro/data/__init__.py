"""Workloads: the TPC-H-like generator, the paper's intro example, and the
adapted 22-query suite."""

from repro.data.tpch import TPCH_TABLE_NAMES, generate_tpch
from repro.data.example import generate_example

__all__ = ["TPCH_TABLE_NAMES", "generate_example", "generate_tpch"]
