"""The paper's running example (Figure 3): ``sales`` and ``products``.

The intro query joins sales with chip-category products and averages a
divide-heavy expression per sale id — the workload whose profile (Listing 1)
motivates the whole paper: one hot join load instruction at 32 %, while the
aggregation's 50 % is spread thin across many lines.
"""

from __future__ import annotations

import random

from repro.catalog import Catalog, Column, DataType, Schema

_CATEGORIES = ["Chip", "Board", "Cable", "Case", "Fan"]


def generate_example(catalog: Catalog, n_sales: int = 5000,
                     n_products: int = 200, seed: int = 7) -> None:
    """Create and populate the Figure 3 example tables."""
    rng = random.Random(seed)
    t = DataType
    products = catalog.create_table("products", Schema([
        Column("id", t.INT),
        Column("category", t.STRING),
    ]))
    for i in range(1, n_products + 1):
        products.append((i, rng.choice(_CATEGORIES)))

    sales = catalog.create_table("sales", Schema([
        Column("id", t.INT),
        Column("price", t.DECIMAL),
        Column("vat_factor", t.DECIMAL),
        Column("prod_costs", t.DECIMAL),
    ]))
    # the fact table: repro.fleet splits it across service shards on the
    # product id while the small products dimension replicates everywhere
    sales.partition_key = "id"
    for _ in range(n_sales):
        sales.append((
            rng.randint(1, n_products),
            rng.uniform(10.0, 500.0),
            rng.choice([1.07, 1.19]),
            rng.uniform(1.0, 9.0),
        ))
