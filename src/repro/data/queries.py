"""The 22 TPC-H queries, adapted to the engine's SQL subset.

Each adaptation is recorded next to its query.  The recurring rewrites
(DESIGN.md §4):

- EXISTS / NOT EXISTS / IN subqueries run natively as unnested semi/anti
  joins (Q4, Q16, Q18, Q20, Q21, Q22); *uncorrelated* scalar subqueries
  are evaluated first and inlined (Q11, Q15); correlated scalar aggregates
  are decorrelated by hand into grouped derived tables (Q2, Q15, Q17) —
  the standard unnesting a production optimizer would perform; Q13's left
  outer join becomes an inner join,
- ``interval`` date arithmetic is pre-computed into literals,
- ``substring(c_phone,1,2)`` becomes prefix LIKE predicates (Q22),
- ``count(distinct ...)`` becomes ``count(*)`` (Q16).

The workload *shape* — scan-heavy aggregation (Q1, Q6), selective
multi-way joins (Q2, Q5, Q8, Q9), big ORs of IN/BETWEEN (Q19), LIKE
anti-predicates (Q13, Q16) — is preserved, which is what the paper's
profiling evaluation depends on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkQuery:
    """One adapted query plus its provenance notes."""

    name: str
    sql: str
    adaptation: str = "direct"


Q1 = BenchmarkQuery("q1", """
select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date '1998-09-02'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus
""")

Q2 = BenchmarkQuery("q2", """
select s_acctbal, s_name, n_name, p_partkey, p_mfgr
from part, supplier, partsupp, nation, region,
     (select ps_partkey as mpk, min(ps_supplycost) as mc
      from partsupp, supplier, nation, region
      where s_suppkey = ps_suppkey and s_nationkey = n_nationkey
        and n_regionkey = r_regionkey and r_name = 'EUROPE'
      group by ps_partkey) m
where p_partkey = ps_partkey and s_suppkey = ps_suppkey
  and p_size = 15 and p_type like '%BRASS'
  and s_nationkey = n_nationkey and n_regionkey = r_regionkey
  and r_name = 'EUROPE'
  and p_partkey = m.mpk and ps_supplycost = m.mc
order by s_acctbal desc, n_name, s_name, p_partkey
limit 100
""", adaptation="the correlated min-supplycost subquery is decorrelated "
                "into a grouped derived table (standard unnesting)")

Q3 = BenchmarkQuery("q3", """
select l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) as revenue,
       o_orderdate, o_shippriority
from customer, orders, lineitem
where c_mktsegment = 'BUILDING'
  and c_custkey = o_custkey and l_orderkey = o_orderkey
  and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate
limit 10
""")

Q4 = BenchmarkQuery("q4", """
select o_orderpriority, count(*) as order_count
from orders
where o_orderdate >= date '1993-07-01' and o_orderdate < date '1993-10-01'
  and exists (select l_orderkey from lineitem
              where l_orderkey = o_orderkey
                and l_commitdate < l_receiptdate)
group by o_orderpriority
order by o_orderpriority
""")

Q5 = BenchmarkQuery("q5", """
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey and c_nationkey = s_nationkey
  and s_nationkey = n_nationkey and n_regionkey = r_regionkey
  and r_name = 'ASIA'
  and o_orderdate >= date '1994-01-01' and o_orderdate < date '1995-01-01'
group by n_name
order by revenue desc
""")

Q6 = BenchmarkQuery("q6", """
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
  and l_discount between 0.05 and 0.07 and l_quantity < 24
""")

Q7 = BenchmarkQuery("q7", """
select n1.n_name as supp_nation, n2.n_name as cust_nation,
       year(l_shipdate) as l_year,
       sum(l_extendedprice * (1 - l_discount)) as revenue
from supplier, lineitem, orders, customer, nation n1, nation n2
where s_suppkey = l_suppkey and o_orderkey = l_orderkey
  and c_custkey = o_custkey
  and s_nationkey = n1.n_nationkey and c_nationkey = n2.n_nationkey
  and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY')
       or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE'))
  and l_shipdate between date '1995-01-01' and date '1996-12-31'
group by n1.n_name, n2.n_name, year(l_shipdate)
order by supp_nation, cust_nation, l_year
""")

Q8 = BenchmarkQuery("q8", """
select year(o_orderdate) as o_year,
       sum(case when n2.n_name = 'BRAZIL'
                then l_extendedprice * (1 - l_discount) else 0 end)
         / sum(l_extendedprice * (1 - l_discount)) as mkt_share
from part, supplier, lineitem, orders, customer, nation n1, nation n2, region
where p_partkey = l_partkey and s_suppkey = l_suppkey
  and l_orderkey = o_orderkey and o_custkey = c_custkey
  and c_nationkey = n1.n_nationkey and n1.n_regionkey = r_regionkey
  and r_name = 'AMERICA' and s_nationkey = n2.n_nationkey
  and o_orderdate between date '1995-01-01' and date '1996-12-31'
  and p_type = 'ECONOMY ANODIZED STEEL'
group by year(o_orderdate)
order by o_year
""")

Q9 = BenchmarkQuery("q9", """
select n_name as nation, year(o_orderdate) as o_year,
       sum(l_extendedprice * (1 - l_discount)
           - ps_supplycost * l_quantity) as sum_profit
from part, supplier, lineitem, partsupp, orders, nation
where s_suppkey = l_suppkey and ps_suppkey = l_suppkey
  and ps_partkey = l_partkey and p_partkey = l_partkey
  and o_orderkey = l_orderkey and s_nationkey = n_nationkey
  and p_name like '%green%'
group by n_name, year(o_orderdate)
order by nation, o_year desc
""")

Q10 = BenchmarkQuery("q10", """
select c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) as revenue,
       c_acctbal, n_name
from customer, orders, lineitem, nation
where c_custkey = o_custkey and l_orderkey = o_orderkey
  and o_orderdate >= date '1993-10-01' and o_orderdate < date '1994-01-01'
  and l_returnflag = 'R' and c_nationkey = n_nationkey
group by c_custkey, c_name, c_acctbal, n_name
order by revenue desc
limit 20
""")

Q11 = BenchmarkQuery("q11", """
select ps_partkey, sum(ps_supplycost * ps_availqty) as value
from partsupp, supplier, nation
where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
  and n_name = 'GERMANY'
group by ps_partkey
having sum(ps_supplycost * ps_availqty) >
       (select sum(ps_supplycost * ps_availqty) as total
        from partsupp, supplier, nation
        where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
          and n_name = 'GERMANY') * 0.01
order by value desc
""", adaptation="the spec's fraction 0.0001/SF becomes 0.01 for the small "
                "scale factors; the scalar subquery itself runs natively")

Q12 = BenchmarkQuery("q12", """
select l_shipmode,
       sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH'
                then 1 else 0 end) as high_line_count,
       sum(case when o_orderpriority <> '1-URGENT'
                 and o_orderpriority <> '2-HIGH'
                then 1 else 0 end) as low_line_count
from orders, lineitem
where o_orderkey = l_orderkey
  and l_shipmode in ('MAIL', 'SHIP')
  and l_commitdate < l_receiptdate and l_shipdate < l_commitdate
  and l_receiptdate >= date '1994-01-01' and l_receiptdate < date '1995-01-01'
group by l_shipmode
order by l_shipmode
""")

Q13 = BenchmarkQuery("q13", """
select c_custkey, count(*) as c_count
from customer, orders
where c_custkey = o_custkey
  and o_comment not like '%special%requests%'
group by c_custkey
order by c_count desc, c_custkey
limit 20
""", adaptation="left outer join + distribution-of-counts becomes inner join top-k")

Q14 = BenchmarkQuery("q14", """
select 100.00 * sum(case when p_type like 'PROMO%'
                         then l_extendedprice * (1 - l_discount)
                         else 0 end)
       / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
from lineitem, part
where l_partkey = p_partkey
  and l_shipdate >= date '1995-09-01' and l_shipdate < date '1995-10-01'
""")

Q15 = BenchmarkQuery("q15", """
select s_suppkey, s_name, r.total_revenue
from supplier,
     (select l_suppkey as rsk,
             sum(l_extendedprice * (1 - l_discount)) as total_revenue
      from lineitem
      where l_shipdate >= date '1996-01-01' and l_shipdate < date '1996-04-01'
      group by l_suppkey) r
where s_suppkey = r.rsk
  and r.total_revenue =
      (select max(total_revenue) as m from
       (select l_suppkey as rsk2,
               sum(l_extendedprice * (1 - l_discount)) as total_revenue
        from lineitem
        where l_shipdate >= date '1996-01-01'
          and l_shipdate < date '1996-04-01'
        group by l_suppkey) r2)
order by s_suppkey
""", adaptation="the revenue view becomes a derived table; the max() "
                "subquery runs natively as an inlined scalar subquery")

Q16 = BenchmarkQuery("q16", """
select p_brand, p_type, p_size, count(*) as supplier_cnt
from partsupp, part
where p_partkey = ps_partkey
  and p_brand <> 'Brand#45'
  and p_type not like 'MEDIUM POLISHED%'
  and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
  and ps_suppkey not in (select s_suppkey from supplier
                         where s_comment like '%Customer%Complaints%')
group by p_brand, p_type, p_size
order by supplier_cnt desc, p_brand, p_type, p_size
limit 40
""", adaptation="count(distinct ps_suppkey) -> count(*)")

Q17 = BenchmarkQuery("q17", """
select sum(l_extendedprice) / 7.0 as avg_yearly
from lineitem, part,
     (select l_partkey as apk, 0.2 * avg(l_quantity) as small_qty
      from lineitem group by l_partkey) t
where p_partkey = l_partkey
  and p_brand = 'Brand#23' and p_container = 'MED BOX'
  and l_partkey = t.apk
  and l_quantity < t.small_qty
""", adaptation="the correlated avg(l_quantity) subquery is decorrelated "
                "into a grouped derived table (standard unnesting)")

Q18 = BenchmarkQuery("q18", """
select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) as total_qty
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderkey in (select l_orderkey from lineitem
                     group by l_orderkey
                     having sum(l_quantity) > 250)
group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
order by o_totalprice desc, o_orderdate
limit 100
""", adaptation="threshold 250 instead of 300 for the small scale factors")

Q19 = BenchmarkQuery("q19", """
select sum(l_extendedprice * (1 - l_discount)) as revenue
from lineitem, part
where p_partkey = l_partkey
  and ((p_brand = 'Brand#12'
        and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        and l_quantity >= 1 and l_quantity <= 11
        and p_size between 1 and 5
        and l_shipmode in ('AIR', 'REG AIR')
        and l_shipinstruct = 'DELIVER IN PERSON')
    or (p_brand = 'Brand#23'
        and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        and l_quantity >= 10 and l_quantity <= 20
        and p_size between 1 and 10
        and l_shipmode in ('AIR', 'REG AIR')
        and l_shipinstruct = 'DELIVER IN PERSON')
    or (p_brand = 'Brand#34'
        and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        and l_quantity >= 20 and l_quantity <= 30
        and p_size between 1 and 15
        and l_shipmode in ('AIR', 'REG AIR')
        and l_shipinstruct = 'DELIVER IN PERSON'))
""")

Q20 = BenchmarkQuery("q20", """
select s_name, s_address
from supplier, nation
where s_suppkey in (select ps_suppkey from partsupp, part
                    where ps_partkey = p_partkey
                      and p_name like 'forest%'
                      and ps_availqty > 100)
  and s_nationkey = n_nationkey and n_name = 'CANADA'
order by s_name
limit 20
""", adaptation="the nested partkey IN-subquery is flattened into a join "
                "inside the suppkey subquery; the correlated 0.5*sum(qty) "
                "availability bound becomes a constant threshold")

Q21 = BenchmarkQuery("q21", """
select s_name, count(*) as numwait
from supplier, lineitem l1, orders, nation
where s_suppkey = l1.l_suppkey and o_orderkey = l1.l_orderkey
  and o_orderstatus = 'F' and l1.l_receiptdate > l1.l_commitdate
  and exists (select l2.l_orderkey from lineitem l2
              where l2.l_orderkey = l1.l_orderkey
                and l2.l_suppkey <> l1.l_suppkey)
  and not exists (select l3.l_orderkey from lineitem l3
                  where l3.l_orderkey = l1.l_orderkey
                    and l3.l_suppkey <> l1.l_suppkey
                    and l3.l_receiptdate > l3.l_commitdate)
  and s_nationkey = n_nationkey and n_name = 'SAUDI ARABIA'
group by s_name
order by numwait desc, s_name
limit 100
""")

Q22 = BenchmarkQuery("q22", """
select c_nationkey, count(*) as numcust, sum(c_acctbal) as totacctbal
from customer
where (c_phone like '13-%' or c_phone like '31-%' or c_phone like '23-%'
       or c_phone like '29-%' or c_phone like '30-%' or c_phone like '18-%'
       or c_phone like '17-%')
  and c_acctbal > 0.00
  and not exists (select o_orderkey from orders where o_custkey = c_custkey)
group by c_nationkey
order by c_nationkey
""", adaptation="substring(c_phone,1,2) becomes prefix LIKEs; the avg "
                "acctbal subquery becomes the constant 0; grouped by "
                "nationkey instead of the country code")

ALL_QUERIES: dict[str, BenchmarkQuery] = {
    q.name: q
    for q in (
        Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10, Q11,
        Q12, Q13, Q14, Q15, Q16, Q17, Q18, Q19, Q20, Q21, Q22,
    )
}

# The paper's running example (Fig. 3a): join sales with chip products and
# average a division-heavy expression per sale id.
EXAMPLE_QUERY = BenchmarkQuery("example", """
select s.id, avg(s.price / s.vat_factor / s.prod_costs) as a
from sales s, products p
where s.id = p.id and p.category = 'Chip'
group by s.id
order by s.id
""")

# The domain-expert use case (Fig. 9a).
FIG9_QUERY = BenchmarkQuery("fig9", """
select l_orderkey, avg(l_extendedprice) as avg_price
from lineitem, orders
where o_orderdate < date '1995-04-01' and o_orderkey = l_orderkey
group by l_orderkey
order by l_orderkey
""")
