"""Deterministic TPC-H-like data generator (the dbgen substitute).

Generates all eight TPC-H tables at fractional scale factors with the value
distributions the adapted query suite depends on: date ranges and the
returnflag/linestatus rules, correlated ``extendedprice = quantity * part
price``, 150 composed part types for LIKE predicates, comment text seeded
with the phrases Q9/Q13-style predicates look for, and ``lineitem``
physically clustered by ``l_orderkey`` (which the paper's optimizer use case
relies on).

Absolute sizes are laptop-scale; the paper's relative results do not depend
on them (see DESIGN.md §1).
"""

from __future__ import annotations

import random

from repro.catalog import Catalog, Column, DataType, Schema
from repro.catalog.schema import encode_date

TPCH_TABLE_NAMES = (
    "region", "nation", "supplier", "customer",
    "part", "partsupp", "orders", "lineitem",
)

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_CONTAINERS = [
    f"{size} {kind}"
    for size in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_PART_COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
]
_COMMENT_WORDS = [
    "carefully", "quickly", "furiously", "slyly", "blithely", "ironic",
    "final", "pending", "regular", "express", "bold", "even", "silent",
    "unusual", "packages", "deposits", "accounts", "theodolites", "pinto",
    "beans", "foxes", "ideas", "requests", "instructions", "dependencies",
]

_DATE_LO = encode_date("1992-01-01")
_DATE_HI = encode_date("1998-08-02")
_CUTOFF = encode_date("1995-06-17")


def _comment(rng: random.Random, special: bool = False,
             phrase: str = "special requests") -> str:
    words = rng.sample(_COMMENT_WORDS, rng.randint(3, 6))
    if special:
        words.insert(rng.randrange(len(words) + 1), phrase)
    return " ".join(words)


def _schemas() -> dict[str, Schema]:
    c = Column
    t = DataType
    return {
        "region": Schema([
            c("r_regionkey", t.INT), c("r_name", t.STRING), c("r_comment", t.STRING),
        ]),
        "nation": Schema([
            c("n_nationkey", t.INT), c("n_name", t.STRING),
            c("n_regionkey", t.INT), c("n_comment", t.STRING),
        ]),
        "supplier": Schema([
            c("s_suppkey", t.INT), c("s_name", t.STRING), c("s_address", t.STRING),
            c("s_nationkey", t.INT), c("s_phone", t.STRING),
            c("s_acctbal", t.DECIMAL), c("s_comment", t.STRING),
        ]),
        "customer": Schema([
            c("c_custkey", t.INT), c("c_name", t.STRING), c("c_address", t.STRING),
            c("c_nationkey", t.INT), c("c_phone", t.STRING),
            c("c_acctbal", t.DECIMAL), c("c_mktsegment", t.STRING),
            c("c_comment", t.STRING),
        ]),
        "part": Schema([
            c("p_partkey", t.INT), c("p_name", t.STRING), c("p_mfgr", t.STRING),
            c("p_brand", t.STRING), c("p_type", t.STRING), c("p_size", t.INT),
            c("p_container", t.STRING), c("p_retailprice", t.DECIMAL),
            c("p_comment", t.STRING),
        ]),
        "partsupp": Schema([
            c("ps_partkey", t.INT), c("ps_suppkey", t.INT),
            c("ps_availqty", t.INT), c("ps_supplycost", t.DECIMAL),
            c("ps_comment", t.STRING),
        ]),
        "orders": Schema([
            c("o_orderkey", t.INT), c("o_custkey", t.INT),
            c("o_orderstatus", t.STRING), c("o_totalprice", t.DECIMAL),
            c("o_orderdate", t.DATE), c("o_orderpriority", t.STRING),
            c("o_clerk", t.STRING), c("o_shippriority", t.INT),
            c("o_comment", t.STRING),
        ]),
        "lineitem": Schema([
            c("l_orderkey", t.INT), c("l_partkey", t.INT), c("l_suppkey", t.INT),
            c("l_linenumber", t.INT), c("l_quantity", t.DECIMAL),
            c("l_extendedprice", t.DECIMAL), c("l_discount", t.DECIMAL),
            c("l_tax", t.DECIMAL), c("l_returnflag", t.STRING),
            c("l_linestatus", t.STRING), c("l_shipdate", t.DATE),
            c("l_commitdate", t.DATE), c("l_receiptdate", t.DATE),
            c("l_shipinstruct", t.STRING), c("l_shipmode", t.STRING),
            c("l_comment", t.STRING),
        ]),
    }


def generate_tpch(catalog: Catalog, scale: float = 0.001, seed: int = 42) -> None:
    """Populate ``catalog`` with all eight tables at scale factor ``scale``."""
    rng = random.Random(seed)
    schemas = _schemas()
    n_supplier = max(5, round(10_000 * scale))
    n_customer = max(10, round(150_000 * scale))
    n_part = max(10, round(200_000 * scale))
    n_orders = max(20, round(1_500_000 * scale))

    region = catalog.create_table("region", schemas["region"])
    for i, name in enumerate(_REGIONS):
        region.append((i, name, _comment(rng)))

    nation = catalog.create_table("nation", schemas["nation"])
    for i, (name, region_key) in enumerate(_NATIONS):
        nation.append((i, name, region_key, _comment(rng)))

    supplier = catalog.create_table("supplier", schemas["supplier"])
    for i in range(1, n_supplier + 1):
        supplier.append((
            i,
            f"Supplier#{i:09d}",
            f"addr-s{i}",
            rng.randrange(25),
            f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
            rng.uniform(-999.99, 9999.99),
            _comment(rng, special=(rng.random() < 0.1),
                     phrase="Customer Complaints"),
        ))

    customer = catalog.create_table("customer", schemas["customer"])
    for i in range(1, n_customer + 1):
        customer.append((
            i,
            f"Customer#{i:09d}",
            f"addr-c{i}",
            rng.randrange(25),
            f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
            rng.uniform(-999.99, 9999.99),
            rng.choice(_SEGMENTS),
            _comment(rng),
        ))

    part = catalog.create_table("part", schemas["part"])
    part_price: list[float] = [0.0] * (n_part + 1)
    for i in range(1, n_part + 1):
        price = (90000 + (i % 200001) * 100 % 20000 + 100 * (i % 1000)) / 100
        part_price[i] = price
        mfgr = rng.randint(1, 5)
        part.append((
            i,
            " ".join(rng.sample(_PART_COLORS, 3)),
            f"Manufacturer#{mfgr}",
            f"Brand#{mfgr}{rng.randint(1, 5)}",
            f"{rng.choice(_TYPE_SYLL1)} {rng.choice(_TYPE_SYLL2)} {rng.choice(_TYPE_SYLL3)}",
            rng.randint(1, 50),
            rng.choice(_CONTAINERS),
            price,
            _comment(rng),
        ))

    partsupp = catalog.create_table("partsupp", schemas["partsupp"])
    for i in range(1, n_part + 1):
        for j in range(4):
            suppkey = ((i + j * (n_supplier // 4 + 1)) % n_supplier) + 1
            partsupp.append((
                i,
                suppkey,
                rng.randint(1, 9999),
                rng.uniform(1.0, 1000.0),
                _comment(rng),
            ))

    orders = catalog.create_table("orders", schemas["orders"])
    lineitem = catalog.create_table("lineitem", schemas["lineitem"])
    date_span = _DATE_HI - 151 - _DATE_LO
    for okey in range(1, n_orders + 1):
        # order dates are correlated with order keys (orders are inserted
        # as time progresses); this clustering is what makes the paper's
        # optimizer-developer use case observable (Fig. 10/11): a date
        # filter on orders selects a contiguous orderkey range, so a probe
        # over orderkey-ordered lineitem flips from always-match to
        # never-match partway through the scan
        base_date = _DATE_LO + (okey - 1) * date_span // max(1, n_orders - 1)
        orderdate = min(
            _DATE_LO + date_span, max(_DATE_LO, base_date + rng.randint(-45, 45))
        )
        n_lines = rng.randint(1, 7)
        total = 0.0
        all_f = True
        any_f = False
        for line in range(1, n_lines + 1):
            partkey = rng.randint(1, n_part)
            suppkey = ((partkey + rng.randrange(4) * (n_supplier // 4 + 1)) % n_supplier) + 1
            quantity = rng.randint(1, 50)
            extendedprice = quantity * part_price[partkey]
            discount = rng.randint(0, 10) / 100
            tax = rng.randint(0, 8) / 100
            shipdate = orderdate + rng.randint(1, 121)
            commitdate = orderdate + rng.randint(30, 90)
            receiptdate = shipdate + rng.randint(1, 30)
            if receiptdate <= _CUTOFF:
                returnflag = rng.choice("RA")
            else:
                returnflag = "N"
            linestatus = "O" if shipdate > _CUTOFF else "F"
            if linestatus == "F":
                any_f = True
            else:
                all_f = False
            total += extendedprice * (1 + tax) * (1 - discount)
            lineitem.append((
                okey, partkey, suppkey, line,
                float(quantity), extendedprice, discount, tax,
                returnflag, linestatus,
                shipdate, commitdate, receiptdate,
                rng.choice(_SHIP_INSTRUCT), rng.choice(_SHIP_MODES),
                _comment(rng),
            ))
        status = "F" if all_f else ("O" if not any_f else "P")
        orders.append((
            okey,
            rng.randint(1, n_customer),
            status,
            total,
            orderdate,
            rng.choice(_PRIORITIES),
            f"Clerk#{rng.randint(1, max(2, n_orders // 100)):09d}",
            0,
            _comment(rng, special=(rng.random() < 0.02)),
        ))

    # declare the physical clustering keys for the storage engine: the
    # generators above already emit rows in this order, so the loader's
    # stable sort is the identity — lineitem keeps its l_orderkey
    # clustering (Fig. 10/11 depends on it), and because orderdate is
    # correlated with orderkey, date columns are *nearly* clustered too,
    # which is exactly what makes zone maps prune date-range scans
    region.sort_key = "r_regionkey"
    nation.sort_key = "n_nationkey"
    supplier.sort_key = "s_suppkey"
    customer.sort_key = "c_custkey"
    part.sort_key = "p_partkey"
    partsupp.sort_key = "ps_partkey"
    orders.sort_key = "o_orderkey"
    lineitem.sort_key = "l_orderkey"
    # fleet partition keys: the two fact tables split across service
    # shards on their clustering key (range partitioning can then reuse
    # the storage spine's per-shard key bounds); dimensions replicate
    orders.partition_key = "o_orderkey"
    lineitem.partition_key = "l_orderkey"
