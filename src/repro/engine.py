"""The database engine façade: Umbra-in-miniature plus Tailored Profiling.

``Database`` owns the catalog, the simulated memory holding all column
data, and the compilation stack.  ``execute`` compiles SQL through all
lowering steps and runs it on the simulated machine; ``profile`` does the
same with the PMU armed and returns a :class:`~repro.profiling.profile.Profile`
whose reports are the paper's deliverables.
"""

from __future__ import annotations

import dataclasses
import datetime
import enum
import warnings
from dataclasses import dataclass, field

from repro.backend import BackendOptions, compile_module
from repro.backend.feedback import BackendFeedback
from repro.catalog import Catalog, Schema
from repro.catalog.schema import DataType, decode_date
from repro.codegen import (
    build_runtime_module,
    build_syslib_module,
    generate_query_ir,
)
from repro.data import generate_example, generate_tpch
from repro.errors import ReproError
from repro.pipeline import decompose
from repro.pipeline.tasks import Pipeline
from repro.plan.cardinality import CardinalityModel
from repro.plancache import PlanCache
from repro.plan.interpret import Interpreter
from repro.plan.physical import (
    PhysicalOutput,
    PlannerOptions,
    explain_physical,
    plan_physical,
)
from repro.profiling.postprocess import SampleProcessor
from repro.profiling.profile import Profile
from repro.profiling.tagging import TaggingDictionary
from repro.sql import parse
from repro.sql.ast import _rewrite_ast_children
from repro.sql.binder import Binder
from repro.storage import StorageConfig, StorageEngine
from repro.vm import CodeRegion, Machine, Memory, Program
from repro.vm.kernel import Kernel, install_kernel_stubs
from repro.vm import costs
from repro.vm.pmu import Event, PmuConfig

_YEAR_TABLE_LO = datetime.date(1970, 1, 1).toordinal()
_YEAR_TABLE_HI = datetime.date(2100, 1, 1).toordinal()


class ProfilingMode(enum.Enum):
    """How shared source locations are disambiguated (§4.2.5)."""

    REGISTER_TAGGING = "register-tagging"
    CALLSTACK = "callstack"
    NONE = "none"  # plain sampling: IP + timestamp only


@dataclass(frozen=True)
class ProfilerConfig:
    """Engine-level profiling configuration.

    ``crosscheck`` records registers *and* call stacks in every sample so
    the two disambiguation mechanisms can be compared sample-by-sample —
    the paper's §6.3 accuracy validation.
    """

    mode: ProfilingMode = ProfilingMode.REGISTER_TAGGING
    event: Event = Event.CYCLES
    period: int = costs.DEFAULT_PERIOD_CYCLES
    record_memaddr: bool = False
    crosscheck: bool = False
    # plant per-task tuple counters in the generated code (PGO feedback);
    # off by default so plain profiling runs are unperturbed
    count_tuples: bool = False

    def pmu_config(self) -> PmuConfig:
        register = self.mode is ProfilingMode.REGISTER_TAGGING or self.crosscheck
        callstack = self.mode is ProfilingMode.CALLSTACK or self.crosscheck
        return PmuConfig(
            event=self.event,
            period=self.period,
            record_registers=register,
            record_callstack=callstack,
            record_memaddr=self.record_memaddr,
        )


@dataclass
class QueryResult:
    """Decoded rows plus execution statistics.

    ``tier`` is the *effective* execution tier the run reached: 0 the
    pure interpreter (fast VM off or auto-disabled), 1 the template-
    translated fast VM, 2 a profile-specialized tier-2 trace ran for at
    least one worker.  Benchmarks check it so an auto-disable can never
    silently measure the wrong engine."""

    columns: list[str]
    rows: list[tuple]
    cycles: int
    instructions: int
    tier: int = 1
    # retired memory operations, summed over workers: loads * 8 is the
    # "simulated bytes touched" metric storage benchmarks compare
    loads: int = 0
    stores: int = 0

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


@dataclass
class CompiledQuery:
    """A fully-lowered query, ready to run — and to *re*-run: these are the
    entries of the fingerprint-keyed plan cache, so repeated queries skip
    every lowering step."""

    sql: str
    bound: object
    physical: PhysicalOutput
    pipelines: list
    query_ir: object
    program: object
    kernel: Kernel
    tagging: TaggingDictionary
    query: dict
    runtime: dict
    syslib: dict
    estimates: dict[int, float] = field(default_factory=dict)
    plan_signature: str = ""
    feedback_applied: bool = False


class _QueryEnvironment:
    """Per-query :class:`DataEnvironment`: DB segments + query-local state."""

    def __init__(self, database: "Database", kernel: Kernel):
        self._db = database
        self._kernel = kernel
        self._bitmaps: dict[frozenset, tuple[int, int]] = {}

    def column_address(self, table_name: str, column_name: str) -> int:
        return self._db._column_addresses[(table_name, column_name)]

    def row_count(self, table_name: str) -> int:
        return self._db.catalog.table(table_name).row_count

    def table_storage(self, table_name: str):
        if self._db.storage is None:
            return None
        return self._db.storage.table(table_name)

    def bitmap(self, values: frozenset) -> tuple[int, int]:
        cached = self._bitmaps.get(values)
        if cached is not None:
            return cached
        limit = max(values) + 1
        words = (limit + 63) // 64
        addr = self._db.memory.alloc(words * 8, "bitmap")
        base = addr // 8
        for value in values:
            self._db.memory.words[base + (value >> 6)] |= 1 << (value & 63)
        self._bitmaps[values] = (addr, limit)
        return addr, limit

    def year_table(self) -> tuple[int, int]:
        return self._db._year_table_addr, _YEAR_TABLE_LO

    def register_sort(self, descriptor) -> int:
        return self._kernel.register_sort(descriptor)


class Database:
    """A single-node, in-memory, compiling relational database."""

    def __init__(
        self,
        memory_bytes: int = 1 << 22,
        storage: StorageConfig | None = None,
    ):
        self.catalog = Catalog()
        self.memory = Memory(memory_bytes)
        self.storage_config = storage or StorageConfig()
        self.storage: StorageEngine | None = None
        self._column_addresses: dict[tuple[str, str], int] = {}
        self._year_table_addr = 0
        self._ready = False
        # the profile-guided-optimization feedback store (see enable_pgo)
        # and the engine-level LRU plan cache shared by plain execute, the
        # PGO path, and every serve session (repro.plancache)
        self.pgo_store = None
        self.plan_cache = PlanCache()
        # the tier-2 promotion controller (see enable_tiering)
        self.tiering = None

    def enable_tiering(self, hot_instructions: int | None = None,
                       guard_hook: bool = False):
        """Turn on tiered adaptive execution for this database.

        Repeated executions of the same (cached) plan accumulate a
        hotness profile; hot programs are recompiled as tier-2
        specialized traces (see :mod:`repro.vm.tiering` and
        docs/TIERING.md).  Returns the controller."""
        from repro.vm.tiering import TieringController

        if self.tiering is None:
            self.tiering = TieringController(
                hot_instructions=hot_instructions, guard_hook=guard_hook
            )
        return self.tiering

    @property
    def plan_cache_hits(self) -> int:
        return self.plan_cache.hits

    @property
    def plan_cache_misses(self) -> int:
        return self.plan_cache.misses

    # -- construction -------------------------------------------------------

    @classmethod
    def tpch(
        cls,
        scale: float = 0.001,
        seed: int = 42,
        storage: StorageConfig | None = None,
    ) -> "Database":
        db = cls(memory_bytes=1 << 24, storage=storage)
        generate_tpch(db.catalog, scale=scale, seed=seed)
        db.finalize()
        return db

    @classmethod
    def example(
        cls,
        n_sales: int = 5000,
        n_products: int = 200,
        storage: StorageConfig | None = None,
    ) -> "Database":
        db = cls(storage=storage)
        generate_example(db.catalog, n_sales=n_sales, n_products=n_products)
        db.finalize()
        return db

    def create_table(self, name: str, schema: Schema):
        return self.catalog.create_table(name, schema)

    def finalize(self) -> None:
        """Freeze the dictionary, encode tables, build the physical layout.

        The storage engine owns the layout of every table: sharded,
        segment-encoded columns behind per-column directories (see
        repro.storage).  Columns whose encoding stayed plain remain one
        contiguous array, so their flat address survives for codegen's
        single-loop fast path and for the memory-profile report."""
        self.catalog.finalize()
        self.storage = StorageEngine.build(
            self.catalog, self.memory, self.storage_config
        )
        for table_name, table_storage in self.storage.tables.items():
            for column in table_storage.columns:
                if column.plain_addr is not None:
                    self._column_addresses[(table_name, column.name)] = (
                        column.plain_addr
                    )
        self._build_year_table()
        self._ready = True

    def _build_year_table(self) -> None:
        entries = _YEAR_TABLE_HI - _YEAR_TABLE_LO
        addr = self.memory.alloc(entries * 8, "year_table")
        base = addr // 8
        year = 1970
        next_boundary = datetime.date(year + 1, 1, 1).toordinal()
        for i in range(entries):
            ordinal = _YEAR_TABLE_LO + i
            if ordinal >= next_boundary:
                year += 1
                next_boundary = datetime.date(year + 1, 1, 1).toordinal()
            self.memory.words[base + i] = year
        self._year_table_addr = addr

    # -- planning helpers ------------------------------------------------------

    def _plan(
        self,
        sql: str,
        join_order_hint: list[str] | None = None,
        planner_options: PlannerOptions | None = None,
        model=None,
    ):
        if not self._ready:
            raise ReproError("database not finalized; call finalize() first")
        stmt = parse(sql)
        self._inline_scalar_subqueries(stmt)
        bound = Binder(self.catalog).bind(stmt, join_order_hint, model=model)
        physical = plan_physical(bound.plan, bound.model, planner_options)
        return bound, physical

    def _inline_scalar_subqueries(self, stmt, depth: int = 0) -> None:
        """Evaluate uncorrelated scalar subqueries and inline their values.

        The classic strategy for uncorrelated scalar subqueries: run them
        first (through the full compiled pipeline), then substitute the
        single value as a literal.  Nested scalar subqueries recurse.
        """
        from repro.sql import ast as sql_ast

        if depth > 8:
            raise ReproError("scalar subqueries nested too deeply")

        def rewrite(node):
            if isinstance(node, sql_ast.ScalarSubquery):
                return sql_ast_literal(self._evaluate_scalar(node.subquery, depth))
            if isinstance(node, (sql_ast.Exists, sql_ast.InSubquery)):
                self._inline_scalar_subqueries(node.subquery, depth + 1)
                return node
            return _rewrite_ast_children(node, rewrite)

        def sql_ast_literal(value):
            if isinstance(value, bool):
                return sql_ast.NumberLit(int(value))
            if isinstance(value, (int, float)):
                return sql_ast.NumberLit(value)
            if isinstance(value, str):
                # dates decode to ISO text; tell them apart from strings
                import re

                if re.fullmatch(r"\d{4}-\d{2}-\d{2}", value):
                    return sql_ast.DateLit(value)
                return sql_ast.StringLit(value)
            raise ReproError(f"cannot inline scalar value {value!r}")

        for ref in stmt.tables:
            if ref.subquery is not None:
                self._inline_scalar_subqueries(ref.subquery, depth + 1)
        for item in stmt.items:
            object.__setattr__(item, "expr", rewrite(item.expr))
        if stmt.where is not None:
            stmt.where = rewrite(stmt.where)
        stmt.group_by = [rewrite(node) for node in stmt.group_by]
        if stmt.having is not None:
            stmt.having = rewrite(stmt.having)
        for order in stmt.order_by:
            object.__setattr__(order, "expr", rewrite(order.expr))

    def _evaluate_scalar(self, substmt, depth: int):
        from repro.sql.binder import Binder

        self._inline_scalar_subqueries(substmt, depth + 1)
        bound = Binder(self.catalog).bind(substmt)
        physical = plan_physical(bound.plan, bound.model)
        _, _, rows, _ = self._compile_and_run(
            "", None, prebuilt=(bound, physical)
        )
        if len(rows) != 1 or len(rows[0]) != 1:
            raise ReproError(
                "a scalar subquery must return exactly one value "
                f"(got {len(rows)} rows)"
            )
        return rows[0][0]

    def _physical_estimates(
        self, bound, physical: PhysicalOutput
    ) -> dict[int, float]:
        logical_by_id = {node.op_id: node for node in bound.plan.walk()}
        estimates: dict[int, float] = {}
        for op in physical.walk():
            logical = logical_by_id.get(op.logical_id)
            if logical is not None:
                estimates[op.op_id] = bound.model.estimate(logical)
        return estimates

    # -- compilation + execution ------------------------------------------------

    def _compile(
        self,
        sql: str,
        profiler: ProfilerConfig | None,
        join_order_hint: list[str] | None = None,
        planner_options: PlannerOptions | None = None,
        optimize_backend: bool = True,
        prebuilt=None,
        model=None,
        feedback=None,
        count_tuples: bool = False,
        inject_fault: str | None = None,
        qualify_tags: bool = False,
    ) -> CompiledQuery:
        """Lower a query through every step, down to placed native code.

        ``model`` overrides the cardinality model; ``feedback`` is a
        :class:`~repro.pgo.feedback.QueryFeedback` whose observed
        cardinalities build such a model automatically and whose branch /
        hotness statistics reach the backend when the planned shape matches
        the profiled one.  ``inject_fault`` deliberately miscompiles the
        query region (fuzzer ground truth; see repro.fuzz).  Compile-time
        memory (bitmaps) is *not* released here — cached plans keep it for
        their lifetime.
        """
        from repro.pgo.fingerprint import plan_signature

        cardinality_feedback = False
        if prebuilt is not None:
            # a frontend other than SQL (e.g. the streaming DSL) built the
            # plan itself: (model, physical root)
            bound, physical = prebuilt
        else:
            if model is None and feedback is not None and feedback.cardinalities:
                from repro.pgo.model import FeedbackCardinalityModel

                model = FeedbackCardinalityModel(
                    feedback.cardinality_overrides()
                )
                cardinality_feedback = True
            bound, physical = self._plan(
                sql, join_order_hint, planner_options, model
            )

        tagging = TaggingDictionary()
        if self.storage is not None:
            # the storage dimension: sampled memory addresses resolve to
            # (table, column, shard, segment, encoding)
            tagging.storage_resolver = self.storage.resolve
        pipelines = decompose(physical, on_task=tagging.register_task)

        program = Program()
        kernel = Kernel(self.memory, install_kernel_stubs(program))
        env = _QueryEnvironment(self, kernel)

        estimates = self._physical_estimates(bound, physical)
        if cardinality_feedback:
            # observed cardinalities steer join *ordering*, but hash tables
            # are never sized below the model's a-priori guess: shrinking
            # the directory makes probe-heavy joins scan fuller buckets,
            # while growing it (under-estimate corrected upward) is the
            # direction that actually pays off
            base_model = CardinalityModel()
            logical_by_id = {n.op_id: n for n in bound.plan.walk()}
            for op in physical.walk():
                logical = logical_by_id.get(op.logical_id)
                if logical is not None:
                    estimates[op.op_id] = max(
                        estimates[op.op_id], base_model.estimate(logical)
                    )
        query_ir = generate_query_ir(
            physical, pipelines, env, tagging, estimates,
            count_tuples=count_tuples,
        )

        reserve = (
            profiler is not None
            and profiler.mode is ProfilingMode.REGISTER_TAGGING
        )
        options = BackendOptions(
            reserve_tag_register=reserve, optimize=optimize_backend,
            qualify_tags=qualify_tags and reserve,
        )

        # backend feedback keys are post-optimization IR positions of the
        # profiled plan: only valid when this compile optimizes and plans
        # the same shape
        signature = plan_signature(physical)
        backend_feedback = None
        if (
            feedback is not None
            and optimize_backend
            and feedback.matches_plan(signature)
        ):
            probabilities = feedback.branch_probabilities()
            if probabilities or feedback.hotness:
                backend_feedback = BackendFeedback(
                    branch_probability=probabilities,
                    hotness=dict(feedback.hotness),
                )
        query_options = options
        if backend_feedback is not None:
            query_options = dataclasses.replace(
                query_options, feedback=backend_feedback
            )
        if inject_fault is not None:
            # only the query region is damaged; the runtime and syslib
            # below still compile with the clean options
            query_options = dataclasses.replace(
                query_options, inject_fault=inject_fault
            )

        syslib = compile_module(
            build_syslib_module(), program, CodeRegion.SYSLIB, options
        )
        runtime_module = build_runtime_module()
        for fn in runtime_module.functions:
            for instr in fn.all_instructions():
                tagging.link_runtime_instruction(instr.id, fn.name)
        runtime = compile_module(
            runtime_module, program, CodeRegion.RUNTIME, options
        )
        query = compile_module(
            query_ir.module, program, CodeRegion.QUERY, query_options
        )
        for compiled in (*runtime.values(), *query.values()):
            tagging.apply_optimizations(compiled.opt_result)

        return CompiledQuery(
            sql=sql,
            bound=bound,
            physical=physical,
            pipelines=pipelines,
            query_ir=query_ir,
            program=program,
            kernel=kernel,
            tagging=tagging,
            query=query,
            runtime=runtime,
            syslib=syslib,
            estimates=estimates,
            plan_signature=signature,
            feedback_applied=cardinality_feedback
            or backend_feedback is not None,
        )

    def compiled_for(
        self,
        sql: str,
        *,
        profiler: ProfilerConfig | None = None,
        join_order_hint: list[str] | None = None,
        planner_options: PlannerOptions | None = None,
        optimize_backend: bool = True,
        count_tuples: bool = False,
        qualify_tags: bool = False,
        feedback=None,
        feedback_version: int = 0,
        flavor: str = "plain",
    ) -> CompiledQuery:
        """A compiled plan for ``sql``, via the shared LRU plan cache.

        The key covers everything that changes the generated code: the
        normalized SQL fingerprint, planner knobs, and the compile flavor
        (tag-register reservation, query-qualified tags, tuple counters).
        Compilation happens *outside* any memory mark — a cached plan's
        compile-time allocations (bitmaps) must outlive this call."""
        from repro.pgo.fingerprint import fingerprint

        reserve = (
            profiler is not None
            and profiler.mode is ProfilingMode.REGISTER_TAGGING
        )
        key = (
            fingerprint(sql),
            flavor,
            tuple(join_order_hint) if join_order_hint else None,
            planner_options,
            optimize_backend,
            reserve,
            qualify_tags,
            count_tuples,
        )
        compiled = self.plan_cache.get(key, feedback_version)
        if compiled is None:
            compiled = self._compile(
                sql, profiler, join_order_hint, planner_options,
                optimize_backend=optimize_backend, feedback=feedback,
                count_tuples=count_tuples, qualify_tags=qualify_tags,
            )
            self.plan_cache.put(key, compiled, feedback_version)
        return compiled

    def _run_compiled(
        self,
        compiled: CompiledQuery,
        profiler: ProfilerConfig | None = None,
        workers: int = 1,
        morsel_size: int = 1024,
        repeats: int = 1,
        instruction_limit: int | None = None,
        fast_vm: bool = True,
        tiering=None,
    ):
        """Run a compiled query; returns ``(machines, rows, task_counts)``.

        All run-time memory (worker stacks, query state, kernel
        allocations) is released afterwards, so a cached plan can run any
        number of times without growing the bump allocator.  ``tiering``
        is an optional :class:`~repro.vm.tiering.TieringController`: the
        machines start at the tier it has already decided for this
        program, and the run's retired instructions feed back into its
        hotness profile afterwards."""
        if workers < 1:
            raise ReproError("workers must be >= 1")
        if repeats < 1:
            raise ReproError("repeats must be >= 1")
        if morsel_size < 1:
            raise ReproError("morsel_size must be >= 1")
        query_ir = compiled.query_ir
        mark = self.memory.mark()
        try:
            pmu = profiler.pmu_config() if profiler is not None else None
            machines = [
                Machine(
                    compiled.program, self.memory, pmu_config=pmu,
                    kernel=compiled.kernel, fast_vm=fast_vm,
                    tiering=tiering,
                )
                for _ in range(workers)
            ]
            if instruction_limit is not None:
                for machine in machines:
                    machine.state.max_instructions = instruction_limit
            state_addr = self.memory.alloc(
                query_ir.state.size_bytes, "query_state"
            )

            output: list[tuple] = []
            for _iteration in range(repeats):
                # iterative dataflow (§4.2.6): the same compiled pipelines
                # run again; per-iteration state is rebuilt by query_setup
                self._zero_state(state_addr, query_ir.state.size_bytes)
                output = self._run_pipelines(
                    machines, compiled.query, query_ir, compiled.pipelines,
                    state_addr, morsel_size,
                )
            # read the PGO tuple counters before the state is released
            task_counts = {
                task_id: self.memory.read(state_addr + offset)
                for task_id, offset in query_ir.meta.task_counter_of.items()
            }
            # rows the spine index excluded at compile time never entered
            # a morsel: add them back so observed cardinalities are
            # independent of the physical layout
            for slot in query_ir.meta.zone_slots.values():
                if not slot.static_excluded:
                    continue
                for task_id in slot.compensate_task_ids:
                    if task_id in task_counts:
                        task_counts[task_id] += slot.static_excluded
            # likewise the zone-map counters: observed pruning flows back
            # into the storage engine's statistics (loader feedback)
            if self.storage is not None:
                for slot in query_ir.meta.zone_slots.values():
                    considered = self.memory.read(
                        state_addr + slot.considered_offset
                    )
                    for column_index, offset in slot.skip_offsets:
                        self.storage.note_pruning(
                            slot.table_name, column_index, considered,
                            self.memory.read(state_addr + offset),
                        )
            rows = [
                self._decode_row(raw, compiled.physical.columns)
                for raw in output
            ]
            if tiering is not None:
                for machine in machines:
                    # snapshot the tier this run actually executed at
                    # before observation possibly promotes the machine
                    machine.ran_tier = machine.tier
                    tiering.observe(machine, machine.state.instructions)
            return machines, rows, task_counts
        finally:
            self.memory.release(mark)

    def _compile_and_run(
        self,
        sql: str,
        profiler: ProfilerConfig | None,
        join_order_hint: list[str] | None = None,
        planner_options: PlannerOptions | None = None,
        workers: int = 1,
        morsel_size: int = 1024,
        optimize_backend: bool = True,
        repeats: int = 1,
        prebuilt=None,
        model=None,
        feedback=None,
        count_tuples: bool = False,
        inject_fault: str | None = None,
        instruction_limit: int | None = None,
        fast_vm: bool = True,
        tiering=None,
    ):
        """One-shot compile + run + full memory release (the non-cached
        path); returns ``(compiled, machines, rows, task_counts)``."""
        mark = self.memory.mark()
        try:
            compiled = self._compile(
                sql, profiler, join_order_hint, planner_options,
                optimize_backend=optimize_backend, prebuilt=prebuilt,
                model=model, feedback=feedback, count_tuples=count_tuples,
                inject_fault=inject_fault,
            )
            machines, rows, task_counts = self._run_compiled(
                compiled, profiler, workers, morsel_size, repeats,
                instruction_limit=instruction_limit, fast_vm=fast_vm,
                tiering=tiering,
            )
            return compiled, machines, rows, task_counts
        finally:
            self.memory.release(mark)

    def _run_pipelines(
        self, machines, query, query_ir, pipelines, state_addr, morsel_size
    ) -> list[tuple]:
        """Morsel-driven execution (§5: Umbra's multicore execution model).

        Each pipeline's tuple domain is split into morsels; every morsel is
        dispatched to the worker with the smallest simulated clock (greedy
        least-loaded scheduling).  Pipelines end with a barrier: all worker
        clocks advance to the pipeline's maximum, as real workers would wait.
        Workers execute serially in the host process, so shared hash tables
        need no synchronization; contention is not modeled (see DESIGN.md).
        """
        from repro.codegen.runtime import BUF_COUNT

        machines[0].call(query["query_setup"].info.start, (state_addr,))
        self._barrier(machines)

        collected: list[tuple] = []
        for pipeline in pipelines:
            prepare_name = f"pipeline_{pipeline.index}_prepare"
            if prepare_name in query:
                machines[0].call(query[prepare_name].info.start, (state_addr,))
                self._barrier(machines)

            entry = query[f"pipeline_{pipeline.index}"].info.start
            domain = query_ir.meta.pipeline_domains.get(pipeline.index)
            total = self._domain_total(domain, state_addr)

            if len(machines) == 1:
                machine = machines[0]
                before = len(machine.output)
                machine.call(entry, (state_addr, 0, total))
                collected.extend(machine.output[before:])
                continue

            morsel_outputs: list[tuple[int, list[tuple]]] = []
            for morsel_index, lo, hi in Pipeline.morsels(total, morsel_size):
                machine = min(machines, key=lambda m: m.state.cycles)
                before = len(machine.output)
                machine.call(entry, (state_addr, lo, hi))
                morsel_outputs.append(
                    (morsel_index, machine.output[before:])
                )
            self._barrier(machines)
            for _, rows in sorted(morsel_outputs, key=lambda mo: mo[0]):
                collected.extend(rows)
        return collected

    def _zero_state(self, state_addr: int, size_bytes: int) -> None:
        first = state_addr // 8
        for i in range(first, first + size_bytes // 8):
            self.memory.words[i] = 0

    @staticmethod
    def _barrier(machines) -> None:
        """Workers wait for the slowest: align all clocks to the maximum."""
        latest = max(m.state.cycles for m in machines)
        for machine in machines:
            machine.state.cycles = latest

    def _domain_total(self, domain, state_addr: int) -> int:
        from repro.codegen.runtime import BUF_COUNT

        if domain is None:
            raise ReproError("pipeline without a morsel domain")
        kind = domain[0]
        if kind in ("rows", "slots"):
            return domain[1]
        if kind == "buffer":
            _, state_offset, limit = domain
            count = self.memory.read(state_addr + state_offset + BUF_COUNT)
            return count if limit is None else min(count, limit)
        raise ReproError(f"unknown pipeline domain {domain!r}")

    def _decode_row(self, raw: tuple, columns) -> tuple:
        out = []
        for value, (_, iu) in zip(raw, columns):
            out.append(self._decode_value(value, iu.dtype))
        return tuple(out)

    def _decode_value(self, value, dtype: DataType):
        if dtype is DataType.DECIMAL:
            return value / 100
        if dtype is DataType.DATE:
            return decode_date(value)
        if dtype is DataType.STRING:
            return self.catalog.dictionary.value_of(value)
        if dtype is DataType.BOOL:
            return bool(value)
        return value

    # -- public API ----------------------------------------------------------

    def _result(self, physical, machines, rows) -> QueryResult:
        return QueryResult(
            columns=[name for name, _ in physical.columns],
            rows=rows,
            cycles=max(m.state.cycles for m in machines),
            instructions=sum(m.state.instructions for m in machines),
            tier=max(getattr(m, "ran_tier", m.tier) for m in machines),
            loads=sum(m.state.loads for m in machines),
            stores=sum(m.state.stores for m in machines),
        )

    def execute(
        self,
        sql: str,
        join_order_hint: list[str] | None = None,
        planner_options: PlannerOptions | None = None,
        workers: int = 1,
        optimize_backend: bool = True,
        pgo: bool = False,
        morsel_size: int = 1024,
        inject_fault: str | None = None,
        instruction_limit: int | None = None,
        fast_vm: bool = True,
        tiering=None,
    ) -> QueryResult:
        """Compile and run a query; returns decoded rows.

        ``workers > 1`` runs the pipelines morsel-parallel on simulated
        cores; ``cycles`` is then the slowest worker's clock (wall time),
        and ``morsel_size`` sets the per-dispatch tuple count (small sizes
        exercise the scheduler; the differential fuzzer sweeps this).
        ``optimize_backend=False`` disables constant folding/CSE/DCE (for
        ablation studies).  ``pgo=True`` consults the feedback store set up
        by :meth:`enable_pgo`: recorded profiles steer join ordering, block
        layout and spilling, and compiled plans are cached by query
        fingerprint until fresher feedback arrives.  ``inject_fault``
        deliberately miscompiles the query (fuzzer ground truth) and
        ``instruction_limit`` bounds each worker's instruction count —
        both are testing knobs, never set in normal operation.
        ``fast_vm=False`` forces the block interpreter; faults are always
        executed interpreted so the injected miscompile is observed
        instruction-by-instruction.  ``tiering`` overrides the database's
        promotion controller for this call (``None`` uses
        ``self.tiering``, i.e. whatever :meth:`enable_tiering` set up)."""
        if tiering is None:
            tiering = self.tiering
        if pgo:
            if inject_fault is not None:
                raise ReproError("inject_fault is not supported with pgo=True")
            return self._execute_pgo(
                sql, join_order_hint, planner_options, workers,
                optimize_backend, morsel_size=morsel_size, fast_vm=fast_vm,
            )
        if inject_fault is not None:
            # deliberately damaged compiles never enter the plan cache
            if fast_vm:
                warnings.warn(
                    "inject_fault forces the tier-0 interpreter; "
                    "fast_vm=True is ignored for this query",
                    RuntimeWarning,
                    stacklevel=2,
                )
            fast_vm = False
            compiled, machines, rows, _ = self._compile_and_run(
                sql, None, join_order_hint, planner_options, workers=workers,
                morsel_size=morsel_size, optimize_backend=optimize_backend,
                inject_fault=inject_fault, instruction_limit=instruction_limit,
                fast_vm=fast_vm,
            )
            return self._result(compiled.physical, machines, rows)
        compiled = self.compiled_for(
            sql, join_order_hint=join_order_hint,
            planner_options=planner_options,
            optimize_backend=optimize_backend,
        )
        machines, rows, _ = self._run_compiled(
            compiled, None, workers=workers, morsel_size=morsel_size,
            instruction_limit=instruction_limit, fast_vm=fast_vm,
            tiering=tiering,
        )
        if tiering is not None and tiering.tier_for(compiled.program) >= 2:
            self.plan_cache.supersede_compiled(compiled, tier=2)
        return self._result(compiled.physical, machines, rows)

    # -- profile-guided optimization (repro.pgo) -----------------------------

    def enable_pgo(self, store=None):
        """Turn on the PGO feedback loop.

        ``store`` may be a :class:`~repro.pgo.store.ProfileStore`, a
        directory path for a persistent store, or ``None`` for an
        in-memory one.  Returns the store."""
        from repro.pgo.store import ProfileStore

        if store is None:
            store = ProfileStore()
        elif not isinstance(store, ProfileStore):
            store = ProfileStore(directory=store)
        self.pgo_store = store
        self.plan_cache.clear()
        return store

    def _require_pgo(self):
        if self.pgo_store is None:
            raise ReproError(
                "profile-guided optimization is not enabled; "
                "call enable_pgo() first"
            )
        return self.pgo_store

    def _execute_pgo(
        self, sql, join_order_hint, planner_options, workers,
        optimize_backend, morsel_size: int = 1024, fast_vm: bool = True,
    ) -> QueryResult:
        store = self._require_pgo()
        # the "pgo" flavor keys separately from plain compiles: a stale
        # feedback version must recompile without ping-ponging against the
        # feedback-free plain entry for the same fingerprint
        compiled = self.compiled_for(
            sql, join_order_hint=join_order_hint,
            planner_options=planner_options,
            optimize_backend=optimize_backend,
            feedback=store.feedback(sql),
            feedback_version=store.version(sql),
            flavor="pgo",
        )
        machines, rows, _ = self._run_compiled(
            compiled, None, workers=workers, morsel_size=morsel_size,
            fast_vm=fast_vm,
        )
        return self._result(compiled.physical, machines, rows)

    def _build_profile(
        self, config, compiled: CompiledQuery, machines, rows, task_counts
    ) -> Profile:
        processor = SampleProcessor(compiled.program, compiled.tagging)
        attributions = []
        for worker_index, machine in enumerate(machines):
            for sample in machine.samples.samples:
                attribution = processor.attribute(sample)
                if worker_index:
                    attribution = dataclasses.replace(
                        attribution, worker=worker_index
                    )
                attributions.append(attribution)
        attributions.sort(key=lambda a: a.sample.tsc)
        return Profile(
            database=self,
            config=config,
            physical=compiled.physical,
            pipelines=compiled.pipelines,
            ir_module=compiled.query_ir.module,
            program=compiled.program,
            machine=machines[0],
            machines=machines,
            tagging=compiled.tagging,
            processor=processor,
            attributions=attributions,
            result=self._result(compiled.physical, machines, rows),
            sql=compiled.sql,
            task_counts=task_counts,
            estimates=compiled.estimates,
        )

    def profile(
        self,
        sql: str,
        config: ProfilerConfig | None = None,
        join_order_hint: list[str] | None = None,
        planner_options: PlannerOptions | None = None,
        workers: int = 1,
        repeats: int = 1,
        pgo: bool = False,
        fast_vm: bool = True,
        tiering=None,
    ) -> Profile:
        """Run a query with the PMU armed; returns a Profile for reports.

        With ``workers > 1`` every simulated core has its own PMU and
        sample buffer; attributions carry the worker index and the merged
        sample stream feeds all reports.  ``repeats`` re-runs the compiled
        pipelines in the same session — the iterative-dataflow case whose
        iterations post-processing separates by timestamp (§4.2.6).

        ``pgo=True`` closes the feedback loop: tuple counters are planted
        in the generated code, existing feedback steers this compile, and
        the run's own samples are recorded back into the store."""
        config = config or ProfilerConfig()
        feedback = None
        if pgo:
            store = self._require_pgo()
            feedback = store.feedback(sql)
            if not config.count_tuples:
                config = dataclasses.replace(config, count_tuples=True)
        compiled, machines, rows, task_counts = self._compile_and_run(
            sql, config, join_order_hint, planner_options, workers=workers,
            repeats=repeats, feedback=feedback,
            count_tuples=config.count_tuples, fast_vm=fast_vm,
            tiering=tiering if tiering is not None else self.tiering,
        )
        profile = self._build_profile(
            config, compiled, machines, rows, task_counts
        )
        if pgo:
            self.pgo_store.record(profile)
        return profile

    # -- prebuilt-plan entry points (for non-SQL frontends) -----------------

    def execute_plan(
        self, bound, physical, workers: int = 1, fast_vm: bool = True
    ) -> QueryResult:
        """Run a plan built by a non-SQL frontend (e.g. the streaming DSL).

        ``bound`` must expose ``.plan`` (the logical root) and ``.model``
        (a CardinalityModel); ``physical`` is the physical root."""
        _, machines, rows, _ = self._compile_and_run(
            "", None, prebuilt=(bound, physical), workers=workers,
            fast_vm=fast_vm,
        )
        return self._result(physical, machines, rows)

    def profile_plan(
        self,
        bound,
        physical,
        config: ProfilerConfig | None = None,
        workers: int = 1,
        repeats: int = 1,
        fast_vm: bool = True,
    ) -> Profile:
        """Profile a plan built by a non-SQL frontend."""
        config = config or ProfilerConfig()
        compiled, machines, rows, task_counts = self._compile_and_run(
            "", config, prebuilt=(bound, physical), workers=workers,
            repeats=repeats, count_tuples=config.count_tuples,
            fast_vm=fast_vm,
        )
        return self._build_profile(
            config, compiled, machines, rows, task_counts
        )

    def execute_interpreted(
        self,
        sql: str,
        join_order_hint: list[str] | None = None,
        planner_options: PlannerOptions | None = None,
    ) -> QueryResult:
        """Run a query on the reference interpreter (the testing oracle)."""
        bound, physical = self._plan(sql, join_order_hint, planner_options)
        interpreter = Interpreter()
        raw_rows = interpreter.run(physical)
        rows = [self._decode_row(raw, physical.columns) for raw in raw_rows]
        return QueryResult(
            columns=[name for name, _ in physical.columns],
            rows=rows,
            cycles=0,
            instructions=0,
        )

    def explain(self, sql: str, join_order_hint: list[str] | None = None) -> str:
        bound, physical = self._plan(sql, join_order_hint)
        return explain_physical(physical)

    def explain_analyze(
        self, sql: str, join_order_hint: list[str] | None = None
    ) -> str:
        """Tuple counts per operator — the feature §6.1 contrasts with

        sample-based costs."""
        bound, physical = self._plan(sql, join_order_hint)
        interpreter = Interpreter()
        interpreter.run(physical)
        annotations = {
            op_id: f"{count} tuples"
            for op_id, count in interpreter.tuple_counts.items()
        }
        return explain_physical(physical, annotations)
