"""Exception hierarchy for the repro package.

Every error raised by the engine derives from :class:`ReproError` so callers
can catch engine failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CatalogError(ReproError):
    """Schema or table lookup failure (unknown table, duplicate column...)."""


class SqlError(ReproError):
    """Raised while lexing, parsing, or binding a SQL statement."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


def format_sql_error(sql: str, error: "SqlError") -> str:
    """Point a caret at the offending position of a SQL statement."""
    if getattr(error, "position", None) is None:
        return str(error)
    position = min(error.position, len(sql))
    consumed = sql[:position]
    line_number = consumed.count("\n") + 1
    line_start = consumed.rfind("\n") + 1
    line_end = sql.find("\n", position)
    if line_end < 0:
        line_end = len(sql)
    column = position - line_start
    return (
        f"{error} (line {line_number}, column {column + 1})\n"
        f"  {sql[line_start:line_end]}\n"
        f"  {' ' * column}^"
    )


class PlanError(ReproError):
    """Raised for invalid logical/physical plan construction."""


class IRError(ReproError):
    """Raised by the IR builder or verifier for malformed IR."""


class CodegenError(ReproError):
    """Raised during lowering of pipelines to IR."""


class BackendError(ReproError):
    """Raised during IR-to-native lowering (isel, regalloc, encoding)."""


class VMError(ReproError):
    """Raised by the simulated machine (bad address, illegal instruction)."""

    def __init__(self, message: str, ip: int | None = None):
        super().__init__(message if ip is None else f"{message} (ip={ip})")
        self.ip = ip


class ProfilingError(ReproError):
    """Raised by the Tailored Profiling post-processing stage."""


class ViewError(ReproError):
    """Raised by the materialized-view tier: a query that cannot be
    maintained incrementally, a bad delta, or a misused subscription."""
