"""repro.fleet — fleet-scale sharded serving.

A router tier in front of N :class:`~repro.serve.QueryService` shards:
one table's rows partition across the shards (hash or range on the
catalog partition key, reusing the storage spine's key bounds when the
table is clustered), every other table replicates, and queries execute
by scatter/gather — partial aggregates push down to the shards, the
gather merges, re-sorts, and re-limits.  Per-shard continuous profiles
merge into one fleet-wide hotspot report with per-tenant and per-shard
attribution, and a shared PGO store closes the optimization loop across
the whole fleet.
"""

from repro.fleet.partition import (
    HashPartitioner,
    PartitionSpec,
    RangePartitioner,
)
from repro.fleet.profiling import (
    FleetProfile,
    ShardAttribution,
    TenantAttribution,
    fleet_profile,
    merge_snapshots,
)
from repro.fleet.router import (
    Fleet,
    FleetConfig,
    FleetResult,
    run_fleet_workload,
)
from repro.fleet.scatter import FleetPlanError, RoutePlan, plan_route

__all__ = [
    "Fleet",
    "FleetConfig",
    "FleetPlanError",
    "FleetProfile",
    "FleetResult",
    "HashPartitioner",
    "PartitionSpec",
    "RangePartitioner",
    "RoutePlan",
    "ShardAttribution",
    "TenantAttribution",
    "fleet_profile",
    "merge_snapshots",
    "plan_route",
    "run_fleet_workload",
]
