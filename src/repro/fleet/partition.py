"""Data partitioning for the fleet router tier.

A :class:`PartitionSpec` names exactly one table to split across the N
service shards — the fact table, by convention the largest — and
replicates every other table on every shard.  That keeps scatter/gather
sound for arbitrary joins: a query joining the partitioned table against
replicated dimensions distributes over the shard union
(``fact ⋈ dim = Σ_i fact_i ⋈ dim``), and a query touching only
replicated tables is complete on any single shard.

Two partitioners are provided.  :class:`HashPartitioner` CRC32-hashes the
partition-key value (``hash()`` is process-salted, CRC32 replays across
runs).  :class:`RangePartitioner` assigns contiguous key ranges from a
sorted list of cut points; the cut points come either from value
quantiles (:meth:`RangePartitioner.from_values`) or, when the table was
loaded through ``repro.storage`` with a matching ``sort_key``, from the
storage spine's per-shard key bounds (:meth:`PartitionSpec.for_database`
reuses them, so the fleet's range split lines up with the physical
clustering the zone maps already exploit).
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.catalog.schema import DataType, decode_date
from repro.errors import ReproError
from repro.fuzz.dataset import Dataset, TableData


def _key_value(value):
    """Normalize a decoded partition-key value for hashing/ordering."""
    if isinstance(value, bool):
        return int(value)
    return value


class HashPartitioner:
    """Deterministic hash partitioning on the decoded key value."""

    scheme = "hash"

    def __init__(self, shards: int):
        if shards < 1:
            raise ReproError("a fleet needs at least one shard")
        self.shards = shards

    def shard_of(self, value) -> int:
        value = _key_value(value)
        return zlib.crc32(repr(value).encode()) % self.shards

    def describe(self) -> str:
        return f"hash({self.shards})"


class RangePartitioner:
    """Contiguous key ranges split at ``bounds`` (len == shards - 1).

    Shard ``i`` owns values ``bounds[i-1] < v <= bounds[i]`` (shard 0 is
    everything up to and including ``bounds[0]``, the last shard is
    everything above the final bound), so the whole key domain — including
    values outside any observed range — maps to exactly one shard.
    """

    scheme = "range"

    def __init__(self, bounds: list, shards: int):
        if shards < 1:
            raise ReproError("a fleet needs at least one shard")
        if len(bounds) != shards - 1:
            raise ReproError(
                f"range partitioner needs {shards - 1} bounds for "
                f"{shards} shards, got {len(bounds)}"
            )
        if any(bounds[i] > bounds[i + 1] for i in range(len(bounds) - 1)):
            raise ReproError("range bounds must be sorted")
        self.bounds = list(bounds)
        self.shards = shards

    def shard_of(self, value) -> int:
        return bisect_left(self.bounds, _key_value(value))

    def describe(self) -> str:
        return f"range({self.shards}: {self.bounds})"

    @classmethod
    def from_values(cls, values, shards: int) -> "RangePartitioner":
        """Quantile cut points over the observed key values.

        Duplicate cut points are legal (a middle shard may own an empty
        range); an empty value list degenerates to equal bounds, sending
        everything to one shard — still a total assignment.
        """
        ordered = sorted(_key_value(v) for v in values)
        if not ordered:
            return cls([0] * (shards - 1), shards)
        n = len(ordered)
        bounds = [
            ordered[min(n - 1, ((i + 1) * n) // shards)]
            for i in range(shards - 1)
        ]
        return cls(bounds, shards)


@dataclass
class PartitionSpec:
    """Which table splits, on which column, and how."""

    table: str
    column: str
    partitioner: HashPartitioner | RangePartitioner
    replicated: list[str] = field(default_factory=list)

    @property
    def shards(self) -> int:
        return self.partitioner.shards

    @property
    def scheme(self) -> str:
        return self.partitioner.scheme

    def describe(self) -> str:
        return (
            f"{self.table}.{self.column} {self.partitioner.describe()}; "
            f"replicated: {', '.join(self.replicated) or '(none)'}"
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def for_dataset(
        cls,
        dataset: Dataset,
        shards: int,
        scheme: str = "hash",
        table: str | None = None,
        column: str | None = None,
    ) -> "PartitionSpec":
        """Default spec over a fuzz dataset: split the largest table."""
        if not dataset.tables:
            raise ReproError("cannot partition an empty dataset")
        if table is None:
            table = max(
                sorted(dataset.tables),
                key=lambda name: len(dataset.tables[name].rows),
            )
        data = dataset.tables.get(table)
        if data is None:
            raise ReproError(f"no table {table!r} in the dataset")
        if column is None:
            column = data.columns[0][0]
        values = data.values_of(column)
        partitioner = _make_partitioner(scheme, shards, values)
        replicated = [name for name in dataset.tables if name != table]
        return cls(table, column, partitioner, replicated)

    @classmethod
    def for_database(
        cls,
        db,
        shards: int,
        scheme: str = "hash",
        table: str | None = None,
        column: str | None = None,
    ) -> "PartitionSpec":
        """Default spec over a live database.

        The split table is the largest by row count unless named; the
        split column follows the catalog metadata chain
        ``partition_key -> sort_key -> first column``.  With range
        partitioning, cut points reuse the storage spine's shard key
        bounds when the table is storage-loaded and clustered on the
        partition column — otherwise they fall back to value quantiles.
        """
        tables = db.catalog.tables
        if not tables:
            raise ReproError("cannot partition an empty catalog")
        if table is None:
            table = max(sorted(tables), key=lambda name: tables[name].row_count)
        meta = tables.get(table)
        if meta is None:
            raise ReproError(f"no table {table!r} in the catalog")
        if column is None:
            column = (
                meta.partition_key or meta.sort_key
                or meta.schema.columns[0].name
            )
        column_index = meta.schema.index_of(column)
        dtype = meta.schema.columns[column_index].dtype
        decode = _decoder(db, dtype)
        if scheme == "range":
            bounds = _spine_bounds(db, table, column, shards, decode)
            if bounds is not None:
                partitioner = RangePartitioner(bounds, shards)
            else:
                values = [decode(v) for v in meta.columns[column_index]]
                partitioner = RangePartitioner.from_values(values, shards)
        else:
            values = [decode(v) for v in meta.columns[column_index]]
            partitioner = _make_partitioner(scheme, shards, values)
        replicated = [name for name in tables if name != table]
        return cls(table, column, partitioner, replicated)

    # -- splitting -----------------------------------------------------------

    def assignments(self, data: TableData) -> list[int]:
        """Shard index per row of the partitioned table."""
        index = data.column_index(self.column)
        return [self.partitioner.shard_of(row[index]) for row in data.rows]

    def split(self, dataset: Dataset) -> list[Dataset]:
        """Per-shard datasets: split rows + full replicas, FKs preserved."""
        data = dataset.tables.get(self.table)
        if data is None:
            raise ReproError(
                f"partition table {self.table!r} missing from the dataset"
            )
        owners = self.assignments(data)
        shards = []
        for shard in range(self.shards):
            out = Dataset(foreign_keys=list(dataset.foreign_keys))
            for name, table in dataset.tables.items():
                if name == self.table:
                    rows = [
                        row for row, owner in zip(table.rows, owners)
                        if owner == shard
                    ]
                else:
                    rows = list(table.rows)
                out.tables[name] = TableData(name, list(table.columns), rows)
            shards.append(out)
        return shards


def _make_partitioner(scheme: str, shards: int, values):
    if scheme == "hash":
        return HashPartitioner(shards)
    if scheme == "range":
        return RangePartitioner.from_values(values, shards)
    raise ReproError(f"unknown partition scheme {scheme!r}")


def _decoder(db, dtype: DataType):
    if dtype is DataType.DECIMAL:
        return lambda v: v / 100
    if dtype is DataType.DATE:
        return decode_date
    if dtype is DataType.STRING:
        return db.catalog.dictionary.value_of
    if dtype is DataType.BOOL:
        return bool
    return lambda v: v


def _spine_bounds(db, table: str, column: str, shards: int, decode):
    """Range cut points from the storage spine, or None when unusable.

    The spine's per-shard ``key_max`` values are already the physical
    split points of the sorted layout; picking every ``S/N``-th one keeps
    the fleet's range shards aligned with whole storage shards.
    """
    storage = getattr(db, "storage", None)
    if storage is None:
        return None
    table_storage = storage.tables.get(table)
    if table_storage is None or table_storage.sort_key != column:
        return None
    spine = table_storage.shards
    if len(spine) < shards:
        return None
    maxima = [meta.key_max for meta in spine]
    if any(value is None for value in maxima):
        return None
    return [
        decode(maxima[((i + 1) * len(maxima)) // shards - 1])
        for i in range(shards - 1)
    ]
