"""Fleet-wide continuous profiling: merge shard profiles, attribute cost.

Each shard's :class:`~repro.serve.ContinuousProfiler` keeps attributing
PMU samples to (query, operator) exactly as in the single-service world;
the fleet layer adds the cross-shard view.  ``merge_snapshots`` folds
the per-shard :class:`~repro.serve.ProfileSnapshot`\\ s into one (merge
is associative and sample-exact: the merged total is the integer sum of
shard totals), and :func:`fleet_profile` wraps that merged snapshot with
the attribution only the router knows — which tenant submitted what,
and which shard burned the cycles.  The merged snapshot also feeds the
shared PGO store, closing the profile-guided-optimization loop across
the whole fleet rather than per shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve import ProfileSnapshot
from repro.serve.profiler import percentile


def merge_snapshots(snapshots) -> ProfileSnapshot | None:
    """Fold any number of snapshots into one; None over an empty input."""
    merged: ProfileSnapshot | None = None
    for snapshot in snapshots:
        if snapshot is None:
            continue
        merged = snapshot if merged is None else merged.merge(snapshot)
    return merged


@dataclass
class ShardAttribution:
    """One shard's slice of the fleet-wide sample stream."""

    shard: int
    dead: bool
    queries: int
    samples: int
    accuracy: float


@dataclass
class TenantAttribution:
    """One tenant's slice, as seen by the router."""

    tenant: str
    queries: int
    ok: int
    failed: int
    cancelled: int
    instructions: int
    samples: int
    p50_latency: int
    p95_latency: int


@dataclass
class FleetProfile:
    """The cross-fleet hotspot report: merged profile + attribution."""

    partition: str
    merged: ProfileSnapshot | None
    shards: list[ShardAttribution] = field(default_factory=list)
    tenants: list[TenantAttribution] = field(default_factory=list)

    @property
    def samples(self) -> int:
        return self.merged.samples if self.merged is not None else 0

    def render(self, top_k: int = 10) -> str:
        lines = [
            "fleet profile",
            f"  partition           {self.partition}",
            f"  shards              {len(self.shards)}",
            f"  samples (merged)    {self.samples}",
        ]
        if self.shards:
            lines.append("  per shard:")
            for shard in self.shards:
                state = "dead" if shard.dead else "live"
                lines.append(
                    f"    shard {shard.shard}  {state:<4}  "
                    f"queries {shard.queries:>5}  "
                    f"samples {shard.samples:>7}  "
                    f"accuracy {shard.accuracy:.4f}"
                )
        if self.tenants:
            lines.append("  per tenant:")
            for tenant in self.tenants:
                lines.append(
                    f"    {tenant.tenant:<12} queries {tenant.queries:>5} "
                    f"(ok {tenant.ok}, failed {tenant.failed}, "
                    f"cancelled {tenant.cancelled})  "
                    f"samples {tenant.samples:>7}  "
                    f"p50/p95 {tenant.p50_latency}/{tenant.p95_latency}"
                )
        if self.merged is not None:
            lines.append("")
            lines.append(self.merged.workload_profile(top_k).render())
        return "\n".join(lines)


def fleet_profile(fleet) -> FleetProfile:
    """Build the fleet-wide report from a :class:`repro.fleet.Fleet`."""
    shards = []
    snapshots = []
    for index, service in enumerate(fleet.services):
        snapshot = service.profile_snapshot()
        snapshots.append(snapshot)
        shards.append(ShardAttribution(
            shard=index,
            dead=index in fleet.dead,
            queries=service.completed + service.failed + service.cancelled,
            samples=snapshot.samples if snapshot is not None else 0,
            accuracy=snapshot.accuracy if snapshot is not None else 1.0,
        ))
    tenants = []
    for name in sorted(fleet.tenant_stats):
        stats = fleet.tenant_stats[name]
        tenants.append(TenantAttribution(
            tenant=name,
            queries=stats["queries"],
            ok=stats["ok"],
            failed=stats["failed"],
            cancelled=stats["cancelled"],
            instructions=stats["instructions"],
            samples=stats["samples"],
            p50_latency=percentile(stats["latencies"], 0.50),
            p95_latency=percentile(stats["latencies"], 0.95),
        ))
    return FleetProfile(
        partition=fleet.spec.describe(),
        merged=merge_snapshots(snapshots),
        shards=shards,
        tenants=tenants,
    )
