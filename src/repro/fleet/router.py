"""The fleet router: N sharded query services behind one front door.

A :class:`Fleet` splits one table's rows across N independent
:class:`~repro.serve.QueryService` shards (every other table replicated,
see :mod:`repro.fleet.partition`) and serves queries through
scatter/gather (:mod:`repro.fleet.scatter`).  Like the single service,
the whole fleet is simulated-time deterministic: the host stays
single-threaded, shard services drain in shard order, and every result
is a pure function of the submission sequence.

The router adds the fleet-level policies a single service cannot see:

* **tenant quotas** — a per-tenant cap on in-flight fleet queries,
  shed with the stable ``TENANT_QUOTA`` error code while other tenants
  proceed untouched;
* **partial failure** — a shard killed mid-scatter surfaces as a
  ``SHARD_FAILED`` error (or a ``degraded`` result built from the
  surviving shards when ``allow_partial`` is on) instead of a hang;
* **fleet-wide profiling** — per-shard continuous profiles merge into
  one cross-fleet :class:`~repro.serve.ProfileSnapshot` (sample totals
  are exactly the sum of shard totals), and a shared PGO store feeds
  every shard's profile back into one plan-optimization loop.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.catalog import DataType
from repro.errors import ReproError
from repro.fuzz.dataset import Dataset, build_database, extract_dataset
from repro.pgo.fingerprint import fingerprint
from repro.serve import (
    CANCELLED,
    COMPILE_ERROR,
    EXEC_ERROR,
    QUEUE_FULL,
    SHARD_FAILED,
    TENANT_QUOTA,
    ProfileSnapshot,
    QueryService,
    ServiceConfig,
    ServiceError,
    ServiceResult,
)
from repro.fleet.partition import PartitionSpec
from repro.fleet.scatter import (
    FleetPlanError,
    RoutePlan,
    ValueEncoder,
    gather_rows,
    plan_route,
)
from repro.sql import ast


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the router tier; per-shard knobs pass through."""

    shards: int = 2
    scheme: str = "hash"  # "hash" | "range"
    workers: int = 2  # per shard
    max_inflight: int = 8
    max_queue: int = 32
    morsel_size: int = 256
    profiling: bool = True
    fast_vm: bool = True
    seed: int = 0
    # max in-flight fleet queries per tenant; None = unlimited
    tenant_quota: int | None = None
    # degrade to surviving shards on shard loss instead of failing
    allow_partial: bool = False

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(
            workers=self.workers,
            max_inflight=self.max_inflight,
            max_queue=self.max_queue,
            morsel_size=self.morsel_size,
            profiling=self.profiling,
            fast_vm=self.fast_vm,
            seed=self.seed,
        )


@dataclass
class FleetResult:
    """What a client gets back for one fleet ticket."""

    ticket: int
    tenant: str
    sql: str
    status: str  # "ok" | "failed" | "cancelled" | "degraded"
    columns: list[str] = field(default_factory=list)
    rows: list[tuple] | None = None
    error: ServiceError | None = None
    scattered: bool = False
    shards: list[int] = field(default_factory=list)  # shards that ran it
    lost_shards: list[int] = field(default_factory=list)
    # sums / maxima over the per-shard sub-results
    instructions: int = 0
    samples: int = 0
    latency_cycles: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "degraded")

    @property
    def error_code(self) -> str | None:
        return self.error.code if self.error is not None else None


@dataclass
class _FleetQuery:
    """Router-side bookkeeping for one in-flight fleet query."""

    ticket: int
    tenant: str
    sql: str
    plan: RoutePlan
    subtickets: dict[int, int]  # shard index -> shard ticket
    cancelled: bool = False


class Fleet:
    """Router tier over N partitioned :class:`QueryService` shards."""

    def __init__(self, database, config: FleetConfig | None = None,
                 spec: PartitionSpec | None = None, pgo_store=None):
        config = config or FleetConfig()
        if spec is None:
            spec = PartitionSpec.for_database(
                database, config.shards, scheme=config.scheme
            )
        self._init(extract_dataset(database), config, spec, pgo_store)

    @classmethod
    def from_dataset(cls, dataset: Dataset, config: FleetConfig | None = None,
                     spec: PartitionSpec | None = None,
                     pgo_store=None) -> "Fleet":
        fleet = cls.__new__(cls)
        config = config or FleetConfig()
        if spec is None:
            spec = PartitionSpec.for_dataset(
                dataset, config.shards, scheme=config.scheme
            )
        fleet._init(dataset, config, spec, pgo_store)
        return fleet

    def _init(self, dataset: Dataset, config: FleetConfig,
              spec: PartitionSpec, pgo_store) -> None:
        if spec.shards != config.shards:
            raise ReproError(
                f"partition spec has {spec.shards} shards, "
                f"config wants {config.shards}"
            )
        self.config = config
        self.spec = spec
        self.pgo_store = pgo_store
        service_config = config.service_config()
        self.services = [
            QueryService(build_database(slice_), service_config,
                         pgo_store=pgo_store)
            for slice_ in spec.split(dataset)
        ]
        # gather-side HAVING/ORDER BY re-evaluation needs the engine's
        # encoded domain; the full pre-split dataset reproduces exactly
        # the string-dictionary ids the reference database assigns
        self.encoder = ValueEncoder([
            value
            for table in dataset.tables.values()
            for (name, dtype) in table.columns
            if dtype is DataType.STRING
            for value in table.values_of(name)
        ])
        self.dead: set[int] = set()
        self._pending: dict[int, _FleetQuery] = {}
        self.results: dict[int, FleetResult] = {}
        self._tickets = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.degraded = 0
        # per-tenant attribution for the fleet profile report
        self.tenant_stats: dict[str, dict] = {}

    @property
    def shards(self) -> int:
        return len(self.services)

    def live_shards(self) -> list[int]:
        return [i for i in range(self.shards) if i not in self.dead]

    # -- client API ----------------------------------------------------------

    def submit(self, sql: str, tenant: str = "default",
               priority: int = 0, timeout_cycles: int | None = None,
               max_instructions: int | None = None) -> int:
        """Queue a query fleet-wide; returns its fleet ticket.

        Raises :class:`ServiceError` with ``TENANT_QUOTA`` when the
        tenant is over its in-flight quota, ``QUEUE_FULL`` when any
        target shard sheds (already-accepted shard subqueries are rolled
        back, so a shed submit leaves no orphans), or ``COMPILE_ERROR``
        when the statement cannot be distributed."""
        quota = self.config.tenant_quota
        if quota is not None:
            inflight = sum(
                1 for query in self._pending.values()
                if query.tenant == tenant and not query.cancelled
            )
            if inflight >= quota:
                raise ServiceError(
                    TENANT_QUOTA,
                    f"tenant {tenant!r} has {inflight} queries in flight "
                    f"(quota {quota})",
                )
        try:
            plan = plan_route(sql, self.spec.table)
        except FleetPlanError as exc:
            raise ServiceError(COMPILE_ERROR, str(exc)) from exc

        if plan.scatter:
            targets = list(range(self.shards))
        else:
            # replicated-only query: complete on any one shard; spread
            # load deterministically by statement fingerprint
            targets = [
                zlib.crc32(fingerprint(sql).encode()) % self.shards
            ]

        self._tickets += 1
        ticket = self._tickets
        subtickets: dict[int, int] = {}
        for shard in targets:
            if shard in self.dead:
                continue  # gathered as a lost shard at drain
            try:
                subtickets[shard] = self.services[shard].submit(
                    plan.shard_sql,
                    session=tenant,
                    priority=priority,
                    timeout_cycles=timeout_cycles,
                    max_instructions=max_instructions,
                )
            except ServiceError as exc:
                if exc.code != QUEUE_FULL:
                    raise
                # roll back the scatter: cancel the shard subqueries
                # already accepted so a shed fleet submit is atomic
                for accepted, sub in subtickets.items():
                    self.services[accepted].cancel(sub)
                self._tickets -= 1
                raise
        self._pending[ticket] = _FleetQuery(
            ticket=ticket, tenant=tenant, sql=sql, plan=plan,
            subtickets=subtickets,
        )
        return ticket

    def cancel(self, ticket: int) -> bool:
        """Cancel a fleet query; propagates to every in-flight shard
        subquery.  False if already finished."""
        query = self._pending.get(ticket)
        if query is None or query.cancelled:
            return False
        query.cancelled = True
        for shard, sub in query.subtickets.items():
            self.services[shard].cancel(sub)
        return True

    def kill_shard(self, shard: int) -> None:
        """Simulate losing a shard: cancel its in-flight subqueries and
        stop routing to it.  Pending fleet queries gather without it."""
        if shard < 0 or shard >= self.shards:
            raise ReproError(f"no shard {shard}")
        self.dead.add(shard)
        for query in self._pending.values():
            sub = query.subtickets.get(shard)
            if sub is not None:
                self.services[shard].cancel(sub)

    def drain(self) -> list[FleetResult]:
        """Drain every live shard, then gather pending fleet queries in
        submission order.  Returns this call's results."""
        for shard in self.live_shards():
            self.services[shard].drain()
        out = []
        for ticket in sorted(self._pending):
            result = self._gather(self._pending[ticket])
            self.results[ticket] = result
            self._account(result)
            out.append(result)
        self._pending.clear()
        return out

    def result(self, ticket: int) -> FleetResult | None:
        return self.results.get(ticket)

    # -- gathering -----------------------------------------------------------

    def _gather(self, query: _FleetQuery) -> FleetResult:
        plan = query.plan
        subresults: dict[int, ServiceResult] = {}
        for shard, sub in query.subtickets.items():
            result = self.services[shard].result(sub)
            if result is not None:
                subresults[shard] = result
        result = FleetResult(
            ticket=query.ticket, tenant=query.tenant, sql=query.sql,
            status="ok", scattered=plan.scatter,
            shards=sorted(query.subtickets),
        )
        for sub in subresults.values():
            result.instructions += sub.instructions
            result.samples += sub.samples
            result.latency_cycles = max(result.latency_cycles,
                                        sub.latency_cycles)

        if query.cancelled:
            result.status = "cancelled"
            result.error = ServiceError(
                CANCELLED, f"fleet query {query.ticket} cancelled"
            )
            return result

        wanted = list(range(self.shards)) if plan.scatter else result.shards
        lost = sorted(
            set(wanted) & self.dead
            | {
                shard for shard, sub in subresults.items()
                if sub.status == "cancelled"
            }
        )
        result.lost_shards = lost
        survivors = [
            subresults[shard]
            for shard in sorted(subresults)
            if shard not in lost
        ]
        if lost:
            degradable = (
                plan.scatter and self.config.allow_partial
                and all(sub.ok for sub in survivors)
            )
            if not degradable:
                result.status = "failed"
                result.error = ServiceError(
                    SHARD_FAILED,
                    f"shard(s) {lost} lost while query {query.ticket} "
                    "was in flight",
                )
                return result
            result.status = "degraded"

        for sub in survivors:
            if sub.status == "failed":
                result.status = "failed"
                result.error = sub.error
                return result

        return self._merge(result, plan, survivors)

    def _merge(self, result: FleetResult, plan: RoutePlan,
               survivors: list[ServiceResult]) -> FleetResult:
        if not plan.scatter:
            sub = survivors[0]
            result.columns = list(sub.columns)
            result.rows = list(sub.rows or [])
            return result
        try:
            rows = gather_rows(
                plan.gather, [list(sub.rows or []) for sub in survivors],
                encoder=self.encoder,
            )
        except (FleetPlanError, ZeroDivisionError, ArithmeticError,
                TypeError, ValueError) as exc:
            # mirrors a shard-side runtime failure: e.g. a division the
            # gather evaluates that the shards never executed
            result.status = "failed"
            result.error = ServiceError(EXEC_ERROR, f"gather failed: {exc}")
            return result
        result.rows = rows
        result.columns = _output_columns(plan.gather.stmt)
        return result

    def _account(self, result: FleetResult) -> None:
        if result.status == "failed":
            self.failed += 1
        elif result.status == "cancelled":
            self.cancelled += 1
        else:
            self.completed += 1
            if result.status == "degraded":
                self.degraded += 1
        stats = self.tenant_stats.setdefault(result.tenant, {
            "queries": 0, "ok": 0, "failed": 0, "cancelled": 0,
            "instructions": 0, "samples": 0, "latencies": [],
        })
        stats["queries"] += 1
        key = "ok" if result.ok else result.status
        stats[key] += 1
        stats["instructions"] += result.instructions
        stats["samples"] += result.samples
        if result.ok:
            stats["latencies"].append(result.latency_cycles)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        shard_stats = [service.stats() for service in self.services]
        return {
            "shards": self.shards,
            "dead_shards": sorted(self.dead),
            "partition": self.spec.describe(),
            "submitted": self._tickets,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "degraded": self.degraded,
            # fleet makespan: the slowest simulated worker clock across
            # every shard — shards run in parallel in simulated time
            "makespan_cycles": max(
                (max(s["worker_cycles"]) for s in shard_stats
                 if s["worker_cycles"]),
                default=0,
            ),
            "per_shard": shard_stats,
        }

    def profile_snapshot(self) -> ProfileSnapshot | None:
        """One fleet-wide profile: the merge of every shard's snapshot.

        Merged sample totals are exactly the sum of per-shard totals —
        the ``fleet-sharded`` fuzz oracle asserts this equality."""
        merged: ProfileSnapshot | None = None
        for service in self.services:
            snapshot = service.profile_snapshot()
            if snapshot is None:
                continue
            merged = snapshot if merged is None else merged.merge(snapshot)
        return merged


def run_fleet_workload(fleet: Fleet, items) -> list:
    """Submit ``(tenant, sql)`` pairs, draining on back-pressure.

    A ``QUEUE_FULL`` shed triggers a drain and one resubmit; a
    ``TENANT_QUOTA`` shed records a failed-submit marker (the quota is
    a policy decision, not back-pressure).  Returns per-item
    :class:`FleetResult` (or the raised :class:`ServiceError` for
    quota sheds) in submission order."""
    tickets: list[tuple] = []  # ("ticket", n) | ("error", exc)
    for tenant, sql in items:
        try:
            tickets.append(("ticket", fleet.submit(sql, tenant=tenant)))
        except ServiceError as exc:
            if exc.code != QUEUE_FULL:
                tickets.append(("error", exc))
                continue
            fleet.drain()
            tickets.append(("ticket", fleet.submit(sql, tenant=tenant)))
    fleet.drain()
    return [
        fleet.result(value) if kind == "ticket" else value
        for kind, value in tickets
    ]


def _output_columns(stmt: ast.SelectStmt) -> list[str]:
    """The engine's output naming: alias, else identifier/function name,
    else ``colN`` (mirrors the binder's ``_default_name``)."""
    out = []
    for i, item in enumerate(stmt.items):
        if item.alias:
            out.append(item.alias)
        elif isinstance(item.expr, ast.Identifier):
            out.append(item.expr.name)
        elif isinstance(item.expr, ast.FuncCall):
            out.append(item.expr.name)
        else:
            out.append(f"col{i}")
    return out
