"""Scatter/gather query planning for the fleet router.

A query that references the partitioned table cannot run on one shard —
each shard only holds a slice of its rows — so the router rewrites it
into a *shard statement* (executed verbatim on every shard) plus a
*gather plan* (executed router-side over the shard results):

* Aggregates decompose into partials: ``sum``/``count`` merge by
  addition, ``min``/``max`` by min/max, and ``avg`` splits into a
  ``sum`` partial and a shared ``count(*)`` partial recombined as
  ``total / count`` at gather (0.0 over zero rows, matching the
  binder's guarded ungrouped avg).
* GROUP BY keys ship as extra shard columns; the gather merges partial
  groups by key tuple.  Ungrouped aggregates carry a hidden ``count(*)``
  so the gather can drop the all-zero identity rows empty shards emit
  (their ``min``/``max`` identities would otherwise corrupt the merge).
* HAVING, ORDER BY, LIMIT, and DISTINCT move to the gather side, where
  the original select items are re-evaluated over the merged partials.
  ORDER BY + LIMIT push down to the shards only for plain projections
  (no aggregates, grouping, or DISTINCT), where per-shard top-K is sound.

Queries that never touch the partitioned table are complete on any
single shard and route unrewritten.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from dataclasses import dataclass

from repro.catalog.schema import decode_date, encode_date
from repro.errors import ReproError
from repro.sql import ast, parse, unparse

AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

_ISO_DATE = re.compile(r"\d{4}-\d{2}-\d{2}")


class ValueEncoder:
    """Maps decoded gather values back to the engine's 64-bit encoding.

    The engine evaluates every expression over *encoded* values —
    dictionary ids for strings, day ordinals for dates — and only
    decodes at output.  Shard results arrive decoded, so re-evaluating
    a HAVING like ``max(placed) >= 3`` at gather time must first encode
    the merged value the way the engine would, or the comparison runs
    on the wrong domain.  Built from the full pre-split dataset, the
    sorted-rank ids here coincide with every ``StringDictionary`` id
    the reference database would assign.
    """

    def __init__(self, strings=()):
        self._values = sorted(set(strings))
        self._id_of = {s: i for i, s in enumerate(self._values)}

    def encode(self, value):
        if isinstance(value, str):
            string_id = self._id_of.get(value)
            if string_id is not None:
                return string_id
            if _ISO_DATE.fullmatch(value):
                return encode_date(value)
            return self.literal(value)
        return value

    def literal(self, value: str):
        """An absent string literal: the half-offset insertion rank.

        ``id < rank - 0.5`` iff ``string < value`` (the dictionary's
        range trick), and equality against it is never true — exactly
        the engine's semantics for literals outside the data."""
        string_id = self._id_of.get(value)
        if string_id is not None:
            return string_id
        return bisect_left(self._values, value) - 0.5


class FleetPlanError(ReproError):
    """The router cannot (or refuses to) distribute this statement."""


@dataclass(frozen=True)
class Partial:
    """One shard-side partial column and how to merge it."""

    call: ast.FuncCall  # the shard-side partial aggregate
    merge: str  # "sum" | "min" | "max"
    column: int  # index into the shard result row


@dataclass
class GatherPlan:
    """Everything the router needs to merge shard results."""

    stmt: ast.SelectStmt  # the original statement
    key_exprs: list[ast.Node]  # group keys, shard columns [0..len)
    partials: dict[ast.FuncCall, tuple[Partial, ...]]  # agg -> its partials
    hidden_count: int | None  # shard column of the hidden count(*)
    grouped: bool
    aggregated: bool
    limit_pushed: bool


@dataclass
class RoutePlan:
    """How one SQL statement executes across the fleet."""

    sql: str
    scatter: bool
    shard_sql: str  # what each shard actually runs
    gather: GatherPlan | None = None


# -- statement analysis ------------------------------------------------------


def _walk_tables(stmt: ast.SelectStmt, out: set, nested: set,
                 depth: int = 0) -> None:
    for ref in stmt.tables:
        if ref.subquery is not None:
            _walk_tables(ref.subquery, out, nested, depth + 1)
        else:
            (nested if depth else out).add(ref.table)
    for node in _expressions(stmt):
        _walk_subqueries(node, out, nested)


def _expressions(stmt: ast.SelectStmt):
    for item in stmt.items:
        yield item.expr
    if stmt.where is not None:
        yield stmt.where
    yield from stmt.group_by
    if stmt.having is not None:
        yield stmt.having
    for order in stmt.order_by:
        yield order.expr


def _walk_subqueries(node, out: set, nested: set) -> None:
    if isinstance(node, (ast.ScalarSubquery, ast.Exists, ast.InSubquery)):
        _walk_tables(node.subquery, nested, nested, depth=1)
        return
    for child in _children(node):
        _walk_subqueries(child, out, nested)


def _children(node):
    if isinstance(node, ast.UnaryOp):
        return (node.operand,)
    if isinstance(node, ast.BinaryOp):
        return (node.left, node.right)
    if isinstance(node, ast.FuncCall):
        return node.args
    if isinstance(node, ast.Between):
        return (node.operand, node.low, node.high)
    if isinstance(node, ast.InList):
        return (node.operand, *node.values)
    if isinstance(node, ast.Like):
        return (node.operand,)
    if isinstance(node, ast.InSubquery):
        return (node.operand,)
    if isinstance(node, ast.Case):
        children = []
        for cond, value in node.whens:
            children.extend((cond, value))
        if node.default is not None:
            children.append(node.default)
        return tuple(children)
    return ()


def _find_aggregates(node, out: list) -> None:
    if isinstance(node, ast.FuncCall) and node.name.lower() in AGGREGATES:
        if node not in out:
            out.append(node)
        return
    for child in _children(node):
        _find_aggregates(child, out)


# -- planning ----------------------------------------------------------------


def plan_route(sql: str, partition_table: str) -> RoutePlan:
    """Decide single-shard routing vs scatter/gather for one statement."""
    stmt = parse(sql)
    top: set = set()
    nested: set = set()
    _walk_tables(stmt, top, nested)
    if partition_table not in top and partition_table not in nested:
        return RoutePlan(sql=sql, scatter=False, shard_sql=sql)
    if partition_table in nested:
        raise FleetPlanError(
            f"fleet: partitioned table {partition_table!r} inside a "
            "subquery cannot be scattered"
        )
    if sum(1 for ref in stmt.tables if ref.table == partition_table) > 1:
        raise FleetPlanError(
            f"fleet: self-join of partitioned table {partition_table!r} "
            "cannot be scattered"
        )

    aggregates: list[ast.FuncCall] = []
    for node in _expressions(stmt):
        _find_aggregates(node, aggregates)
    grouped = bool(stmt.group_by)
    aggregated = bool(aggregates) or grouped
    if stmt.distinct and aggregated:
        raise FleetPlanError(
            "fleet: DISTINCT combined with aggregation cannot be scattered"
        )

    if not aggregated:
        return _plan_projection(sql, stmt)
    return _plan_aggregation(sql, stmt, aggregates, grouped)


def _plan_projection(sql: str, stmt: ast.SelectStmt) -> RoutePlan:
    """Row scatter: shard rows pass through; sort/limit re-done at gather."""
    shard = ast.SelectStmt(
        distinct=stmt.distinct,
        items=list(stmt.items),
        tables=list(stmt.tables),
        where=stmt.where,
    )
    # per-shard top-K is sound for plain projections: every output row
    # comes from exactly one shard, so the global top-K is a subset of
    # the union of per-shard top-Ks
    limit_pushed = stmt.limit is not None and not stmt.distinct
    if limit_pushed:
        shard.order_by = list(stmt.order_by)
        shard.limit = stmt.limit
    _resolve_order(stmt, aggregated=False)  # fail at plan time, not gather
    gather = GatherPlan(
        stmt=stmt, key_exprs=[], partials={}, hidden_count=None,
        grouped=False, aggregated=False, limit_pushed=limit_pushed,
    )
    return RoutePlan(
        sql=sql, scatter=True, shard_sql=unparse(shard), gather=gather,
    )


def _plan_aggregation(
    sql: str, stmt: ast.SelectStmt,
    aggregates: list[ast.FuncCall], grouped: bool,
) -> RoutePlan:
    shard = ast.SelectStmt(
        tables=list(stmt.tables),
        where=stmt.where,
        group_by=list(stmt.group_by),
    )
    items: list[ast.SelectItem] = []
    for i, key in enumerate(stmt.group_by):
        items.append(ast.SelectItem(key, f"g{i}"))

    partial_columns: dict[ast.FuncCall, int] = {}

    def shard_column(call: ast.FuncCall) -> int:
        column = partial_columns.get(call)
        if column is None:
            column = len(items)
            partial_columns[call] = column
            items.append(ast.SelectItem(call, f"p{column}"))
        return column

    count_star = ast.FuncCall("count", (ast.Star(),))
    partials: dict[ast.FuncCall, tuple[Partial, ...]] = {}
    for call in aggregates:
        name = call.name.lower()
        if name == "avg":
            partials[call] = (
                Partial(
                    ast.FuncCall("sum", call.args), "sum",
                    shard_column(ast.FuncCall("sum", call.args)),
                ),
                Partial(count_star, "sum", shard_column(count_star)),
            )
        elif name in ("sum", "count"):
            partials[call] = (Partial(call, "sum", shard_column(call)),)
        else:  # min / max
            partials[call] = (Partial(call, name, shard_column(call)),)

    hidden_count = None
    if not grouped:
        # ungrouped aggregation emits exactly one row per shard even over
        # zero input rows; the hidden count lets the gather drop those
        # identity rows so min/max identities never leak into the merge
        hidden_count = shard_column(count_star)

    shard.items = items
    gather = GatherPlan(
        stmt=stmt, key_exprs=list(stmt.group_by), partials=partials,
        hidden_count=hidden_count, grouped=grouped, aggregated=True,
        limit_pushed=False,
    )
    return RoutePlan(
        sql=sql, scatter=True, shard_sql=unparse(shard), gather=gather,
    )


# -- gather-side expression evaluation ---------------------------------------


def _truncdiv(a, b):
    """C-style truncation, matching the VM's SDIV/SREM semantics."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _like_match(value: str, pattern: str) -> bool:
    import re

    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.fullmatch("".join(parts), value) is not None


def _eval(node, env: dict, encoder: ValueEncoder | None = None):
    """Evaluate an expression over merged aggregate/key values.

    ``env`` maps AST nodes (group-key expressions and aggregate calls —
    all frozen, hence hashable) to their merged values; anything else is
    computed with the engine's value semantics.  With an ``encoder`` the
    env holds *encoded* values (the HAVING / ORDER BY domain) and string
    and date literals encode to match; without one the env is decoded
    (the output-item domain).
    """
    if node in env:
        return env[node]
    if isinstance(node, ast.NumberLit):
        return node.value
    if isinstance(node, ast.StringLit):
        if encoder is not None:
            return encoder.literal(node.value)
        return node.value
    if isinstance(node, ast.DateLit):
        if encoder is not None:
            return encode_date(node.value)
        return node.value
    if isinstance(node, ast.UnaryOp):
        if node.op == "not":
            return not _eval(node.operand, env, encoder)
        return -_eval(node.operand, env, encoder)
    if isinstance(node, ast.BinaryOp):
        op = node.op
        if op == "and":
            return (
                bool(_eval(node.left, env, encoder))
                and bool(_eval(node.right, env, encoder))
            )
        if op == "or":
            return (
                bool(_eval(node.left, env, encoder))
                or bool(_eval(node.right, env, encoder))
            )
        left = _eval(node.left, env, encoder)
        right = _eval(node.right, env, encoder)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                return _truncdiv(left, right)
            return left / right
        if op == "%":
            return left - right * _truncdiv(left, right)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise FleetPlanError(f"fleet: cannot evaluate operator {op!r}")
    if isinstance(node, ast.Between):
        value = _eval(node.operand, env, encoder)
        low = _eval(node.low, env, encoder)
        high = _eval(node.high, env, encoder)
        return (low <= value <= high) != node.negated
    if isinstance(node, ast.InList):
        value = _eval(node.operand, env, encoder)
        found = any(value == _eval(v, env, encoder) for v in node.values)
        return found != node.negated
    if isinstance(node, ast.Like):
        matched = _like_match(_eval(node.operand, env), node.pattern)
        return matched != node.negated
    if isinstance(node, ast.Case):
        for cond, value in node.whens:
            if _eval(cond, env, encoder):
                return _eval(value, env, encoder)
        if node.default is not None:
            return _eval(node.default, env, encoder)
        return 0
    raise FleetPlanError(
        f"fleet: cannot evaluate {type(node).__name__} at gather time"
    )


# -- merging -----------------------------------------------------------------


def _merge_values(kind: str, values: list):
    if kind == "sum":
        if any(isinstance(v, str) for v in values):
            # a summed DATE column: the engine sums ordinals and decodes
            # the result as a date again (usually out of range — that
            # ValueError is the same failure the single node reports)
            return decode_date(sum(encode_date(v) for v in values))
        if any(isinstance(v, float) for v in values):
            return math.fsum(values)
        return sum(values)
    if kind == "min":
        return min(values)
    return max(values)


def _identity(call: ast.FuncCall):
    """The engine's ungrouped empty-input identity: every aggregate is 0
    (``avg`` 0.0 via the binder's guarded division)."""
    return 0.0 if call.name.lower() == "avg" else 0


def _merged_env(
    gather: GatherPlan, key: tuple, rows: list[tuple]
) -> dict:
    env: dict = dict(zip(gather.key_exprs, key))
    for call, parts in gather.partials.items():
        if not rows:
            env[call] = _identity(call)
            continue
        if call.name.lower() == "avg":
            total = _merge_values(
                "sum", [float(row[parts[0].column]) for row in rows]
            )
            count = sum(row[parts[1].column] for row in rows)
            env[call] = total / count if count else 0.0
        else:
            part = parts[0]
            env[call] = _merge_values(
                part.merge, [row[part.column] for row in rows]
            )
    return env


@dataclass
class _SortKey:
    """One resolvable ORDER BY key: output column or gather expression."""

    ascending: bool
    column: int | None = None
    expr: ast.Node | None = None


def _resolve_order(stmt: ast.SelectStmt, aggregated: bool) -> list[_SortKey]:
    alias_index = {
        item.alias: i for i, item in enumerate(stmt.items) if item.alias
    }
    expr_index: dict = {}
    for i, item in enumerate(stmt.items):
        expr_index.setdefault(item.expr, i)
    keys = []
    for order in stmt.order_by:
        expr = order.expr
        if (
            isinstance(expr, ast.Identifier)
            and expr.qualifier is None
            and expr.name in alias_index
        ):
            keys.append(_SortKey(order.ascending, column=alias_index[expr.name]))
        elif expr in expr_index:
            keys.append(_SortKey(order.ascending, column=expr_index[expr]))
        elif aggregated:
            keys.append(_SortKey(order.ascending, expr=expr))
        else:
            raise FleetPlanError(
                "fleet: ORDER BY key not derivable from the output row"
            )
    return keys


def _sort_rows(entries: list[tuple], keys: list[_SortKey]) -> None:
    """entries are (output_row, sort_values); repeated stable sorts."""
    for index in range(len(keys) - 1, -1, -1):
        key = keys[index]
        entries.sort(
            key=lambda entry, i=index: _orderable(entry[1][i]),
            reverse=not key.ascending,
        )


def _orderable(value):
    return int(value) if isinstance(value, bool) else value


def gather_rows(
    gather: GatherPlan, shard_rows: list[list[tuple]],
    encoder: ValueEncoder | None = None,
) -> list:
    """Merge per-shard result rows into the final result rows."""
    stmt = gather.stmt
    order_keys = _resolve_order(stmt, gather.aggregated)
    encoder = encoder or ValueEncoder()

    entries: list[tuple] = []  # (output_row, sort_values)
    if not gather.aggregated:
        seen = set()
        for rows in shard_rows:
            for row in rows:
                if stmt.distinct:
                    if row in seen:
                        continue
                    seen.add(row)
                entries.append((row, None))
        if order_keys:
            entries = [
                (row, tuple(row[key.column] for key in order_keys))
                for row, _ in entries
            ]
    else:
        n_keys = len(gather.key_exprs)
        groups: dict[tuple, list[tuple]] = {}
        if gather.grouped:
            for rows in shard_rows:
                for row in rows:
                    groups.setdefault(tuple(row[:n_keys]), []).append(row)
        else:
            live = [
                row for rows in shard_rows for row in rows
                if row[gather.hidden_count] > 0
            ]
            groups[()] = live  # possibly empty: the identity case
        needs_encoded = stmt.having is not None or any(
            k.expr is not None for k in order_keys
        )
        for key, rows in groups.items():
            env = _merged_env(gather, key, rows)
            encoded_env = (
                {k: encoder.encode(v) for k, v in env.items()}
                if needs_encoded else None
            )
            # HAVING runs in the engine's *encoded* domain: a date
            # aggregate compares as its day ordinal, a string as its
            # dictionary id — never as the decoded output value
            if stmt.having is not None and not _eval(
                stmt.having, encoded_env, encoder
            ):
                continue
            output = tuple(_eval(item.expr, env) for item in stmt.items)
            sort_values = (
                tuple(
                    output[k.column] if k.column is not None
                    else _eval(k.expr, encoded_env, encoder)
                    for k in order_keys
                )
                if order_keys else None
            )
            entries.append((output, sort_values))

    if order_keys:
        _sort_rows(entries, order_keys)
    rows = [row for row, _ in entries]
    if stmt.limit is not None:
        rows = rows[: stmt.limit]
    return rows
