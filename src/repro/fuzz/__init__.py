"""Differential query fuzzer: generator, multi-executor oracle, shrinker.

Grammar-driven SQL generation over seeded random datasets, a differential
oracle spanning every executor the engine has (compiled single- and
multi-worker, interpreted, unoptimized, groupjoin, join-order hints, and
the PGO feedback path), and a delta-debugging shrinker that reduces any
disagreement to a checked-in, replayable corpus case.
"""

from repro.fuzz.dataset import (
    Dataset,
    ForeignKey,
    TableData,
    build_database,
    extract_dataset,
    random_dataset,
)
from repro.fuzz.generator import GeneratedQuery, QueryGenerator
from repro.fuzz.oracle import (
    CheckResult,
    DifferentialOracle,
    Disagreement,
    Outcome,
    bags_equal,
    check_query,
    operator_count,
)
from repro.fuzz.shrink import Shrinker, ShrinkResult, ordered_by_of
from repro.fuzz.corpus import (
    CorpusCase,
    load_case,
    load_directory,
    replay_case,
)
from repro.fuzz.harness import FuzzFailure, FuzzReport, run_fuzz

__all__ = [
    "CheckResult",
    "CorpusCase",
    "Dataset",
    "DifferentialOracle",
    "Disagreement",
    "ForeignKey",
    "FuzzFailure",
    "FuzzReport",
    "GeneratedQuery",
    "Outcome",
    "QueryGenerator",
    "ShrinkResult",
    "Shrinker",
    "TableData",
    "bags_equal",
    "build_database",
    "check_query",
    "extract_dataset",
    "load_case",
    "load_directory",
    "operator_count",
    "ordered_by_of",
    "random_dataset",
    "replay_case",
    "run_fuzz",
]
