"""Corpus persistence and replay.

A corpus case is a self-contained JSON document: a dataset (schemas plus
rows) and a SQL query, plus provenance metadata.  Cases come from two
places — minimized fuzzer findings, and hand-written edge cases checked
into ``tests/corpus/`` — and both replay identically: rebuild the
database, run the full differential oracle, demand agreement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.fuzz.dataset import Dataset, build_database
from repro.fuzz.oracle import CheckResult, DifferentialOracle
from repro.fuzz.shrink import ordered_by_of
from repro.sql import parse


@dataclass
class CorpusCase:
    name: str
    description: str
    sql: str
    dataset: Dataset
    path: Path | None = None


def load_case(path: str | Path) -> CorpusCase:
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load corpus case {path}: {exc}") from exc
    for key in ("name", "sql", "dataset"):
        if key not in document:
            raise ReproError(f"corpus case {path} is missing {key!r}")
    return CorpusCase(
        name=document["name"],
        description=document.get("description", ""),
        sql=document["sql"],
        dataset=Dataset.from_json(document["dataset"]),
        path=path,
    )


def load_directory(directory: str | Path) -> list[CorpusCase]:
    return [
        load_case(path)
        for path in sorted(Path(directory).glob("*.json"))
    ]


def replay_case(
    case: CorpusCase, *, max_hints: int = 4, check_pgo: bool = True,
    check_vm_parity: bool = True,
) -> CheckResult:
    """Rebuild the case's database and run the oracle on its query."""
    db = build_database(case.dataset)
    oracle = DifferentialOracle(
        db, max_hints=max_hints, check_pgo=check_pgo,
        check_vm_parity=check_vm_parity,
    )
    stmt = parse(case.sql)
    return oracle.check(
        case.sql,
        aliases=[ref.alias for ref in stmt.tables],
        ordered_by=ordered_by_of(stmt),
    )
