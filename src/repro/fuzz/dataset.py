"""Fuzzing datasets: portable table specs the shrinker can rebuild.

A :class:`Dataset` is the value-level description of a database — schemas
plus decoded rows plus foreign-key metadata.  Unlike a live
:class:`~repro.engine.Database` it survives JSON round-trips, so minimized
failures check into ``tests/corpus/`` as self-contained repros, and the
delta-debugging shrinker can rebuild a smaller database per candidate.

``random_dataset`` grows the kind of data differential testing wants:
skewed join keys (one hot parent), dangling and zero-sentinel foreign keys
(this engine has no SQL NULL — a FK of 0 pointing at ids that start from 1
is the idiomatic "no parent"), duplicate strings, empty tables, and
boundary dates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from random import Random

from repro.catalog import Column, DataType, Schema
from repro.catalog.schema import decode_date
from repro.engine import Database
from repro.errors import ReproError

_STRING_POOL = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta",
    "red", "green", "blue", "amber", "none", "n/a",
]


@dataclass
class TableData:
    """One table: column definitions plus decoded (Python-native) rows."""

    name: str
    columns: list[tuple[str, DataType]]
    rows: list[tuple]

    def column_index(self, name: str) -> int:
        for i, (col, _) in enumerate(self.columns):
            if col == name:
                return i
        raise ReproError(f"no column {name!r} in fuzz table {self.name!r}")

    def values_of(self, name: str) -> list:
        index = self.column_index(name)
        return [row[index] for row in self.rows]


@dataclass
class ForeignKey:
    """``child.column`` references ``parent.column`` (join edge metadata)."""

    child: str
    child_column: str
    parent: str
    parent_column: str


@dataclass
class Dataset:
    """A rebuildable database description."""

    tables: dict[str, TableData] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def copy(self) -> "Dataset":
        return Dataset(
            tables={
                name: TableData(t.name, list(t.columns), list(t.rows))
                for name, t in self.tables.items()
            },
            foreign_keys=list(self.foreign_keys),
        )

    def row_total(self) -> int:
        return sum(len(t.rows) for t in self.tables.values())

    # -- JSON round trip -----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "tables": {
                name: {
                    "columns": [[c, d.value] for c, d in t.columns],
                    "rows": [list(row) for row in t.rows],
                }
                for name, t in self.tables.items()
            },
            "foreign_keys": [
                [fk.child, fk.child_column, fk.parent, fk.parent_column]
                for fk in self.foreign_keys
            ],
        }

    @classmethod
    def from_json(cls, document: dict) -> "Dataset":
        tables = {}
        for name, spec in document["tables"].items():
            columns = [(c, DataType(d)) for c, d in spec["columns"]]
            rows = [tuple(row) for row in spec["rows"]]
            tables[name] = TableData(name, columns, rows)
        fks = [
            ForeignKey(*entry) for entry in document.get("foreign_keys", [])
        ]
        return cls(tables=tables, foreign_keys=fks)

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=1)


def build_database(
    dataset: Dataset, memory_bytes: int = 1 << 22, storage=None
) -> Database:
    """Materialize a dataset as a ready-to-query database.

    ``storage`` is an optional :class:`repro.storage.StorageConfig`; the
    oracle uses it to build twin databases over the same rows with
    different physical layouts (plain / zone-mapped / compressed)."""
    db = Database(memory_bytes=memory_bytes, storage=storage)
    for table in dataset.tables.values():
        created = db.catalog.create_table(
            table.name,
            Schema([Column(name, dtype) for name, dtype in table.columns]),
        )
        created.extend(table.rows)
    db.finalize()
    return db


def extract_dataset(db: Database) -> Dataset:
    """Read a live database back into a portable dataset.

    This is how a disagreement found against *any* database (TPC-H, the
    paper example, a fuzz dataset) becomes shrinkable: decode every column
    to Python values and rebuild from there.
    """
    dataset = Dataset()
    for table in db.catalog.tables.values():
        columns = [(c.name, c.dtype) for c in table.schema]
        decoded_columns = []
        for column_def, column in zip(table.schema, table.columns):
            decoded_columns.append(
                [_decode(db, value, column_def.dtype) for value in column]
            )
        rows = list(zip(*decoded_columns)) if decoded_columns else []
        if table.row_count == 0:
            rows = []
        dataset.tables[table.name] = TableData(table.name, columns, rows)
    return dataset


def _decode(db: Database, value, dtype: DataType):
    if dtype is DataType.DECIMAL:
        return value / 100
    if dtype is DataType.DATE:
        return decode_date(value)
    if dtype is DataType.STRING:
        return db.catalog.dictionary.value_of(value)
    return value


def random_dataset(seed: int) -> Dataset:
    """A seeded 3-to-4-table dataset with fuzz-friendly pathologies."""
    rng = Random(seed)
    dataset = Dataset()

    n_dim = rng.randint(6, 14)
    dim_rows = []
    for i in range(1, n_dim + 1):
        dim_rows.append((
            i,
            rng.choice(_STRING_POOL),
            rng.randint(-20, 20),
            rng.choice([0, 1]),
        ))
    dataset.tables["dim"] = TableData(
        "dim",
        [("id", DataType.INT), ("tag", DataType.STRING),
         ("score", DataType.INT), ("flag", DataType.BOOL)],
        dim_rows,
    )

    hot_dim = rng.randint(1, n_dim)  # the skew target
    n_mid = rng.randint(16, 40)
    mid_rows = []
    for i in range(1, n_mid + 1):
        roll = rng.random()
        if roll < 0.40:
            dim_id = hot_dim  # skew: many children of one parent
        elif roll < 0.55:
            dim_id = 0  # zero sentinel: "no parent"
        elif roll < 0.62:
            dim_id = n_dim + rng.randint(1, 3)  # dangling reference
        else:
            dim_id = rng.randint(1, n_dim)
        mid_rows.append((
            i,
            dim_id,
            round(rng.uniform(-40.0, 120.0), 2),
            rng.choice(["2020-01-01", "2020-06-15", "2020-12-31",
                        "2021-02-28", "2021-07-04"]),
        ))
    dataset.tables["mid"] = TableData(
        "mid",
        [("id", DataType.INT), ("dim_id", DataType.INT),
         ("amount", DataType.DECIMAL), ("placed", DataType.DATE)],
        mid_rows,
    )

    n_fact = rng.randint(20, 56)
    hot_mid = rng.randint(1, n_mid)
    fact_rows = []
    for i in range(1, n_fact + 1):
        roll = rng.random()
        if roll < 0.35:
            mid_id = hot_mid
        elif roll < 0.50:
            mid_id = 0
        else:
            mid_id = rng.randint(1, n_mid)
        fact_rows.append((
            i,
            mid_id,
            rng.randint(0, 9),
            round(rng.uniform(0.0, 50.0), 2),
            rng.choice(_STRING_POOL),
        ))
    dataset.tables["fact"] = TableData(
        "fact",
        [("id", DataType.INT), ("mid_id", DataType.INT),
         ("qty", DataType.INT), ("price", DataType.DECIMAL),
         ("label", DataType.STRING)],
        fact_rows,
    )

    if rng.random() < 0.5:
        # an empty relation: scans, joins, and aggregates over nothing
        dataset.tables["void"] = TableData(
            "void",
            [("id", DataType.INT), ("dim_id", DataType.INT),
             ("weight", DataType.INT)],
            [],
        )
        dataset.foreign_keys.append(ForeignKey("void", "dim_id", "dim", "id"))

    dataset.foreign_keys.extend([
        ForeignKey("mid", "dim_id", "dim", "id"),
        ForeignKey("fact", "mid_id", "mid", "id"),
    ])
    return dataset
