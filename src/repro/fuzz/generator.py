"""Grammar-driven SQL generation over a fuzz dataset's schema.

The generator walks the dataset's catalog — table schemas, column types,
and foreign-key edges — and emits queries the binder accepts by
construction: every column reference is alias-qualified, joins only follow
declared FK edges, arithmetic respects the type rules (``%`` stays
integral, ``/`` divides by non-zero literals), string literals appear only
in comparison positions, and LIMIT is only attached once an ORDER BY over
every output column makes the prefix deterministic.

Literals are sampled from the actual data (plus near-misses and values
absent from the dictionary) so predicates select interesting, non-empty,
non-total subsets most of the time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.catalog import DataType
from repro.sql import ast, unparse
from repro.fuzz.dataset import Dataset, TableData

_NUMERIC = (DataType.INT, DataType.DECIMAL)
_COMPARE_OPS = ["=", "<>", "<", "<=", ">", ">="]


@dataclass
class GeneratedQuery:
    """One fuzz case: SQL text plus the metadata the oracle needs."""

    sql: str
    stmt: ast.SelectStmt
    aliases: list[str]  # table aliases, for join-order-hint permutations
    # (output column index, ascending) for each ORDER BY key that refers
    # to a select item — the oracle checks sortedness against these
    ordered_by: list[tuple[int, bool]] = field(default_factory=list)
    features: frozenset[str] = frozenset()


class QueryGenerator:
    """Seeded query source for one dataset."""

    def __init__(self, dataset: Dataset, rng: Random):
        self.dataset = dataset
        self.rng = rng
        # join graph: (table_a, col_a, table_b, col_b), symmetric lookup
        self._edges: dict[str, list[tuple[str, str, str]]] = {}
        for fk in dataset.foreign_keys:
            self._edges.setdefault(fk.child, []).append(
                (fk.child_column, fk.parent, fk.parent_column)
            )
            self._edges.setdefault(fk.parent, []).append(
                (fk.parent_column, fk.child, fk.child_column)
            )

    # -- schema walking ------------------------------------------------------

    def _pick_tables(self) -> list[tuple[str, str, "ast.Node | None"]]:
        """Choose 1-3 connected tables; returns (table, alias, join pred)."""
        rng = self.rng
        names = list(self.dataset.tables)
        start = rng.choice(names)
        chosen = [(start, "t0", None)]
        alias_of = {start: "t0"}
        want = rng.choice([1, 1, 2, 2, 2, 3])
        while len(chosen) < want:
            # extend from any already-chosen table along an FK edge
            frontier = []
            for table in alias_of:
                for col, other, other_col in self._edges.get(table, []):
                    if other not in alias_of:
                        frontier.append((table, col, other, other_col))
            if not frontier:
                break
            table, col, other, other_col = rng.choice(frontier)
            alias = f"t{len(chosen)}"
            alias_of[other] = alias
            pred = ast.BinaryOp(
                "=",
                ast.Identifier(alias_of[table], col),
                ast.Identifier(alias, other_col),
            )
            chosen.append((other, alias, pred))
        return chosen

    def _columns(self, tables, types=None) -> list[tuple[str, str, DataType]]:
        """(alias, column, dtype) over the chosen tables, optionally typed."""
        out = []
        for table, alias, _ in tables:
            for name, dtype in self.dataset.tables[table].columns:
                if types is None or dtype in types:
                    out.append((alias, name, dtype))
        return out

    def _table_of(self, tables, alias: str) -> TableData:
        for table, a, _ in tables:
            if a == alias:
                return self.dataset.tables[table]
        raise KeyError(alias)

    # -- literals ------------------------------------------------------------

    def _literal_for(self, tables, alias, column, dtype) -> ast.Node:
        """A literal comparable with the column: usually a real value."""
        rng = self.rng
        values = self._table_of(tables, alias).values_of(column)
        if dtype is DataType.STRING:
            if values and rng.random() < 0.75:
                return ast.StringLit(rng.choice(values))
            return ast.StringLit(rng.choice(["missing", "zz", ""]))
        if dtype is DataType.DATE:
            if values and rng.random() < 0.75:
                return ast.DateLit(rng.choice(values))
            return ast.DateLit(rng.choice(["2019-12-31", "2021-12-31"]))
        if dtype is DataType.BOOL:
            return ast.NumberLit(rng.choice([0, 1]))
        if values and rng.random() < 0.7:
            base = rng.choice(values)
            if dtype is DataType.INT:
                return ast.NumberLit(int(base) + rng.choice([-1, 0, 0, 1]))
            return ast.NumberLit(round(float(base) + rng.choice([-0.5, 0.0, 0.01]), 2))
        if dtype is DataType.INT:
            return ast.NumberLit(rng.randint(-10, 10))
        return ast.NumberLit(round(rng.uniform(-20.0, 60.0), 2))

    # -- scalar expressions --------------------------------------------------

    def _numeric_expr(self, tables, depth: int = 0, ints_only: bool = False) -> ast.Node:
        rng = self.rng
        wanted = (DataType.INT,) if ints_only else _NUMERIC
        columns = self._columns(tables, wanted)
        if not columns or (depth > 0 and rng.random() < 0.35):
            return ast.NumberLit(rng.randint(-5, 20))
        alias, column, dtype = rng.choice(columns)
        base = ast.Identifier(alias, column)
        if depth >= 2:
            return base
        roll = rng.random()
        if roll < 0.45:
            return base
        if roll < 0.60:
            return ast.BinaryOp(
                rng.choice(["+", "-"]),
                base,
                self._numeric_expr(tables, depth + 1, ints_only),
            )
        if roll < 0.72:
            return ast.BinaryOp("*", base, ast.NumberLit(rng.randint(1, 4)))
        if roll < 0.82 and dtype is DataType.INT:
            # modulo: integer left, non-zero integer literal right
            return ast.BinaryOp("%", base, ast.NumberLit(rng.randint(2, 5)))
        if roll < 0.90:
            return self._case_expr(tables, depth + 1)
        return ast.UnaryOp("-", base)

    def _case_expr(self, tables, depth: int = 0) -> ast.Node:
        rng = self.rng
        # the binder takes the CASE result type from the first branch, so
        # either keep every branch integral or pin the first branch to
        # DECIMAL (``+ 0.0``) so later int branches widen into it
        ints_only = rng.random() < 0.5
        whens = [
            (
                self._predicate(tables, depth + 1),
                self._numeric_expr(tables, 2, ints_only),
            )
            for _ in range(rng.choice([1, 1, 2]))
        ]
        default = (
            self._numeric_expr(tables, 2, ints_only)
            if rng.random() < 0.8
            else None
        )
        if not ints_only:
            cond, value = whens[0]
            whens[0] = (cond, ast.BinaryOp("+", value, ast.NumberLit(0.0)))
        return ast.Case(tuple(whens), default)

    # -- predicates ----------------------------------------------------------

    def _comparison(self, tables) -> ast.Node:
        rng = self.rng
        columns = self._columns(tables)
        alias, column, dtype = rng.choice(columns)
        lhs = ast.Identifier(alias, column)
        if dtype is DataType.STRING:
            roll = rng.random()
            if roll < 0.40:
                return ast.BinaryOp(
                    rng.choice(["=", "<>"]),
                    lhs,
                    self._literal_for(tables, alias, column, dtype),
                )
            if roll < 0.70:
                return self._like(tables, alias, column)
            return self._in_list(tables, alias, column, dtype)
        if dtype is DataType.BOOL:
            # the binder has no int->bool coercion; arithmetic widens the
            # flag to int, so compare (flag + 0) against 0/1
            widened = ast.BinaryOp("+", lhs, ast.NumberLit(0))
            return ast.BinaryOp(
                rng.choice(["=", "<>"]), widened, ast.NumberLit(rng.choice([0, 1]))
            )
        roll = rng.random()
        if roll < 0.55:
            return ast.BinaryOp(
                rng.choice(_COMPARE_OPS),
                lhs,
                self._literal_for(tables, alias, column, dtype),
            )
        if roll < 0.70:
            low = self._literal_for(tables, alias, column, dtype)
            high = self._literal_for(tables, alias, column, dtype)
            if dtype in _NUMERIC and low.value > high.value:
                low, high = high, low
            elif dtype is DataType.DATE and low.value > high.value:
                low, high = high, low
            return ast.Between(lhs, low, high, negated=rng.random() < 0.25)
        if roll < 0.82 and dtype in _NUMERIC:
            return self._in_list(tables, alias, column, dtype)
        # column-vs-column comparison of the same type
        same = [c for c in self._columns(tables, (dtype,))]
        other_alias, other_col, _ = rng.choice(same)
        return ast.BinaryOp(
            rng.choice(_COMPARE_OPS), lhs, ast.Identifier(other_alias, other_col)
        )

    def _like(self, tables, alias, column) -> ast.Node:
        rng = self.rng
        values = [v for v in self._table_of(tables, alias).values_of(column) if v]
        if values and rng.random() < 0.8:
            value = rng.choice(values)
            pick = rng.random()
            if pick < 0.3:
                pattern = value[: max(1, len(value) // 2)] + "%"
            elif pick < 0.6:
                pattern = "%" + value[len(value) // 2:]
            elif pick < 0.8:
                middle = value[len(value) // 3: 2 * len(value) // 3] or value[:1]
                pattern = f"%{middle}%"
            else:
                pattern = value.replace(value[0], "_", 1)
        else:
            pattern = rng.choice(["z%", "%q", "%xyz%", "_"])
        return ast.Like(
            ast.Identifier(alias, column), pattern, negated=rng.random() < 0.25
        )

    def _in_list(self, tables, alias, column, dtype) -> ast.Node:
        rng = self.rng
        count = rng.choice([1, 2, 3])
        values = tuple(
            self._literal_for(tables, alias, column, dtype) for _ in range(count)
        )
        return ast.InList(
            ast.Identifier(alias, column), values, negated=rng.random() < 0.25
        )

    def _predicate(self, tables, depth: int = 0) -> ast.Node:
        rng = self.rng
        if depth < 2 and rng.random() < 0.30:
            left = self._predicate(tables, depth + 1)
            right = self._predicate(tables, depth + 1)
            combined = ast.BinaryOp(rng.choice(["and", "or"]), left, right)
            if rng.random() < 0.15:
                return ast.UnaryOp("not", combined)
            return combined
        return self._comparison(tables)

    # -- aggregates ----------------------------------------------------------

    def _aggregate(self, tables) -> ast.Node:
        rng = self.rng
        roll = rng.random()
        if roll < 0.25:
            return ast.FuncCall("count", (ast.Star(),))
        numeric = self._columns(tables, _NUMERIC)
        orderable = self._columns(
            tables, (DataType.INT, DataType.DECIMAL, DataType.DATE, DataType.STRING)
        )
        if roll < 0.70 and numeric:
            func = rng.choice(["sum", "sum", "avg"])
            if rng.random() < 0.6:
                alias, column, _ = rng.choice(numeric)
                arg: ast.Node = ast.Identifier(alias, column)
            else:
                arg = self._numeric_expr(tables, 1)
            return ast.FuncCall(func, (arg,))
        alias, column, _ = rng.choice(orderable)
        return ast.FuncCall(
            rng.choice(["min", "max"]), (ast.Identifier(alias, column),)
        )

    # -- whole statements ----------------------------------------------------

    def generate(self) -> GeneratedQuery:
        rng = self.rng
        tables = self._pick_tables()
        features: set[str] = set()
        if len(tables) > 1:
            features.add("join")

        stmt = ast.SelectStmt()
        stmt.tables = [ast.TableRef(table, alias) for table, alias, _ in tables]

        conjuncts = [pred for _, _, pred in tables if pred is not None]
        n_filters = rng.choice([0, 1, 1, 2])
        for _ in range(n_filters):
            conjuncts.append(self._predicate(tables))
            features.add("filter")
        where: ast.Node | None = None
        for pred in conjuncts:
            where = pred if where is None else ast.BinaryOp("and", where, pred)
        stmt.where = where

        shape = rng.random()
        if shape < 0.45:
            self._grouped(stmt, tables, features)
        elif shape < 0.60:
            self._scalar_aggregates(stmt, tables, features)
        else:
            self._projection(stmt, tables, features)

        ordered_by = self._order(stmt, features)
        return GeneratedQuery(
            sql=unparse(stmt),
            stmt=stmt,
            aliases=[alias for _, alias, _ in tables],
            ordered_by=ordered_by,
            features=frozenset(features),
        )

    def _grouped(self, stmt, tables, features) -> None:
        rng = self.rng
        features.add("group_by")
        n_keys = rng.choice([1, 1, 2])
        keys: list[ast.Node] = []
        candidates = self._columns(tables)
        for _ in range(n_keys):
            if rng.random() < 0.8 or not candidates:
                alias, column, _ = rng.choice(candidates)
                key: ast.Node = ast.Identifier(alias, column)
            else:
                key = self._numeric_expr(tables, 1)
                features.add("group_by_expr")
            if key not in keys:
                keys.append(key)
        stmt.group_by = keys
        stmt.items = [
            ast.SelectItem(key, f"c{i}") for i, key in enumerate(keys)
        ]
        n_aggs = rng.choice([1, 1, 2])
        for i in range(n_aggs):
            agg = self._aggregate(tables)
            features.add("aggregate")
            stmt.items.append(ast.SelectItem(agg, f"c{len(keys) + i}"))
        if rng.random() < 0.30:
            features.add("having")
            agg = self._aggregate(tables)
            stmt.having = ast.BinaryOp(
                rng.choice(_COMPARE_OPS), agg, ast.NumberLit(rng.randint(-5, 40))
            )

    def _scalar_aggregates(self, stmt, tables, features) -> None:
        rng = self.rng
        features.add("aggregate")
        n_aggs = rng.choice([1, 2, 2, 3])
        stmt.items = [
            ast.SelectItem(self._aggregate(tables), f"c{i}")
            for i in range(n_aggs)
        ]

    def _projection(self, stmt, tables, features) -> None:
        rng = self.rng
        features.add("projection")
        n_items = rng.choice([1, 2, 2, 3])
        items: list[ast.SelectItem] = []
        columns = self._columns(tables)
        for i in range(n_items):
            roll = rng.random()
            if roll < 0.6:
                alias, column, _ = rng.choice(columns)
                expr: ast.Node = ast.Identifier(alias, column)
            elif roll < 0.85:
                expr = self._numeric_expr(tables)
                features.add("arith")
            else:
                expr = self._case_expr(tables)
                features.add("case")
            items.append(ast.SelectItem(expr, f"c{i}"))
        stmt.items = items
        if rng.random() < 0.20 and all(
            isinstance(item.expr, ast.Identifier) for item in items
        ):
            stmt.distinct = True
            features.add("distinct")

    def _order(self, stmt, features) -> list[tuple[int, bool]]:
        """Maybe attach ORDER BY (over select-item aliases) and LIMIT."""
        rng = self.rng
        if rng.random() < 0.45:
            return []
        features.add("order_by")
        indexes = list(range(len(stmt.items)))
        rng.shuffle(indexes)
        keep = rng.randint(1, len(indexes))
        ordered: list[tuple[int, bool]] = []
        for index in indexes[:keep]:
            ascending = rng.random() < 0.7
            stmt.order_by.append(
                ast.OrderItem(
                    ast.Identifier(None, stmt.items[index].alias), ascending
                )
            )
            ordered.append((index, ascending))
        # a LIMIT is only deterministic when the sort covers every output
        # column, making the row order total — and only when no sort key is
        # a float (avg), where near-ties could cut the prefix differently
        # across executors
        if (
            keep == len(indexes)
            and not any(_contains_avg(item.expr) for item in stmt.items)
            and rng.random() < 0.5
        ):
            stmt.limit = rng.randint(1, 12)
            features.add("limit")
        return ordered


def _contains_avg(node: ast.Node) -> bool:
    if isinstance(node, ast.FuncCall):
        if node.name == "avg":
            return True
        return any(_contains_avg(a) for a in node.args)
    if isinstance(node, ast.UnaryOp):
        return _contains_avg(node.operand)
    if isinstance(node, ast.BinaryOp):
        return _contains_avg(node.left) or _contains_avg(node.right)
    if isinstance(node, ast.Case):
        return any(
            _contains_avg(c) or _contains_avg(v) for c, v in node.whens
        ) or (node.default is not None and _contains_avg(node.default))
    return False
