"""The fuzzing loop: generate, check, shrink, persist.

``run_fuzz`` drives a seeded campaign: every ``rotate_every`` queries a
fresh random dataset is built (derived deterministically from the master
seed), each generated query runs through the full differential oracle,
and any disagreement is minimized by the shrinker and written to the
corpus directory as a self-contained JSON repro — dataset rows included —
that ``repro.fuzz.corpus`` can replay without the original seed.

With ``check_fleet`` on, every rotation also builds *fleet twins*: the
same dataset behind the :mod:`repro.fleet` router at 1, 2, and 4 shards
(hash and range partitioned).  The ``fleet-sharded`` oracle requires
bag-equality of the router's scatter/gather results against the
single-node reference at every shard count, and exact equality between
each fleet's merged profile sample total and the sum of its per-shard
totals.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from repro.fuzz.dataset import Dataset, build_database, random_dataset
from repro.fuzz.generator import QueryGenerator
from repro.fuzz.oracle import CheckResult, DifferentialOracle
from repro.fuzz.shrink import Shrinker
from repro.storage import StorageConfig

#: storage twins use deliberately tiny segments so even fuzz-sized tables
#: split into many segments with live zone maps
TWIN_SEGMENT_ROWS = 16

# a per-dataset cap on consecutive binder rejections: the generator is
# ~99% valid, so hitting this means it has a systematic grammar gap
MAX_REJECTS_PER_QUERY = 25


@dataclass
class FuzzFailure:
    """One disagreement, in both original and minimized form."""

    seed: int
    index: int
    sql: str
    configs: list[str]
    reasons: list[str]
    shrunk_sql: str | None = None
    shrunk_dataset: Dataset | None = None
    shrunk_operators: int | None = None
    corpus_path: str | None = None


@dataclass
class FuzzReport:
    seed: int
    budget: int
    queries: int = 0
    executions: int = 0
    rejected: int = 0
    datasets: int = 0
    elapsed: float = 0.0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _persist_failure(
    corpus_dir: Path, failure: FuzzFailure, dataset: Dataset
) -> Path:
    corpus_dir.mkdir(parents=True, exist_ok=True)
    name = f"fuzz-seed{failure.seed}-q{failure.index}"
    document = {
        "name": name,
        "description": (
            "minimized differential disagreement: "
            + "; ".join(failure.reasons[:3])
        ),
        "source": f"run_fuzz(seed={failure.seed}), query #{failure.index}",
        "sql": failure.shrunk_sql or failure.sql,
        "original_sql": failure.sql,
        "configs": failure.configs,
        "dataset": (failure.shrunk_dataset or dataset).to_json(),
    }
    path = corpus_dir / f"{name}.json"
    path.write_text(json.dumps(document, indent=1) + "\n")
    return path


def run_fuzz(
    seed: int,
    budget: int,
    *,
    max_hints: int = 4,
    rotate_every: int = 25,
    check_pgo: bool = True,
    check_vm_parity: bool = True,
    check_serve: bool = True,
    check_storage: bool = True,
    check_fleet: bool = True,
    inject_fault: str | None = None,
    time_limit: float | None = None,
    corpus_dir: str | Path | None = None,
    shrink_failures: bool = True,
    log=None,
) -> FuzzReport:
    """Run ``budget`` generated queries through the differential oracle."""
    report = FuzzReport(seed=seed, budget=budget)
    emit = log or (lambda message: None)
    started = time.monotonic()
    master = Random(seed)

    dataset: Dataset | None = None
    db = None
    generator = None
    storage_twins: dict = {}
    fleet_twins: dict = {}

    for index in range(budget):
        if time_limit is not None and time.monotonic() - started > time_limit:
            emit(f"time limit reached after {index} queries")
            break
        if dataset is None or (rotate_every and index % rotate_every == 0):
            dataset_seed = master.randint(0, 2**31 - 1)
            dataset = random_dataset(dataset_seed)
            db = build_database(dataset)
            if check_storage:
                # the same rows under three physical layouts: flat,
                # zone-mapped (byte-identical to flat), and compressed
                storage_twins = {
                    "plain": build_database(
                        dataset,
                        storage=StorageConfig.plain(
                            segment_rows=TWIN_SEGMENT_ROWS
                        ),
                    ),
                    "pruned": build_database(
                        dataset,
                        storage=StorageConfig.pruned(
                            segment_rows=TWIN_SEGMENT_ROWS
                        ),
                    ),
                    "encoded": build_database(
                        dataset,
                        storage=StorageConfig(
                            segment_rows=TWIN_SEGMENT_ROWS
                        ),
                    ),
                }
            if check_fleet:
                # the same rows behind the fleet router at three shard
                # counts (1 exercises degenerate routing; 4 uses range
                # partitioning so both schemes stay covered)
                from repro.fleet import Fleet, FleetConfig

                fleet_twins = {
                    f"sharded-{n}": Fleet.from_dataset(
                        dataset,
                        FleetConfig(
                            shards=n, workers=2, morsel_size=64,
                            scheme="range" if n == 4 else "hash",
                        ),
                    )
                    for n in (1, 2, 4)
                }
            generator = QueryGenerator(dataset, Random(master.randint(0, 2**31 - 1)))
            report.datasets += 1
        oracle = DifferentialOracle(
            db, max_hints=max_hints, check_pgo=check_pgo,
            check_vm_parity=check_vm_parity, check_serve=check_serve,
            inject_fault=inject_fault, storage_twins=storage_twins,
            fleet_twins=fleet_twins,
        )

        result: CheckResult | None = None
        for _attempt in range(MAX_REJECTS_PER_QUERY):
            query = generator.generate()
            result = oracle.check(
                query.sql, aliases=query.aliases, ordered_by=query.ordered_by
            )
            if not result.rejected:
                break
            report.rejected += 1
        if result is None or result.rejected:
            emit(f"query {index}: generator kept producing rejected queries")
            continue

        report.queries += 1
        report.executions += sum(
            1 for o in result.outcomes if o.kind != "skipped"
        )

        if result.disagreements:
            failure = FuzzFailure(
                seed=seed,
                index=index,
                sql=query.sql,
                configs=[d.config for d in result.disagreements],
                reasons=[d.reason for d in result.disagreements],
            )
            emit(
                f"query {index}: DISAGREEMENT "
                f"({', '.join(failure.configs)}) — {query.sql}"
            )
            if shrink_failures:
                shrunk = Shrinker(
                    dataset, query.sql,
                    max_hints=min(max_hints, 2),
                    check_pgo=False,
                    # only pay for profiled shrink runs when the
                    # disagreement is itself a fast-VM parity break
                    check_vm_parity=any(
                        c.startswith("vm-parity") for c in failure.configs
                    ),
                    inject_fault=inject_fault,
                ).run()
                if shrunk is not None:
                    failure.shrunk_sql = shrunk.sql
                    failure.shrunk_dataset = shrunk.dataset
                    failure.shrunk_operators = shrunk.operators
                    emit(
                        f"  shrunk to {shrunk.operators} operators, "
                        f"{shrunk.row_total} rows: {shrunk.sql}"
                    )
            if corpus_dir is not None:
                path = _persist_failure(Path(corpus_dir), failure, dataset)
                failure.corpus_path = str(path)
                emit(f"  repro written to {path}")
            report.failures.append(failure)

    report.elapsed = time.monotonic() - started
    return report
