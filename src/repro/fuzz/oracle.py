"""Multi-executor differential oracle.

One query, many executors: the compiled backend single- and multi-worker
(on the template-translated fast VM), the same program on the block
interpreter (``fast_vm=False``), the reference interpreter, the
unoptimized backend, groupjoin fusion, join-order-hint permutations, the
PGO path (profile, cold execute, warm plan-cache execute), tiered
execution (warmed past the promotion threshold so the query runs on
tier-2 profile-specialized traces), and the concurrent query service
(8 in-flight copies sharing 4 workers, checked for per-query counter
isolation against a single-query run — once with the default tiering
threshold and once with promotion forced mid-workload).  All of
them must agree on the result bag —
with ordered-prefix semantics when the query carries ORDER BY, and
relative float tolerance for aggregate arithmetic whose evaluation order
legitimately differs across executors (morsel-parallel partial sums).

Frontend rejections (bind or plan errors on the reference path) mean the
query is uninteresting, not wrong; consistent *runtime* errors across all
executors count as agreement.  A config whose plan is impossible (a
disconnected join-order hint) is skipped, never compared.

Beyond result bags, the oracle holds the fast VM to a stronger contract:
with the PMU armed, the translated engine must reproduce the interpreter's
machine state bit-for-bit — instruction/cycle/load/store counters, cache
and branch-predictor statistics, and the full PMU sample stream (ip, tsc,
branch_taken, memaddr per sample).  Tier-2 traces are held to the same
bit-exact contract twice: once running specialized to completion, and
once with the forced-deopt guard tripped so the very first specialized
loop edge flushes its deferred state and demotes back to tier 1
mid-query.  Any divergence is a disagreement.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.errors import CatalogError, PlanError, ReproError, SqlError
from repro.plan.physical import PlannerOptions

REL_TOLERANCE = 1e-7
ABS_TOLERANCE = 1e-9
# compiled executions run under an instruction budget so a miscompiled
# loop cannot hang the fuzzer (the VM raises instead)
INSTRUCTION_LIMIT = 200_000_000


@dataclass
class Outcome:
    """What one executor config produced for one query."""

    config: str
    kind: str  # "rows" | "error" | "skipped"
    rows: list[tuple] | None = None
    error: str | None = None


@dataclass
class Disagreement:
    """A config whose outcome differs from the reference."""

    config: str
    reference: Outcome
    outcome: Outcome
    reason: str


@dataclass
class CheckResult:
    sql: str
    rejected: bool = False
    reject_reason: str | None = None
    outcomes: list[Outcome] = field(default_factory=list)
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        return not self.rejected and not self.disagreements


def canonical_row(row: tuple) -> tuple:
    """Round floats to 9 significant digits for exact-bag comparison."""
    return tuple(
        float(f"{v:.9g}") if isinstance(v, float) else v for v in row
    )


def _values_close(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        return math.isclose(a, b, rel_tol=REL_TOLERANCE, abs_tol=ABS_TOLERANCE)
    return a == b


def _rows_close(a: tuple, b: tuple) -> bool:
    return len(a) == len(b) and all(
        _values_close(x, y) for x, y in zip(a, b)
    )


def bags_equal(got: list[tuple], want: list[tuple]) -> bool:
    """Multiset equality with float tolerance.

    Exact comparison on canonicalized rows first; only on mismatch fall
    back to greedy tolerant matching (results here are small — tens of
    rows — so the quadratic fallback is cheap).
    """
    if len(got) != len(want):
        return False
    from collections import Counter

    if Counter(map(canonical_row, got)) == Counter(map(canonical_row, want)):
        return True
    remaining = list(want)
    for row in got:
        for i, candidate in enumerate(remaining):
            if _rows_close(row, candidate):
                del remaining[i]
                break
        else:
            return False
    return True


def _key_leq(a, b, ascending: bool) -> bool:
    """Is ``a`` ordered no later than ``b`` for one sort key?"""
    if _values_close(a, b):
        return True
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    return a <= b if ascending else a >= b


def is_sorted(rows: list[tuple], ordered_by: list[tuple[int, bool]]) -> bool:
    """Check rows respect the ORDER BY keys (ties break to later keys)."""
    for prev, row in zip(rows, rows[1:]):
        for index, ascending in ordered_by:
            if _values_close(prev[index], row[index]):
                continue
            if not _key_leq(prev[index], row[index], ascending):
                return False
            break
    return True


class DifferentialOracle:
    """Runs one query through every executor config and compares."""

    def __init__(
        self,
        db,
        *,
        max_hints: int = 4,
        check_pgo: bool = True,
        check_vm_parity: bool = True,
        check_serve: bool = True,
        inject_fault: str | None = None,
        instruction_limit: int = INSTRUCTION_LIMIT,
        storage_twins: dict | None = None,
        fleet_twins: dict | None = None,
    ):
        self.db = db
        self.max_hints = max_hints
        self.check_pgo = check_pgo
        self.check_vm_parity = check_vm_parity
        self.check_serve = check_serve
        # when set, the named fault is injected into the *reference*
        # compile — every healthy executor should then catch the damage
        self.inject_fault = inject_fault
        self.instruction_limit = instruction_limit
        # name -> Database over the same rows with a different physical
        # layout; "plain" and "pruned" (when both present) additionally
        # carry the counter-plausibility contract: identical bytes, so
        # zone-map skipping may only *save* instructions (modulo the
        # per-segment bookkeeping budget)
        self.storage_twins = storage_twins or {}
        # name -> repro.fleet.Fleet over the same rows sharded N ways;
        # every shard count must reproduce the single-node bag, and each
        # fleet's merged profile totals must equal the sum of its
        # per-shard totals (the "fleet-sharded" oracle)
        self.fleet_twins = fleet_twins or {}

    # -- executor configs ----------------------------------------------------

    def _run(self, config: str, thunk) -> Outcome:
        try:
            result = thunk()
        except PlanError as exc:
            if config.startswith("hint["):
                # a disconnected join order is the planner refusing the
                # config, not a wrong answer
                return Outcome(config, "skipped", error=str(exc))
            return Outcome(config, "error", error=f"PlanError: {exc}")
        except Exception as exc:  # noqa: BLE001 - any runtime failure counts
            return Outcome(config, "error", error=f"{type(exc).__name__}: {exc}")
        return Outcome(config, "rows", rows=list(result.rows))

    def outcomes_for(self, sql: str, aliases: list[str]) -> list[Outcome]:
        db = self.db
        fault = self.inject_fault
        limit = self.instruction_limit
        runs: list[tuple[str, object]] = [
            (
                "compiled-w1",
                lambda: db.execute(
                    sql, inject_fault=fault, instruction_limit=limit
                ),
            ),
            (
                "compiled-w4-m7",
                lambda: db.execute(
                    sql, workers=4, morsel_size=7,
                    inject_fault=fault, instruction_limit=limit,
                ),
            ),
            ("interpreted", lambda: db.execute_interpreted(sql)),
            (
                "compiled-novm",
                lambda: db.execute(
                    sql, fast_vm=False,
                    inject_fault=fault, instruction_limit=limit,
                ),
            ),
            (
                "unoptimized",
                lambda: db.execute(
                    sql, optimize_backend=False,
                    inject_fault=fault, instruction_limit=limit,
                ),
            ),
            (
                "groupjoin",
                lambda: db.execute(
                    sql,
                    planner_options=PlannerOptions(enable_groupjoin=True),
                    inject_fault=fault, instruction_limit=limit,
                ),
            ),
        ]
        if fault is None:
            runs.append(("tiered", lambda: self._tiered_execute(sql)))
        if len(aliases) > 1:
            hints = list(itertools.permutations(aliases))[: self.max_hints]
            for i, hint in enumerate(hints):
                order = list(hint)
                runs.append((
                    f"hint[{','.join(order)}]",
                    lambda order=order: db.execute(
                        sql, join_order_hint=order,
                        inject_fault=fault, instruction_limit=limit,
                    ),
                ))
        outcomes = [self._run(config, thunk) for config, thunk in runs]
        if self.storage_twins and fault is None:
            outcomes.extend(self._storage_outcomes(sql))
        if self.fleet_twins and fault is None:
            outcomes.extend(self._fleet_outcomes(sql))
        if self.check_pgo and fault is None:
            outcomes.extend(self._pgo_outcomes(sql))
        if self.check_serve and fault is None:
            outcomes.append(self._serve_outcome(sql, "serve-concurrent"))
            # same isolation contract, but with tier-2 promotion forced
            # mid-workload: some of the 8 in-flight copies run tier 1,
            # later ones tier 2, and the counters must not notice
            outcomes.append(self._serve_outcome(
                sql, "serve-tiered", tiering_hot_instructions=1,
            ))
        return outcomes

    def _storage_outcomes(self, sql: str) -> list[Outcome]:
        """Physical-layout twins: every layout must produce the same bag,
        and the pruned twin (byte-identical to plain, zone-map branches
        added) must not execute more instructions than the plain twin
        beyond the per-segment bookkeeping budget — pruning that *costs*
        instructions means the skip logic is wrong even when the answer
        happens to agree."""
        outcomes = []
        results: dict[str, object] = {}
        for name, twin in self.storage_twins.items():

            def thunk(name=name, twin=twin):
                result = twin.execute(
                    sql, instruction_limit=self.instruction_limit
                )
                results[name] = result
                return result

            outcomes.append(self._run(f"storage-{name}", thunk))
        plain = results.get("plain")
        pruned = results.get("pruned")
        if plain is not None and pruned is not None:
            twin = self.storage_twins["pruned"]
            segments = max(
                (t.segment_count for t in twin.storage.tables.values()),
                default=0,
            )
            budget = 128 * (segments + 1)
            if pruned.instructions > plain.instructions + budget:
                outcomes.append(Outcome(
                    "storage-counters", "error",
                    error=(
                        "counter plausibility violated: pruned layout ran "
                        f"{pruned.instructions} instructions vs plain "
                        f"{plain.instructions} (budget +{budget})"
                    ),
                ))
        return outcomes

    def _fleet_outcomes(self, sql: str) -> list[Outcome]:
        """Sharded serving twins: the router's scatter/gather over N
        shards must reproduce the single-node bag for every shard count,
        and each fleet's merged profile snapshot must account for exactly
        the sum of its per-shard sample totals.  A router refusal (the
        statement cannot be distributed — e.g. the partitioned table
        inside a subquery) is a skip, not a wrong answer."""
        from repro.serve import COMPILE_ERROR, ServiceError

        outcomes = []
        for name, fleet in self.fleet_twins.items():
            config = f"fleet-{name}"
            try:
                ticket = fleet.submit(
                    sql, tenant="fuzz",
                    max_instructions=self.instruction_limit,
                )
                fleet.drain()
                result = fleet.result(ticket)
            except ServiceError as exc:
                if exc.code == COMPILE_ERROR:
                    # submit-time COMPILE_ERROR is the router refusing to
                    # distribute (the frontend gate already accepted the
                    # statement), so the config is impossible, not wrong
                    outcomes.append(Outcome(config, "skipped", error=str(exc)))
                else:
                    outcomes.append(Outcome(
                        config, "error", error=f"ServiceError: {exc.code}"
                    ))
                continue
            except Exception as exc:  # noqa: BLE001 - compared by kind
                outcomes.append(Outcome(
                    config, "error", error=f"{type(exc).__name__}: {exc}"
                ))
                continue
            if result.status == "ok":
                outcomes.append(Outcome(
                    config, "rows", rows=list(result.rows)
                ))
            elif result.status == "failed":
                outcomes.append(Outcome(
                    config, "error",
                    error=f"ServiceError: {result.error_code}",
                ))
            else:
                outcomes.append(Outcome(
                    config, "error",
                    error=f"unexpected fleet status {result.status!r}",
                ))
            snapshot = fleet.profile_snapshot()
            if snapshot is not None:
                shard_total = sum(
                    shard.profile_snapshot().samples
                    for shard in fleet.services
                )
                if snapshot.samples != shard_total:
                    outcomes.append(Outcome(
                        f"{config}-profile-totals", "error",
                        error=(
                            "fleet profile totals violated: merged "
                            f"{snapshot.samples} samples vs per-shard sum "
                            f"{shard_total}"
                        ),
                    ))
        return outcomes

    def _tiered_execute(self, sql: str):
        """Execute on tier-2 traces: warm past the promotion threshold,
        then run again so the measured execution starts specialized."""
        from repro.vm.tiering import TieringController

        tiering = TieringController(hot_instructions=1)
        limit = self.instruction_limit
        self.db.execute(sql, instruction_limit=limit, tiering=tiering)
        return self.db.execute(sql, instruction_limit=limit, tiering=tiering)

    def _pgo_outcomes(self, sql: str) -> list[Outcome]:
        """Profile-feedback compiles: sampled run, cold plan, warm cache."""
        db = self.db
        saved_store = db.pgo_store
        db.enable_pgo()
        try:
            profiled = self._run(
                "pgo-profile", lambda: db.profile(sql, pgo=True).result
            )
            cold = self._run("pgo-cold", lambda: db.execute(sql, pgo=True))
            warm = self._run("pgo-warm", lambda: db.execute(sql, pgo=True))
            return [profiled, cold, warm]
        finally:
            db.pgo_store = saved_store
            db.plan_cache.clear()

    def _serve_outcome(
        self, sql: str, config: str,
        tiering_hot_instructions: int | None = None,
    ) -> Outcome:
        """The concurrent query service: 8 in-flight copies on 4 workers.

        The service's per-query counters (instructions, loads, stores,
        tuple counters) and rows must be *interleaving-invariant*: all 8
        concurrent instances must report bit-identical values, and those
        values must match a single-query run of the same service config.
        With ``tiering_hot_instructions`` at the floor the copies promote
        to tier 2 mid-workload at different points, which must also be
        invisible in the signatures — tier choice is wall-clock only.
        Any isolation breach is folded into an "error" outcome so the
        generic kind comparison flags it against the rows reference."""
        from repro.serve import QueryService, ServiceConfig

        service_config = ServiceConfig(
            workers=4, max_inflight=8, morsel_size=97, profiling=True,
            tiering_hot_instructions=tiering_hot_instructions,
        )
        limit = self.instruction_limit

        def signature(result):
            return (
                result.instructions, result.loads, result.stores,
                tuple(sorted(result.task_counts.items())),
                tuple(map(tuple, result.rows or [])),
            )

        def run(copies: int):
            service = QueryService(self.db, service_config)
            tickets = [
                service.session(f"fuzz-{i}").submit(
                    sql, max_instructions=limit
                )
                for i in range(copies)
            ]
            service.drain()
            return service, [service.result(t) for t in tickets]

        try:
            service, concurrent = run(8)
            _, solo = run(1)
        except Exception as exc:  # noqa: BLE001 - any failure is an outcome
            return Outcome(
                config, "error", error=f"{type(exc).__name__}: {exc}"
            )

        statuses = {r.status for r in concurrent + solo}
        if statuses == {"failed"}:
            codes = {r.error_code for r in concurrent + solo}
            if len(codes) == 1:
                return Outcome(
                    config, "error", error=f"ServiceError: {codes.pop()}"
                )
            return Outcome(
                config, "error",
                error=f"inconsistent failure codes across instances: {codes}",
            )
        if statuses != {"ok"}:
            return Outcome(
                config, "error",
                error=f"mixed statuses across instances: {statuses}",
            )

        reference = signature(concurrent[0])
        for instance in concurrent[1:]:
            if signature(instance) != reference:
                return Outcome(
                    config, "error",
                    error=(
                        "per-query counter isolation violated: instance "
                        f"{instance.ticket} differs from instance 1"
                    ),
                )
        if signature(solo[0]) != reference:
            return Outcome(
                config, "error",
                error=(
                    "concurrent counters differ from the single-query run"
                ),
            )
        snapshot = service.profile_snapshot()
        if snapshot is not None and snapshot.accuracy < 0.99:
            return Outcome(
                config, "error",
                error=(
                    "sample attribution accuracy "
                    f"{snapshot.accuracy:.4f} below 0.99"
                ),
            )
        return Outcome(config, "rows", rows=list(concurrent[0].rows))

    def _vm_signature(
        self, sql: str, fast_vm: bool, config: str, tiering=None,
    ) -> Outcome:
        """Profile once and fold the complete machine state into rows.

        The "rows" of this outcome are the counter tuple followed by every
        PMU sample, so the generic bag comparison would be useless — the
        caller compares signatures for exact equality instead.  With a
        ``tiering`` controller an extra warm run first drives the program
        past the promotion threshold, so the signed run executes tier-2
        traces (or trips their deopt guard, if the controller is armed)."""
        from repro.engine import ProfilerConfig

        profiler_config = ProfilerConfig(record_memaddr=True)
        try:
            if tiering is not None:
                self.db.profile(
                    sql, config=profiler_config, fast_vm=fast_vm,
                    tiering=tiering,
                )
            profile = self.db.profile(
                sql, config=profiler_config, fast_vm=fast_vm,
                tiering=tiering,
            )
        except PlanError as exc:
            return Outcome(config, "error", error=f"PlanError: {exc}")
        except Exception as exc:  # noqa: BLE001 - compared against twin
            return Outcome(config, "error", error=f"{type(exc).__name__}: {exc}")
        machine = profile.machine
        state = machine.state
        signature = [(
            "counters", state.instructions, state.cycles,
            state.loads, state.stores,
            machine.caches.accesses, machine.caches.l1_misses,
            machine.predictor.branches, machine.predictor.mispredicts,
        )]
        signature.extend(
            (s.ip, s.tsc, s.branch_taken, s.memaddr)
            for s in machine.samples.samples
        )
        return Outcome(config, "rows", rows=signature)

    def _vm_parity(self, sql: str) -> list[Disagreement]:
        """Every execution tier must be bit-identical to the interpreter
        under an armed PMU: counters, cache/predictor state, and sample
        streams.  Tier 2 is checked twice — running specialized to
        completion, and with the forced-deopt guard tripped so the first
        specialized loop edge flushes and demotes mid-query."""
        from repro.vm.tiering import TieringController

        slow = self._vm_signature(sql, False, "vm-parity[interp]")
        candidates = [
            self._vm_signature(sql, True, "vm-parity[fast]"),
            self._vm_signature(
                sql, True, "vm-parity[tiered]",
                tiering=TieringController(hot_instructions=1),
            ),
            self._vm_signature(
                sql, True, "vm-parity[deopt]",
                tiering=TieringController(
                    hot_instructions=1, guard_hook=True, trip_guard=True,
                ),
            ),
        ]
        disagreements = []
        for fast in candidates:
            if fast.kind != slow.kind:
                disagreements.append(Disagreement(
                    fast.config, slow, fast,
                    reason=(
                        f"interpreter {slow.kind} vs "
                        f"{fast.config} {fast.kind}"
                    ),
                ))
            elif fast.kind == "error" and fast.error != slow.error:
                disagreements.append(Disagreement(
                    fast.config, slow, fast, reason="error text differs",
                ))
            elif fast.kind == "rows" and fast.rows != slow.rows:
                disagreements.append(Disagreement(
                    fast.config, slow, fast,
                    reason="machine counters or PMU sample stream differ",
                ))
        return disagreements

    # -- comparison ----------------------------------------------------------

    def check(
        self, sql: str, aliases: list[str] | None = None,
        ordered_by: list[tuple[int, bool]] | None = None,
    ) -> CheckResult:
        result = CheckResult(sql=sql)
        aliases = aliases or []
        ordered_by = ordered_by or []

        # frontend gate: a query the binder/planner rejects is not a fuzz
        # finding, it is the generator missing a grammar rule
        try:
            self.db._plan(sql)
        except (SqlError, PlanError, CatalogError) as exc:
            result.rejected = True
            result.reject_reason = f"{type(exc).__name__}: {exc}"
            return result

        outcomes = self.outcomes_for(sql, aliases)
        result.outcomes = outcomes
        reference = outcomes[0]

        for outcome in outcomes[1:]:
            if outcome.kind == "skipped":
                continue
            if outcome.kind != reference.kind:
                result.disagreements.append(Disagreement(
                    outcome.config, reference, outcome,
                    reason=(
                        f"reference {reference.kind} vs "
                        f"{outcome.config} {outcome.kind}"
                    ),
                ))
                continue
            if outcome.kind == "rows" and not bags_equal(
                outcome.rows, reference.rows
            ):
                result.disagreements.append(Disagreement(
                    outcome.config, reference, outcome,
                    reason="result bags differ",
                ))

        if ordered_by:
            for outcome in outcomes:
                if outcome.kind == "rows" and not is_sorted(
                    outcome.rows, ordered_by
                ):
                    result.disagreements.append(Disagreement(
                        outcome.config, reference, outcome,
                        reason="ORDER BY violated",
                    ))

        if self.check_vm_parity and self.inject_fault is None:
            result.disagreements.extend(self._vm_parity(sql))
        return result


def check_query(db, query, **kwargs) -> CheckResult:
    """Convenience wrapper for a :class:`GeneratedQuery`-shaped object."""
    oracle = DifferentialOracle(db, **kwargs)
    return oracle.check(
        query.sql, aliases=list(query.aliases),
        ordered_by=list(query.ordered_by),
    )


def operator_count(db, sql: str) -> int:
    """Logical-plan operator count — the shrinker's primary size metric."""
    try:
        bound, _physical = db._plan(sql)
    except ReproError:
        return 10**6
    plan = getattr(bound, "plan", None)
    if plan is None:
        return 10**6
    return sum(1 for _ in plan.walk())
