"""Delta-debugging shrinker for differential disagreements.

Given a (dataset, query) pair on which the oracle disagrees, reduce both
until no single reduction keeps the disagreement alive: drop tables from
the join (purging every reference to their alias), drop WHERE conjuncts,
GROUP BY keys, HAVING/ORDER BY/LIMIT/DISTINCT clauses and select items,
replace compound expressions by their children, and ddmin each table's
rows.  Candidates the binder rejects are simply uninteresting — the
oracle's frontend gate filters them — so reductions may be generated
liberally without re-implementing type rules.

The size metric is lexicographic: logical-plan operator count, then total
dataset rows, then SQL length.  A genuine single-operator miscompile
typically lands at scan → filter/aggregate → output over a handful of rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sql import ast, parse, unparse
from repro.fuzz.dataset import Dataset, build_database
from repro.fuzz.oracle import DifferentialOracle, operator_count


def ordered_by_of(stmt: ast.SelectStmt) -> list[tuple[int, bool]]:
    """Map ORDER BY alias references back to output column indexes."""
    alias_index = {
        item.alias: i for i, item in enumerate(stmt.items) if item.alias
    }
    ordered = []
    for order in stmt.order_by:
        expr = order.expr
        if isinstance(expr, ast.Identifier) and expr.qualifier is None:
            index = alias_index.get(expr.name)
            if index is not None:
                ordered.append((index, order.ascending))
    return ordered


def _mentions(node: ast.Node, alias: str) -> bool:
    if isinstance(node, ast.Identifier):
        return node.qualifier == alias
    if isinstance(node, ast.UnaryOp):
        return _mentions(node.operand, alias)
    if isinstance(node, ast.BinaryOp):
        return _mentions(node.left, alias) or _mentions(node.right, alias)
    if isinstance(node, ast.FuncCall):
        return any(_mentions(a, alias) for a in node.args)
    if isinstance(node, ast.Between):
        return any(
            _mentions(n, alias) for n in (node.operand, node.low, node.high)
        )
    if isinstance(node, ast.InList):
        return _mentions(node.operand, alias) or any(
            _mentions(v, alias) for v in node.values
        )
    if isinstance(node, ast.Like):
        return _mentions(node.operand, alias)
    if isinstance(node, ast.Case):
        return any(
            _mentions(c, alias) or _mentions(v, alias) for c, v in node.whens
        ) or (node.default is not None and _mentions(node.default, alias))
    return False


def _conjuncts(node: ast.Node | None) -> list[ast.Node]:
    if node is None:
        return []
    if isinstance(node, ast.BinaryOp) and node.op == "and":
        return _conjuncts(node.left) + _conjuncts(node.right)
    return [node]


def _conjoin(parts: list[ast.Node]) -> ast.Node | None:
    result: ast.Node | None = None
    for part in parts:
        result = part if result is None else ast.BinaryOp("and", result, part)
    return result


def _expr_children(node: ast.Node) -> list[ast.Node]:
    """One-step simplifications: children that could replace the node."""
    if isinstance(node, ast.UnaryOp):
        return [node.operand]
    if isinstance(node, ast.BinaryOp):
        return [node.left, node.right]
    if isinstance(node, ast.Case):
        out = [value for _, value in node.whens]
        if node.default is not None:
            out.append(node.default)
        if len(node.whens) > 1:
            out.append(ast.Case(node.whens[:1], node.default))
        return out
    if isinstance(node, ast.Between):
        return [ast.BinaryOp(">=", node.operand, node.low)]
    if isinstance(node, ast.InList):
        if len(node.values) > 1:
            return [ast.InList(node.operand, node.values[:1], node.negated)]
        return [ast.BinaryOp("=", node.operand, node.values[0])]
    if isinstance(node, ast.FuncCall) and node.args:
        arg = node.args[0]
        if isinstance(arg, (ast.BinaryOp, ast.UnaryOp, ast.Case)):
            return [
                ast.FuncCall(node.name, (child,))
                for child in _expr_children(arg)
            ]
    return []


def _copy_stmt(stmt: ast.SelectStmt) -> ast.SelectStmt:
    return ast.SelectStmt(
        distinct=stmt.distinct,
        items=list(stmt.items),
        tables=list(stmt.tables),
        where=stmt.where,
        group_by=list(stmt.group_by),
        having=stmt.having,
        order_by=list(stmt.order_by),
        limit=stmt.limit,
    )


def _count_star_item() -> ast.SelectItem:
    return ast.SelectItem(ast.FuncCall("count", (ast.Star(),)), "c0")


def _stmt_reductions(stmt: ast.SelectStmt):
    """Yield candidate statements, biggest cuts first."""
    # drop a table, purging everything that references its alias
    if len(stmt.tables) > 1:
        for i, ref in enumerate(stmt.tables):
            alias = ref.alias
            candidate = _copy_stmt(stmt)
            candidate.tables = stmt.tables[:i] + stmt.tables[i + 1:]
            candidate.items = [
                item for item in stmt.items if not _mentions(item.expr, alias)
            ]
            candidate.where = _conjoin([
                c for c in _conjuncts(stmt.where) if not _mentions(c, alias)
            ])
            candidate.group_by = [
                k for k in stmt.group_by if not _mentions(k, alias)
            ]
            if stmt.having is not None and _mentions(stmt.having, alias):
                candidate.having = None
            surviving = {item.alias for item in candidate.items}
            candidate.order_by = [
                o for o in stmt.order_by
                if isinstance(o.expr, ast.Identifier)
                and o.expr.qualifier is None and o.expr.name in surviving
            ]
            if not candidate.items:
                candidate.items = [_count_star_item()]
                candidate.order_by = []
            yield candidate
    # drop whole clauses
    if stmt.where is not None:
        candidate = _copy_stmt(stmt)
        candidate.where = None
        yield candidate
    if stmt.group_by:
        candidate = _copy_stmt(stmt)
        candidate.group_by = []
        keys = set(stmt.group_by)
        candidate.items = [
            item for item in stmt.items if item.expr not in keys
        ] or [_count_star_item()]
        surviving = {item.alias for item in candidate.items}
        candidate.order_by = [
            o for o in stmt.order_by
            if isinstance(o.expr, ast.Identifier)
            and o.expr.qualifier is None and o.expr.name in surviving
        ]
        candidate.having = None
        yield candidate
    if stmt.having is not None:
        candidate = _copy_stmt(stmt)
        candidate.having = None
        yield candidate
    if stmt.order_by:
        candidate = _copy_stmt(stmt)
        candidate.order_by = []
        candidate.limit = None
        yield candidate
    if stmt.limit is not None:
        candidate = _copy_stmt(stmt)
        candidate.limit = None
        yield candidate
    if stmt.distinct:
        candidate = _copy_stmt(stmt)
        candidate.distinct = False
        yield candidate
    # drop individual WHERE conjuncts
    conjuncts = _conjuncts(stmt.where)
    if len(conjuncts) > 1:
        for i in range(len(conjuncts)):
            candidate = _copy_stmt(stmt)
            candidate.where = _conjoin(conjuncts[:i] + conjuncts[i + 1:])
            yield candidate
    # drop individual GROUP BY keys (and their select item)
    if len(stmt.group_by) > 1:
        for i, key in enumerate(stmt.group_by):
            candidate = _copy_stmt(stmt)
            candidate.group_by = stmt.group_by[:i] + stmt.group_by[i + 1:]
            candidate.items = [
                item for item in stmt.items if item.expr != key
            ] or [_count_star_item()]
            surviving = {item.alias for item in candidate.items}
            candidate.order_by = [
                o for o in stmt.order_by
                if isinstance(o.expr, ast.Identifier)
                and o.expr.qualifier is None and o.expr.name in surviving
            ]
            yield candidate
    # drop individual select items
    if len(stmt.items) > 1:
        for i, item in enumerate(stmt.items):
            if item.expr in stmt.group_by:
                continue  # handled with its key above
            candidate = _copy_stmt(stmt)
            candidate.items = stmt.items[:i] + stmt.items[i + 1:]
            surviving = {it.alias for it in candidate.items}
            candidate.order_by = [
                o for o in stmt.order_by
                if isinstance(o.expr, ast.Identifier)
                and o.expr.qualifier is None and o.expr.name in surviving
            ]
            yield candidate
    # simplify expressions in place
    for i, item in enumerate(stmt.items):
        for child in _expr_children(item.expr):
            candidate = _copy_stmt(stmt)
            candidate.items = list(stmt.items)
            candidate.items[i] = ast.SelectItem(child, item.alias)
            yield candidate
    for i, conjunct in enumerate(conjuncts):
        for child in _expr_children(conjunct):
            candidate = _copy_stmt(stmt)
            parts = list(conjuncts)
            parts[i] = child
            candidate.where = _conjoin(parts)
            yield candidate
    if stmt.having is not None:
        for child in _expr_children(stmt.having):
            candidate = _copy_stmt(stmt)
            candidate.having = child
            yield candidate


@dataclass
class ShrinkResult:
    sql: str
    dataset: Dataset
    checks: int
    operators: int
    row_total: int


class Shrinker:
    """Minimizes a disagreeing (dataset, sql) pair to a small repro."""

    def __init__(
        self,
        dataset: Dataset,
        sql: str,
        *,
        max_hints: int = 2,
        check_pgo: bool = False,
        check_vm_parity: bool = False,
        check_serve: bool = False,
        inject_fault: str | None = None,
        max_checks: int = 400,
    ):
        self.dataset = dataset.copy()
        self.sql = sql
        self.max_hints = max_hints
        self.check_pgo = check_pgo
        self.check_vm_parity = check_vm_parity
        self.check_serve = check_serve
        self.inject_fault = inject_fault
        self.max_checks = max_checks
        self.checks = 0

    def _interesting(self, dataset: Dataset, stmt: ast.SelectStmt) -> bool:
        if self.checks >= self.max_checks:
            return False
        self.checks += 1
        try:
            db = build_database(dataset)
        except Exception:  # noqa: BLE001 - a dataset the engine rejects
            return False
        oracle = DifferentialOracle(
            db,
            max_hints=self.max_hints,
            check_pgo=self.check_pgo,
            check_vm_parity=self.check_vm_parity,
            check_serve=self.check_serve,
            inject_fault=self.inject_fault,
        )
        result = oracle.check(
            unparse(stmt),
            aliases=[ref.alias for ref in stmt.tables],
            ordered_by=ordered_by_of(stmt),
        )
        return bool(result.disagreements)

    def run(self) -> ShrinkResult | None:
        stmt = parse(self.sql)
        dataset = self.dataset
        if not self._interesting(dataset, stmt):
            return None  # not reproducible under the shrinker's settings

        stmt = self._shrink_statement(dataset, stmt)
        dataset = self._shrink_dataset(dataset, stmt)
        stmt = self._shrink_statement(dataset, stmt)  # smaller data may unlock more

        sql = unparse(stmt)
        db = build_database(dataset)
        return ShrinkResult(
            sql=sql,
            dataset=dataset,
            checks=self.checks,
            operators=operator_count(db, sql),
            row_total=dataset.row_total(),
        )

    def _shrink_statement(self, dataset, stmt) -> ast.SelectStmt:
        improved = True
        while improved and self.checks < self.max_checks:
            improved = False
            for candidate in _stmt_reductions(stmt):
                if self._interesting(dataset, candidate):
                    stmt = candidate
                    improved = True
                    break
        return stmt

    def _shrink_dataset(self, dataset, stmt) -> Dataset:
        used = {ref.table for ref in stmt.tables}
        for name in list(dataset.tables):
            if name in used or self.checks >= self.max_checks:
                continue
            candidate = dataset.copy()
            del candidate.tables[name]
            candidate.foreign_keys = [
                fk for fk in candidate.foreign_keys
                if fk.child != name and fk.parent != name
            ]
            if self._interesting(candidate, stmt):
                dataset = candidate
        for name in sorted(
            used, key=lambda n: -len(dataset.tables[n].rows)
        ):
            dataset = self._ddmin_rows(dataset, stmt, name)
        return dataset

    def _ddmin_rows(self, dataset, stmt, name) -> Dataset:
        rows = list(dataset.tables[name].rows)
        granularity = 2

        def with_rows(candidate_rows):
            candidate = dataset.copy()
            candidate.tables[name].rows = list(candidate_rows)
            return candidate

        # try the empty table first: many disagreements survive it
        if rows and self.checks < self.max_checks:
            candidate = with_rows([])
            if self._interesting(candidate, stmt):
                return candidate

        while len(rows) >= 2 and self.checks < self.max_checks:
            chunk = math.ceil(len(rows) / granularity)
            reduced = False
            for start in range(0, len(rows), chunk):
                candidate_rows = rows[:start] + rows[start + chunk:]
                if not candidate_rows:
                    continue
                if self._interesting(with_rows(candidate_rows), stmt):
                    rows = candidate_rows
                    granularity = max(2, granularity - 1)
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(rows):
                    break
                granularity = min(len(rows), granularity * 2)
        return with_rows(rows)
