"""The ``views-incremental`` differential fuzz oracle.

Standing queries from the shared grammar are registered as materialized
views over a seeded random dataset; a seeded :class:`DeltaGenerator` then
mutates the dataset in batches — insertions (occasionally with weight 2),
retractions of existing rows, and periodic targeted purges that drive
whole groups to weight zero — and after *every* batch each view's
maintained state is bag-compared against re-running its query from
scratch on a twin database rebuilt from the mutated dataset.

Views with a LIMIT are compared against a Python top-K of the unlimited
re-execution: the grammar only attaches LIMIT when the ORDER BY covers
every output column (so rows tied on all keys are identical and the kept
bag is deterministic).  A per-dataset profiling invariant rides along:
the profiler's per-view maintenance sample totals must sum exactly to
its maintenance total.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from random import Random

from repro.catalog.schema import DataType
from repro.errors import ReproError
from repro.fuzz.dataset import Dataset, build_database, random_dataset
from repro.fuzz.generator import GeneratedQuery, QueryGenerator
from repro.fuzz.harness import MAX_REJECTS_PER_QUERY
from repro.fuzz.oracle import bags_equal, is_sorted
from repro.serve import QueryService, ServiceConfig
from repro.views import ViewService

_LIMIT_RE = re.compile(r"\s+limit\s+\d+\s*$", re.IGNORECASE)


@dataclass
class ViewsFuzzFailure:
    """One maintained-vs-reexecuted disagreement (or invariant break)."""

    seed: int
    dataset_seed: int
    view: str
    sql: str
    batch: int
    reason: str


@dataclass
class ViewsFuzzReport:
    seed: int
    budget: int
    views: int = 0
    datasets: int = 0
    batches: int = 0
    checks: int = 0
    rejected: int = 0
    retractions: int = 0
    elapsed: float = 0.0
    failures: list[ViewsFuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


class DeltaGenerator:
    """Seeded source of decoded delta batches over a working dataset.

    Every batch it emits is also applied to ``working``, so the caller
    can rebuild a from-scratch twin after each batch.  String values are
    always drawn from the *original* dataset (the database's dictionary
    is frozen); retractions only ever target rows currently present, so
    no batch drives a base table negative.
    """

    def __init__(self, original: Dataset, working: Dataset, rng: Random):
        self.original = original
        self.working = working
        self.rng = rng
        self.batch_index = 0
        self.retractions = 0

    def _fresh_value(self, table: str, index: int, dtype: DataType):
        rng = self.rng
        source = self.original.tables[table]
        pool = [row[index] for row in source.rows]
        if dtype is DataType.STRING:
            # the dictionary is frozen: only strings the database has seen
            return rng.choice(pool)
        if dtype is DataType.DATE:
            return rng.choice(pool)
        if dtype is DataType.DECIMAL:
            return round(rng.uniform(-50.0, 400.0), 2)
        if dtype is DataType.BOOL:
            return rng.random() < 0.5
        if pool and rng.random() < 0.6:
            return rng.choice(pool)  # reuse ids: feeds joins and groups
        return rng.randint(-3, 60)

    def _fresh_row(self, table: str) -> tuple:
        spec = self.original.tables[table]
        return tuple(
            self._fresh_value(table, i, dtype)
            for i, (_, dtype) in enumerate(spec.columns)
        )

    def _purge(self, table: str, changes: list) -> None:
        """Retract every row sharing one column value: the empty-group
        deletion pressure (a whole group vanishes at once)."""
        rows = self.working.tables[table].rows
        if not rows:
            return
        rng = self.rng
        victim = rng.choice(rows)
        index = rng.randrange(len(victim))
        value = victim[index]
        doomed = [row for row in rows if row[index] == value]
        for row in doomed:
            changes.append((row, -1))
            self.retractions += 1

    def generate_batch(self) -> dict[str, list]:
        """One decoded delta batch; mutates ``working`` to match."""
        rng = self.rng
        self.batch_index += 1
        tables = [
            name for name, spec in self.original.tables.items() if spec.rows
        ]
        batch: dict[str, list] = {}
        for table in rng.sample(tables, rng.randint(1, len(tables))):
            changes: list = []
            if self.batch_index % 3 == 0 and rng.random() < 0.8:
                self._purge(table, changes)
            for _ in range(rng.randint(1, 5)):
                working_rows = self.working.tables[table].rows
                roll = rng.random()
                if roll < 0.45 or not working_rows:
                    weight = 2 if rng.random() < 0.15 else 1
                    changes.append((self._fresh_row(table), weight))
                else:
                    changes.append((rng.choice(working_rows), -1))
                    self.retractions += 1
            # net the changes so retractions never exceed what is present
            # (a purge followed by a random retract may double-count)
            netted: dict[tuple, int] = {}
            for row, weight in changes:
                netted[row] = netted.get(row, 0) + weight
            rows = self.working.tables[table].rows
            final: list = []
            for row, weight in netted.items():
                if weight < 0:
                    present = sum(1 for r in rows if r == row)
                    weight = max(weight, -present)
                if weight:
                    final.append((row, weight))
            if final:
                batch[table] = final
                for row, weight in final:
                    if weight > 0:
                        rows.extend([row] * weight)
                    else:
                        for _ in range(-weight):
                            rows.remove(row)
        return batch


def _python_topk(rows: list[tuple], ordered_by: list[tuple[int, bool]],
                 limit: int) -> list[tuple]:
    """Reference top-K in the decoded domain: stable sorts from the last
    key to the first (descending strings can't be negated)."""
    ordered = list(rows)
    for index, ascending in reversed(ordered_by):
        ordered.sort(key=lambda row: row[index], reverse=not ascending)
    return ordered[:limit]


def _check_view(views: ViewService, name: str, query: GeneratedQuery,
                ref_db, batch: int, report: ViewsFuzzReport,
                dataset_seed: int) -> None:
    view = views.view(name)
    got = view.materialize()
    report.checks += 1
    try:
        if view.circuit.limit is not None:
            unlimited = _LIMIT_RE.sub("", query.sql)
            reference = ref_db.execute_interpreted(unlimited).rows
            want = _python_topk(reference, query.ordered_by,
                                view.circuit.limit)
        else:
            want = ref_db.execute_interpreted(query.sql).rows
    except ReproError as exc:
        report.failures.append(ViewsFuzzFailure(
            report.seed, dataset_seed, name, query.sql, batch,
            f"reference re-execution failed: {exc}",
        ))
        return
    if not bags_equal(got, want):
        report.failures.append(ViewsFuzzFailure(
            report.seed, dataset_seed, name, query.sql, batch,
            f"maintained state diverged: {len(got)} maintained rows vs "
            f"{len(want)} re-executed",
        ))
        return
    if query.ordered_by and not is_sorted(got, query.ordered_by):
        report.failures.append(ViewsFuzzFailure(
            report.seed, dataset_seed, name, query.sql, batch,
            "maintained state violates its ORDER BY",
        ))


def run_views_fuzz(
    seed: int,
    budget: int = 100,
    *,
    batches: int = 5,
    views_per_dataset: int = 10,
    time_limit: float | None = None,
    log=None,
) -> ViewsFuzzReport:
    """Register ``budget`` fuzzed standing queries as materialized views
    and differentially check every one after every delta batch."""
    report = ViewsFuzzReport(seed=seed, budget=budget)
    emit = log or (lambda message: None)
    started = time.monotonic()
    master = Random(seed)

    while report.views < budget:
        if time_limit is not None and time.monotonic() - started > time_limit:
            emit(f"time limit reached after {report.views} views")
            break
        dataset_seed = master.randint(0, 2**31 - 1)
        dataset = random_dataset(dataset_seed)
        db = build_database(dataset)
        service = QueryService(
            db, ServiceConfig(workers=2, period=20_000, fast_vm=False)
        )
        views = ViewService(service)
        generator = QueryGenerator(
            dataset, Random(master.randint(0, 2**31 - 1))
        )
        report.datasets += 1

        goal = min(views_per_dataset, budget - report.views)
        registered: list[tuple[str, GeneratedQuery]] = []
        rejects = 0
        while len(registered) < goal and rejects < MAX_REJECTS_PER_QUERY * goal:
            query = generator.generate()
            name = f"v{len(registered)}"
            try:
                views.register(name, query.sql)
            except ReproError:
                # refused (subquery/limit shape) or binder-rejected —
                # same bookkeeping as the main harness
                report.rejected += 1
                rejects += 1
                continue
            registered.append((name, query))
        report.views += len(registered)
        if not registered:
            emit(f"dataset {dataset_seed}: no registrable queries")
            continue

        working = dataset.copy()
        # batch 0: the initial load must already equal from-scratch
        for name, query in registered:
            _check_view(views, name, query, db, 0, report, dataset_seed)
        deltas = DeltaGenerator(
            dataset, working, Random(master.randint(0, 2**31 - 1))
        )
        for batch_index in range(1, batches + 1):
            batch = deltas.generate_batch()
            if batch:
                views.apply(batch)
            else:
                views.apply({})
            report.batches += 1
            ref_db = build_database(working)
            for name, query in registered:
                _check_view(views, name, query, ref_db, batch_index,
                            report, dataset_seed)
        report.retractions += deltas.retractions

        snapshot = service.profile_snapshot()
        per_view = sum(s.samples for s in snapshot.views.values())
        if per_view != snapshot.maintenance_samples:
            report.failures.append(ViewsFuzzFailure(
                seed, dataset_seed, "<profiler>", "", batches,
                f"per-view sample totals ({per_view}) != maintenance "
                f"total ({snapshot.maintenance_samples})",
            ))
        if report.failures:
            for failure in report.failures:
                emit(
                    f"view {failure.view} batch {failure.batch}: "
                    f"{failure.reason} — {failure.sql}"
                )
            break
        emit(
            f"dataset {dataset_seed}: {len(registered)} views x "
            f"{batches} batches ok ({report.views}/{budget})"
        )

    report.elapsed = time.monotonic() - started
    return report
