"""The engine's SSA intermediate representation ("Machine IR" in the paper).

This is the layer Umbra's LLVM IR plays in the original system: pipelines of
tasks are lowered into tight loops of SSA instructions (operator fusion),
which the backend then compiles to native machine code.  The Tagging
Dictionary's Log B links instructions of this layer to pipeline tasks.
"""

from repro.ir.nodes import (
    Block,
    Const,
    Function,
    Instr,
    Module,
    Param,
    Type,
    Value,
)
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_function, print_module
from repro.ir.verifier import verify_function, verify_module

__all__ = [
    "Block",
    "Const",
    "Function",
    "IRBuilder",
    "Instr",
    "Module",
    "Param",
    "Type",
    "Value",
    "print_function",
    "print_module",
    "verify_function",
    "verify_module",
]
