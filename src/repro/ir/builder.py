"""IRBuilder: the single funnel through which all IR is created.

The paper (§5.2) notes that in Umbra "produce, consume, task registration,
task triggering, and instruction generation are all funnelled through a
single code location, which we use both to update the Abstraction Trackers
and to populate the Tagging Dictionary".  This class is that location:
every instruction creation fires the ``listeners`` callbacks, and the
profiling integration subscribes there — the engine itself needs no other
changes.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import IRError
from repro.ir.nodes import (
    BINARY_OPS,
    CMP_OPS,
    Block,
    Const,
    Function,
    Instr,
    Type,
    Value,
)


class IRBuilder:
    """Builds SSA instructions into basic blocks of one function."""

    def __init__(self, function: Function):
        self.function = function
        self.module = function.module
        self._block: Block | None = None
        self.listeners: list[Callable[[Instr], None]] = []

    # -- structure --------------------------------------------------------

    def block(self, name: str) -> Block:
        """Create (and register) a new basic block; does not switch to it."""
        base = name
        suffix = 1
        existing = {b.name for b in self.function.blocks}
        while name in existing:
            suffix += 1
            name = f"{base}{suffix}"
        blk = Block(name=name, function=self.function)
        self.function.blocks.append(blk)
        return blk

    def set_block(self, block: Block) -> None:
        if block.function is not self.function:
            raise IRError("block belongs to a different function")
        self._block = block

    @property
    def current(self) -> Block:
        if self._block is None:
            raise IRError("no current block; call set_block first")
        return self._block

    # -- constants --------------------------------------------------------

    def const(self, value: int, type: Type = Type.I64) -> Const:
        return Const(value, type)

    def const_f64(self, value: float) -> Const:
        return Const(float(value), Type.F64)

    # -- emission ---------------------------------------------------------

    def _emit(
        self,
        op: str,
        args: list[Value],
        type: Type,
        at_front: bool = False,
        **attrs,
    ) -> Instr:
        block = self.current
        if block.terminator is not None:
            raise IRError(f"block {block.name} already terminated")
        instr = Instr(
            id=self.module.next_id(),
            op=op,
            args=args,
            type=type,
            block=block,
            **attrs,
        )
        if at_front:
            # phis go before any non-phi instruction
            pos = 0
            while pos < len(block.instructions) and block.instructions[pos].op == "phi":
                pos += 1
            block.instructions.insert(pos, instr)
        else:
            block.instructions.append(instr)
        for listener in self.listeners:
            listener(instr)
        return instr

    # -- arithmetic / logic -------------------------------------------------

    def binary(self, op: str, a: Value, b: Value) -> Instr:
        if op not in BINARY_OPS:
            raise IRError(f"not a binary op: {op}")
        if op == "fdiv":
            result = Type.F64
        elif op == "crc32":
            result = Type.I64
        elif (
            op in ("and", "or", "xor")
            and a.type is Type.BOOL
            and b.type is Type.BOOL
        ):
            result = Type.BOOL
        else:
            result = a.type if a.type != Type.BOOL else Type.I64
        return self._emit(op, [a, b], result)

    def add(self, a, b):
        return self.binary("add", a, b)

    def sub(self, a, b):
        return self.binary("sub", a, b)

    def mul(self, a, b):
        return self.binary("mul", a, b)

    def sdiv(self, a, b):
        return self.binary("sdiv", a, b)

    def srem(self, a, b):
        return self.binary("srem", a, b)

    def and_(self, a, b):
        return self.binary("and", a, b)

    def or_(self, a, b):
        return self.binary("or", a, b)

    def xor(self, a, b):
        return self.binary("xor", a, b)

    def shl(self, a, b):
        return self.binary("shl", a, b)

    def shr(self, a, b):
        return self.binary("shr", a, b)

    def rotr(self, a, b):
        return self.binary("rotr", a, b)

    def fdiv(self, a, b):
        return self.binary("fdiv", a, b)

    def crc32(self, a, b):
        return self.binary("crc32", a, b)

    def min(self, a, b):
        return self.binary("min", a, b)

    def max(self, a, b):
        return self.binary("max", a, b)

    def cmp(self, op: str, a: Value, b: Value) -> Instr:
        if op not in CMP_OPS:
            raise IRError(f"not a comparison op: {op}")
        return self._emit(op, [a, b], Type.BOOL)

    def select(self, cond: Value, if_true: Value, if_false: Value) -> Instr:
        if cond.type != Type.BOOL:
            raise IRError("select condition must be i1")
        return self._emit("select", [cond, if_true, if_false], if_true.type)

    def sitofp(self, a: Value) -> Instr:
        return self._emit("sitofp", [a], Type.F64)

    def fptosi(self, a: Value) -> Instr:
        return self._emit("fptosi", [a], Type.I64)

    # -- memory ------------------------------------------------------------

    def gep(self, base: Value, index: Value | None = None, scale: int = 8, offset: int = 0) -> Instr:
        """Address arithmetic: ``base + index * scale + offset`` (bytes)."""
        if base.type != Type.PTR:
            raise IRError("gep base must be a pointer")
        args = [base] if index is None else [base, index]
        return self._emit("gep", args, Type.PTR, scale=scale, offset=offset)

    def load(self, ptr: Value, type: Type = Type.I64, comment: str = "") -> Instr:
        if ptr.type != Type.PTR:
            raise IRError("load address must be a pointer")
        return self._emit("load", [ptr], type, comment=comment)

    def store(self, ptr: Value, value: Value, comment: str = "") -> Instr:
        if ptr.type != Type.PTR:
            raise IRError("store address must be a pointer")
        return self._emit("store", [ptr, value], Type.VOID, comment=comment)

    # -- control flow --------------------------------------------------------

    def br(self, target: Block) -> Instr:
        return self._emit("br", [], Type.VOID, targets=(target,))

    def condbr(self, cond: Value, if_true: Block, if_false: Block) -> Instr:
        if cond.type != Type.BOOL:
            raise IRError("condbr condition must be i1")
        return self._emit("condbr", [cond], Type.VOID, targets=(if_true, if_false))

    def phi(self, type: Type = Type.I64) -> Instr:
        return self._emit("phi", [], type, at_front=True)

    def add_incoming(self, phi: Instr, value: Value, block: Block) -> None:
        if phi.op != "phi":
            raise IRError("add_incoming on a non-phi instruction")
        phi.incomings.append((value, block))

    def ret(self, value: Value | None = None) -> Instr:
        args = [] if value is None else [value]
        return self._emit("ret", args, Type.VOID)

    # -- calls ---------------------------------------------------------------

    def call(self, callee: str, args: list[Value], type: Type = Type.I64) -> Instr:
        return self._emit("call", list(args), type, callee=callee)

    def kcall(self, kernel_id: int, args: list[Value], type: Type = Type.I64) -> Instr:
        return self._emit("kcall", list(args), type, offset=kernel_id)

    def settag(self, tag: Value) -> Instr:
        """Write ``tag`` into the reserved tag register; returns the old tag.

        This is the IR form of the paper's Listing 2 inline assembly.  The
        backend lowers it to register moves when Register Tagging is enabled
        and drops it otherwise.
        """
        return self._emit("settag", [tag], Type.I64)

    def nop(self) -> Instr:
        return self._emit("nop", [], Type.VOID)
