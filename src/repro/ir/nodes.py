"""SSA IR node classes: values, instructions, blocks, functions, modules.

The IR is deliberately LLVM-shaped (compare the paper's Listing 1): SSA
values ``%n``, basic blocks with explicit terminators, ``phi`` nodes,
``getelementptr``-style address arithmetic, and calls into a pre-compiled
runtime.  Instruction ids are unique per :class:`Module`, which is what the
Tagging Dictionary and the backend's debug information key on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import IRError


class Type(enum.Enum):
    """Value types.  The machine is a 64-bit word machine, so these mostly

    express intent (and catch codegen bugs) rather than storage width."""

    I64 = "i64"
    F64 = "f64"
    PTR = "ptr"
    BOOL = "i1"
    VOID = "void"


class Value:
    """Anything an instruction may use as an operand."""

    type: Type


@dataclass(frozen=True)
class Const(Value):
    """A literal constant."""

    value: int | float
    type: Type = Type.I64

    def __str__(self) -> str:
        return f"{self.type.value} {self.value}"


@dataclass(frozen=True)
class Param(Value):
    """A function parameter."""

    index: int
    name: str
    type: Type = Type.I64

    def __str__(self) -> str:
        return f"%{self.name}"


# Instruction opcodes.  Kept as strings: the backend dispatches once per
# compile, never in the interpreter hot loop.
BINARY_OPS = frozenset(
    "add sub mul sdiv srem and or xor shl shr rotr fdiv crc32 min max".split()
)
CMP_OPS = frozenset("cmpeq cmpne cmplt cmple cmpgt cmpge".split())
TERMINATORS = frozenset(["br", "condbr", "ret"])
ALL_OPS = (
    BINARY_OPS
    | CMP_OPS
    | TERMINATORS
    | frozenset(
        "gep load store phi call kcall select sitofp fptosi settag nop".split()
    )
)


class Instr(Value):
    """One SSA instruction.

    ``args`` holds operand values.  Structured operands live in dedicated
    attributes: branch targets (``targets``), phi incomings (``incomings``),
    call target names (``callee``), gep scale/offset immediates.
    """

    __slots__ = (
        "id",
        "op",
        "args",
        "type",
        "block",
        "targets",
        "incomings",
        "callee",
        "scale",
        "offset",
        "comment",
    )

    def __init__(
        self,
        id: int,
        op: str,
        args: list[Value],
        type: Type,
        block: "Block",
        targets: tuple["Block", ...] = (),
        incomings: list[tuple[Value, "Block"]] | None = None,
        callee: str | None = None,
        scale: int = 0,
        offset: int = 0,
        comment: str = "",
    ):
        if op not in ALL_OPS:
            raise IRError(f"unknown IR opcode {op!r}")
        self.id = id
        self.op = op
        self.args = args
        self.type = type
        self.block = block
        self.targets = targets
        self.incomings = incomings if incomings is not None else []
        self.callee = callee
        self.scale = scale
        self.offset = offset
        self.comment = comment

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    def operands(self) -> list[Value]:
        ops = list(self.args)
        if self.op == "phi":
            ops.extend(value for value, _ in self.incomings)
        return ops

    def __repr__(self) -> str:
        return f"<Instr %{self.id} {self.op}>"


@dataclass
class Block:
    """A basic block: straight-line instructions ending in a terminator."""

    name: str
    function: "Function"
    instructions: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def predecessors(self) -> list["Block"]:
        preds = []
        for block in self.function.blocks:
            term = block.terminator
            if term is not None and self in term.targets:
                preds.append(block)
        return preds

    def __repr__(self) -> str:
        return f"<Block {self.name}>"


@dataclass
class Function:
    """An IR function — one per pipeline, plus the runtime library."""

    name: str
    module: "Module"
    params: list[Param] = field(default_factory=list)
    return_type: Type = Type.VOID
    blocks: list[Block] = field(default_factory=list)

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block_named(self, name: str) -> Block:
        for block in self.blocks:
            if block.name == name:
                return block
        raise IRError(f"no block named {name!r} in {self.name}")

    def all_instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)


import itertools

_global_instr_ids = itertools.count(1)


@dataclass
class Module:
    """A compilation unit: the functions generated for one query, plus

    (separately compiled) the runtime library.  Instruction ids are globally
    unique — several modules (query, runtime, syslib) are linked into one
    program image and share the debug-info and Tagging-Dictionary key
    spaces."""

    name: str
    functions: list[Function] = field(default_factory=list)

    def new_function(
        self,
        name: str,
        params: list[tuple[str, Type]] | None = None,
        return_type: Type = Type.VOID,
    ) -> Function:
        if any(f.name == name for f in self.functions):
            raise IRError(f"duplicate function name {name!r}")
        fn = Function(name=name, module=self, return_type=return_type)
        for i, (pname, ptype) in enumerate(params or []):
            fn.params.append(Param(index=i, name=pname, type=ptype))
        self.functions.append(fn)
        return fn

    def function_named(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise IRError(f"no function named {name!r} in module {self.name}")

    def next_id(self) -> int:
        return next(_global_instr_ids)

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions)
