"""Textual IR printer, shaped like the paper's Listing 1.

Used for debugging and by the operator developer's annotated-IR report
(Fig. 6b), which decorates each printed line with sample percentages and the
owning operator from the Tagging Dictionary.
"""

from __future__ import annotations

from repro.ir.nodes import Block, Const, Function, Instr, Module, Param, Value


def format_value(value: Value) -> str:
    if isinstance(value, Const):
        return str(value.value)
    if isinstance(value, Param):
        return f"%{value.name}"
    if isinstance(value, Instr):
        return f"%{value.id}"
    return repr(value)


def format_instr(instr: Instr) -> str:
    args = ", ".join(format_value(a) for a in instr.args)
    if instr.op == "phi":
        inc = " ".join(f"[{format_value(v)}, %{b.name}]" for v, b in instr.incomings)
        text = f"%{instr.id} = phi {instr.type.value} {inc}"
    elif instr.op == "gep":
        parts = [format_value(instr.args[0])]
        if len(instr.args) > 1:
            parts.append(f"{format_value(instr.args[1])} x {instr.scale}")
        if instr.offset:
            parts.append(f"+{instr.offset}")
        text = f"%{instr.id} = gep ptr {', '.join(parts)}"
    elif instr.op == "load":
        text = f"%{instr.id} = load {instr.type.value} {args}"
    elif instr.op == "store":
        text = f"store {args}"
    elif instr.op == "br":
        text = f"br %{instr.targets[0].name}"
    elif instr.op == "condbr":
        text = f"condbr {args} %{instr.targets[0].name} %{instr.targets[1].name}"
    elif instr.op == "ret":
        text = f"ret {args}" if instr.args else "ret"
    elif instr.op == "call":
        text = f"%{instr.id} = call {instr.type.value} @{instr.callee}({args})"
    elif instr.op == "kcall":
        text = f"%{instr.id} = kcall {instr.type.value} #{instr.offset}({args})"
    elif instr.op == "settag":
        text = f"%{instr.id} = settag {args}"
    elif instr.op in ("sitofp", "fptosi", "select", "nop"):
        text = f"%{instr.id} = {instr.op} {args}" if instr.args else instr.op
    else:
        text = f"%{instr.id} = {instr.op} {instr.type.value} {args}"
    if instr.comment:
        text += f" ; {instr.comment}"
    return text


def print_block(block: Block) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {format_instr(instr)}" for instr in block.instructions)
    return "\n".join(lines)


def print_function(function: Function) -> str:
    params = ", ".join(f"{p.type.value} %{p.name}" for p in function.params)
    lines = [f"define {function.return_type.value} @{function.name}({params}) {{"]
    lines.extend(print_block(block) for block in function.blocks)
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    return "\n\n".join(print_function(f) for f in module.functions)
