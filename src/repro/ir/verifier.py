"""IR verifier: structural and SSA well-formedness checks.

Run after codegen and after every optimization pass; a malformed function is
a bug in the compiler, and failing here beats failing inside the backend or,
worse, producing wrong query results.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.nodes import Block, Const, Function, Instr, Module, Param, Type


def _reverse_postorder(function: Function) -> list[Block]:
    seen: set[int] = set()
    order: list[Block] = []

    def visit(block: Block) -> None:
        if id(block) in seen:
            return
        seen.add(id(block))
        term = block.terminator
        if term is not None:
            for target in term.targets:
                visit(target)
        order.append(block)

    visit(function.entry)
    order.reverse()
    return order


def compute_dominators(function: Function) -> dict[int, set[int]]:
    """Iterative dominator sets keyed by ``id(block)``."""
    rpo = _reverse_postorder(function)
    all_ids = {id(b) for b in rpo}
    entry = function.entry
    dom: dict[int, set[int]] = {id(b): set(all_ids) for b in rpo}
    dom[id(entry)] = {id(entry)}
    preds = {id(b): [p for p in b.predecessors() if id(p) in all_ids] for b in rpo}
    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is entry:
                continue
            block_preds = preds[id(block)]
            if not block_preds:
                continue
            new = set.intersection(*(dom[id(p)] for p in block_preds))
            new.add(id(block))
            if new != dom[id(block)]:
                dom[id(block)] = new
                changed = True
    return dom


def verify_function(function: Function) -> None:
    """Raise :class:`IRError` on the first structural problem found."""
    if not function.blocks:
        raise IRError(f"{function.name}: function has no blocks")

    names = [b.name for b in function.blocks]
    if len(set(names)) != len(names):
        raise IRError(f"{function.name}: duplicate block names")

    reachable = {id(b) for b in _reverse_postorder(function)}

    for block in function.blocks:
        if not block.instructions:
            raise IRError(f"{function.name}/{block.name}: empty block")
        term = block.instructions[-1]
        if not term.is_terminator:
            raise IRError(f"{function.name}/{block.name}: missing terminator")
        for instr in block.instructions[:-1]:
            if instr.is_terminator:
                raise IRError(
                    f"{function.name}/{block.name}: terminator %{instr.id} not at block end"
                )
        seen_non_phi = False
        for instr in block.instructions:
            if instr.op == "phi":
                if seen_non_phi:
                    raise IRError(
                        f"{function.name}/{block.name}: phi %{instr.id} after non-phi"
                    )
            else:
                seen_non_phi = True
            if instr.block is not block:
                raise IRError(
                    f"{function.name}/{block.name}: instruction %{instr.id} has stale block link"
                )

        for target in (term.targets or ()):
            if target.function is not function:
                raise IRError(
                    f"{function.name}/{block.name}: branch to foreign block {target.name}"
                )

    # phi incoming blocks must match predecessors exactly (reachable ones)
    for block in function.blocks:
        if id(block) not in reachable:
            continue
        preds = {id(p) for p in block.predecessors() if id(p) in reachable}
        for instr in block.instructions:
            if instr.op != "phi":
                continue
            incoming = {id(b) for _, b in instr.incomings}
            if incoming != preds:
                raise IRError(
                    f"{function.name}/{block.name}: phi %{instr.id} incomings "
                    f"do not match predecessors"
                )

    _verify_ssa(function, reachable)


def _verify_ssa(function: Function, reachable: set[int]) -> None:
    dom = compute_dominators(function)
    def_site: dict[int, Instr] = {}
    for block in function.blocks:
        for instr in block.instructions:
            if instr.type != Type.VOID:
                if instr.id in def_site:
                    raise IRError(f"{function.name}: duplicate SSA id %{instr.id}")
                def_site[instr.id] = instr

    position = {}
    for block in function.blocks:
        for i, instr in enumerate(block.instructions):
            position[id(instr)] = i

    def check_use(user_block: Block, user_pos: int, value, where: str) -> None:
        if isinstance(value, (Const, Param)):
            return
        if not isinstance(value, Instr):
            raise IRError(f"{function.name}: {where} uses non-value {value!r}")
        if value.type == Type.VOID:
            raise IRError(f"{function.name}: {where} uses void %{value.id}")
        def_block = value.block
        if id(def_block) not in reachable or id(user_block) not in reachable:
            return  # unreachable code is not checked for dominance
        if def_block is user_block:
            if position[id(value)] >= user_pos:
                raise IRError(
                    f"{function.name}: {where} uses %{value.id} before definition"
                )
        elif id(def_block) not in dom[id(user_block)]:
            raise IRError(
                f"{function.name}: {where} not dominated by def of %{value.id}"
            )

    for block in function.blocks:
        for i, instr in enumerate(block.instructions):
            where = f"%{instr.id} in {block.name}"
            if instr.op == "phi":
                for value, pred in instr.incomings:
                    # the incoming value must be available at the end of pred
                    check_use(pred, len(pred.instructions), value, where)
            else:
                for value in instr.args:
                    check_use(block, i, value, where)


def verify_module(module: Module) -> None:
    for function in module.functions:
        verify_function(function)
