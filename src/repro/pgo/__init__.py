"""Profile-guided optimization: close the loop from samples to plans.

The paper's headline use case (§6, Figs. 10-11) is a *human* reading
multi-level profiles to pick a better plan.  This package lets the system
consume its own attributed samples instead: persisted profiling sessions
become machine-readable feedback that flows back into every lowering layer.

* :mod:`repro.pgo.fingerprint` — normalized-SQL query fingerprints and
  structural plan signatures (the keys everything else is filed under).
* :mod:`repro.pgo.feedback` — the feedback extractor: observed per-operator
  cardinalities from task tuple counts, branch taken/miss statistics from
  sampled branch outcomes, per-IR-instruction hotness from cycle samples.
* :mod:`repro.pgo.store` — the profile store: feedback merged across runs,
  keyed by fingerprint, persisted via the ``profiling.session`` flow.
* :mod:`repro.pgo.model` — a :class:`~repro.plan.cardinality.CardinalityModel`
  that overrides estimates with observations, so GOO join ordering and
  build-side choice flip to the observed-better plan without hints.
"""

from repro.pgo.feedback import (
    BranchStats,
    CardinalityObservation,
    QueryFeedback,
    extract_feedback,
)
from repro.pgo.fingerprint import (
    cardinality_key,
    fingerprint,
    plan_signature,
)
from repro.pgo.model import FeedbackCardinalityModel
from repro.pgo.store import ProfileStore

__all__ = [
    "BranchStats",
    "CardinalityObservation",
    "FeedbackCardinalityModel",
    "ProfileStore",
    "QueryFeedback",
    "cardinality_key",
    "extract_feedback",
    "fingerprint",
    "plan_signature",
]
