"""The feedback extractor: one profiled run -> machine-readable feedback.

Three observation channels, matching the three consumers:

* **cardinalities** — per-operator observed output counts, read from the
  task tuple counters the engine plants at every task entry when profiling
  with ``pgo=True`` (the entry count of task *k* is the output of the
  operator owning task *k-1*);
* **branches** — per-``condbr`` condition-truth rates from sampled branch
  outcomes, plus mispredict sample counts from ``BRANCH_MISS`` runs;
* **hotness** — per-IR-instruction sample counts from cycle/instruction
  samples, keyed by the post-optimization ``function|block|index`` position
  (stable across recompiles because the optimizer is deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pgo.fingerprint import cardinality_key, plan_signature
from repro.vm.pmu import Event


@dataclass
class CardinalityObservation:
    """Observed output cardinality of one subplan, averaged across runs."""

    rows: float
    estimate: float = 0.0
    runs: int = 1

    def combined(self, other: "CardinalityObservation") -> "CardinalityObservation":
        total = self.runs + other.runs
        rows = (self.rows * self.runs + other.rows * other.runs) / total
        return CardinalityObservation(
            rows=rows, estimate=other.estimate or self.estimate, runs=total
        )

    def to_json(self) -> dict:
        return {"rows": self.rows, "estimate": self.estimate, "runs": self.runs}

    @classmethod
    def from_json(cls, doc: dict) -> "CardinalityObservation":
        return cls(
            rows=doc["rows"], estimate=doc.get("estimate", 0.0),
            runs=doc.get("runs", 1),
        )


@dataclass
class BranchStats:
    """Sampled outcome statistics for one ``condbr``."""

    cond_true: int = 0
    total: int = 0
    misses: int = 0

    @property
    def taken_rate(self) -> float:
        return self.cond_true / self.total if self.total else 0.5

    def combined(self, other: "BranchStats") -> "BranchStats":
        return BranchStats(
            cond_true=self.cond_true + other.cond_true,
            total=self.total + other.total,
            misses=self.misses + other.misses,
        )

    def to_json(self) -> dict:
        return {"true": self.cond_true, "total": self.total,
                "misses": self.misses}

    @classmethod
    def from_json(cls, doc: dict) -> "BranchStats":
        return cls(cond_true=doc["true"], total=doc["total"],
                   misses=doc.get("misses", 0))


@dataclass
class QueryFeedback:
    """Everything a later compile of the same query can consume."""

    sql: str = ""
    plan_signature: str = ""
    runs: int = 1
    cardinalities: dict[str, CardinalityObservation] = field(default_factory=dict)
    branches: dict[str, BranchStats] = field(default_factory=dict)
    hotness: dict[str, float] = field(default_factory=dict)

    # -- consumer views -----------------------------------------------------

    def cardinality_overrides(self) -> dict[str, float]:
        return {key: obs.rows for key, obs in self.cardinalities.items()}

    def branch_probabilities(self, min_samples: int = 12) -> dict[str, float]:
        """p(condition true) per ``fn|block|idx`` key, noise-filtered.

        The default threshold is deliberately high: inverting a branch on
        a handful of samples is a coin flip (at n=10 a fair branch shows
        p <= 0.4 over a third of the time), and profiling the same query
        again merges outcome counts, so confidence accrues across runs."""
        return {
            key: stats.taken_rate
            for key, stats in self.branches.items()
            if stats.total >= min_samples
        }

    def matches_plan(self, signature: str) -> bool:
        """Backend feedback (branches, hotness) is only valid for the plan
        it was measured on; cardinalities are plan-independent."""
        return bool(self.plan_signature) and self.plan_signature == signature

    # -- merging ------------------------------------------------------------

    def merge(self, newer: "QueryFeedback") -> "QueryFeedback":
        """Fold a newer run into this feedback.

        Cardinalities always merge (a subplan's output count does not
        depend on the surrounding plan); branch and hotness observations
        are replaced when the newer run executed a different plan.
        """
        cards = dict(self.cardinalities)
        for key, obs in newer.cardinalities.items():
            prev = cards.get(key)
            cards[key] = prev.combined(obs) if prev else obs
        if newer.plan_signature == self.plan_signature:
            branches = dict(self.branches)
            for key, stats in newer.branches.items():
                prev = branches.get(key)
                branches[key] = prev.combined(stats) if prev else stats
            hotness = dict(self.hotness)
            for key, weight in newer.hotness.items():
                hotness[key] = hotness.get(key, 0.0) + weight
            signature = self.plan_signature
        else:
            branches = dict(newer.branches)
            hotness = dict(newer.hotness)
            signature = newer.plan_signature
        return QueryFeedback(
            sql=newer.sql or self.sql,
            plan_signature=signature,
            runs=self.runs + newer.runs,
            cardinalities=cards,
            branches=branches,
            hotness=hotness,
        )

    # -- persistence --------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "sql": self.sql,
            "plan_signature": self.plan_signature,
            "runs": self.runs,
            "cardinalities": {
                key: obs.to_json() for key, obs in self.cardinalities.items()
            },
            "branches": {
                key: stats.to_json() for key, stats in self.branches.items()
            },
            "hotness": self.hotness,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "QueryFeedback":
        return cls(
            sql=doc.get("sql", ""),
            plan_signature=doc.get("plan_signature", ""),
            runs=doc.get("runs", 1),
            cardinalities={
                key: CardinalityObservation.from_json(obs)
                for key, obs in doc.get("cardinalities", {}).items()
            },
            branches={
                key: BranchStats.from_json(stats)
                for key, stats in doc.get("branches", {}).items()
            },
            hotness=dict(doc.get("hotness", {})),
        )


def ir_position_keys(module) -> dict[int, str]:
    """``instr.id -> "fn|block|idx"`` over a (post-optimization) module.

    Block names and in-block indices are deterministic for a given query,
    so the keys line up between the profiled compile and any recompile of
    the same plan."""
    keys: dict[int, str] = {}
    for fn in module.functions:
        for block in fn.blocks:
            for idx, instr in enumerate(block.instructions):
                keys[instr.id] = f"{fn.name}|{block.name}|{idx}"
    return keys


def extract_feedback(profile) -> QueryFeedback:
    """Turn one :class:`~repro.profiling.profile.Profile` into feedback."""
    cardinalities: dict[str, CardinalityObservation] = {}
    task_counts = getattr(profile, "task_counts", {}) or {}
    estimates = getattr(profile, "estimates", {}) or {}
    for pipeline in profile.pipelines:
        tasks = pipeline.tasks
        for position in range(1, len(tasks)):
            count = task_counts.get(tasks[position].id)
            if count is None:
                continue
            producer = tasks[position - 1].operator
            key = cardinality_key(producer)
            if key is None:
                continue
            observation = CardinalityObservation(
                rows=float(count),
                estimate=float(estimates.get(producer.op_id, 0.0)),
            )
            previous = cardinalities.get(key)
            if previous is None or observation.rows > previous.rows:
                cardinalities[key] = observation

    position_of = ir_position_keys(profile.ir_module)
    branches: dict[str, BranchStats] = {}
    hotness: dict[str, float] = {}
    event = profile.config.event
    count_hotness = event in (Event.CYCLES, Event.INSTRUCTIONS)
    for attribution in profile.attributions:
        ir_id = attribution.ir_id
        if ir_id is None:
            continue
        key = position_of.get(ir_id)
        if key is None:
            continue
        if count_hotness:
            hotness[key] = hotness.get(key, 0.0) + 1.0
        sample = attribution.sample
        taken = getattr(sample, "branch_taken", None)
        if taken is not None:
            stats = branches.setdefault(key, BranchStats())
            stats.total += 1
            if taken:
                stats.cond_true += 1
            if event is Event.BRANCH_MISS:
                stats.misses += 1

    return QueryFeedback(
        sql=getattr(profile, "sql", "") or "",
        plan_signature=plan_signature(profile.physical),
        runs=1,
        cardinalities=cardinalities,
        branches=branches,
        hotness=hotness,
    )
