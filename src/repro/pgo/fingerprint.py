"""Stable keys for profile-guided feedback.

Operator ids, IU ids, task ids, and IR instruction ids all come from global
counters — none survives a recompile.  Feedback therefore uses *structural*
keys only:

* the **query fingerprint** hashes the normalized SQL text, so profiles of
  the same query merge across runs (and across join-order hints: the hint
  changes the plan, not the query, so hinted exploration runs — the paper's
  Fig. 10/11 workflow — feed the same feedback pool);
* the **cardinality key** names a subplan by its logical kind plus the
  multiset of scanned aliases, which is invariant under join reordering of
  the surrounding plan;
* the **plan signature** hashes the physical tree shape, guarding
  plan-shape-dependent feedback (branch layout, hotness) against reuse
  after the planner flips to a different plan.
"""

from __future__ import annotations

import hashlib

from repro.plan.logical import LogicalOperator, LogicalScan
from repro.plan.physical import PhysicalOperator, PhysicalScan

# physical kinds mapped onto the logical vocabulary used in cardinality keys
_PHYSICAL_TO_LOGICAL_KIND = {
    "scan": "scan",
    "select": "filter",
    "hashjoin": "join",
    "semijoin": "semijoin",
    "map": "map",
    "groupby": "groupby",
    "sort": "sort",
    "limit": "limit",
}


def fingerprint(sql: str) -> str:
    """Hash of the whitespace/case-normalized SQL text."""
    normalized = " ".join(sql.lower().split())
    return hashlib.sha256(normalized.encode()).hexdigest()[:16]


def _scan_aliases(op) -> list[str]:
    scan_type = LogicalScan if isinstance(op, LogicalOperator) else PhysicalScan
    return sorted(
        node.alias for node in op.walk() if isinstance(node, scan_type)
    )


def cardinality_key(op) -> str | None:
    """``kind|alias,alias,...`` for a logical or physical subplan.

    Aliases keep multiplicity (a subquery may rescan a relation), so the
    key distinguishes e.g. Q2's inner and outer partsupp subplans.  Returns
    ``None`` for operators whose output count is not a meaningful
    cardinality observation (output, groupjoin fusion).
    """
    kind = op.kind
    if isinstance(op, PhysicalOperator):
        kind = _PHYSICAL_TO_LOGICAL_KIND.get(kind)
        if kind is None:
            return None
    elif kind not in _PHYSICAL_TO_LOGICAL_KIND.values():
        return None
    return f"{kind}|{','.join(_scan_aliases(op))}"


def plan_signature(root: PhysicalOperator) -> str:
    """Structural hash of a physical plan tree (shape + scan aliases)."""

    def render(op: PhysicalOperator) -> str:
        name = op.kind
        if isinstance(op, PhysicalScan):
            name += f":{op.alias}"
        children = ",".join(render(child) for child in op.children())
        return f"{name}({children})"

    return hashlib.sha256(render(root).encode()).hexdigest()[:16]
