"""A cardinality model that prefers observation over estimation.

Injected into the binder in place of the default
:class:`~repro.plan.cardinality.CardinalityModel`, it makes every consumer
of estimates feedback-aware for free: GOO join ordering compares observed
join sizes and physical planning picks build sides by observed cardinality.
(Hash-table sizing uses these estimates too, but the engine clamps them to
at least the a-priori guess — see ``Database._compile`` — because shrinking
a directory only adds probe collisions.)
"""

from __future__ import annotations

from repro.pgo.fingerprint import cardinality_key
from repro.plan.cardinality import CardinalityModel
from repro.plan.logical import LogicalOperator


class FeedbackCardinalityModel(CardinalityModel):
    """Overrides estimates for subplans with an observed cardinality."""

    def __init__(self, overrides: dict[str, float] | None = None):
        super().__init__()
        self._overrides = dict(overrides or {})
        self.hits: int = 0  # overrides actually consulted (for reporting)

    def _estimate(self, op: LogicalOperator) -> float:
        key = cardinality_key(op)
        if key is not None:
            observed = self._overrides.get(key)
            if observed is not None:
                self.hits += 1
                return max(1.0, observed)
        return super()._estimate(op)
