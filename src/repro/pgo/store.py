"""The profile store: fingerprint-keyed feedback, merged across runs.

Layout on disk (when given a directory; otherwise purely in-memory)::

    store/
      <fingerprint>/
        feedback.json      merged QueryFeedback
        runs/run_<n>/      full profiling session (profiling.session flow)

Each recorded profile is persisted through :func:`save_session`, so every
run stays inspectable with the offline post-processing tools; the merged
``feedback.json`` is what the planner and backend consume.  The store's
per-fingerprint ``version`` (the run count) lets the engine's compiled-plan
cache detect fresh feedback and recompile.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ReproError
from repro.pgo.feedback import QueryFeedback, extract_feedback
from repro.pgo.fingerprint import fingerprint

_FEEDBACK_FILE = "feedback.json"


class ProfileStore:
    """Aggregated profiles, keyed by query fingerprint."""

    def __init__(self, directory=None):
        self.directory = pathlib.Path(directory) if directory else None
        self._feedback: dict[str, QueryFeedback] = {}
        if self.directory is not None and self.directory.exists():
            if not self.directory.is_dir():
                raise ReproError(
                    f"profile store path is not a directory: {self.directory}"
                )
            self._load()

    def _load(self) -> None:
        for child in sorted(self.directory.iterdir()):
            feedback_path = child / _FEEDBACK_FILE
            if child.is_dir() and feedback_path.exists():
                doc = json.loads(feedback_path.read_text())
                self._feedback[child.name] = QueryFeedback.from_json(doc)

    # -- recording ----------------------------------------------------------

    def record(self, profile) -> QueryFeedback:
        """Extract feedback from a profiled run and merge it in."""
        sql = getattr(profile, "sql", "") or ""
        key = fingerprint(sql)
        extracted = extract_feedback(profile)
        previous = self._feedback.get(key)
        merged = previous.merge(extracted) if previous else extracted
        self._feedback[key] = merged
        if self.directory is not None:
            query_dir = self.directory / key
            run_dir = query_dir / "runs" / f"run_{merged.runs}"
            from repro.profiling.session import save_session

            save_session(profile, run_dir)
            query_dir.mkdir(parents=True, exist_ok=True)
            (query_dir / _FEEDBACK_FILE).write_text(
                json.dumps(merged.to_json(), indent=1)
            )
        return merged

    # -- lookups ------------------------------------------------------------

    def feedback(self, sql_or_fingerprint: str) -> QueryFeedback | None:
        """Feedback for a query, by SQL text or fingerprint."""
        direct = self._feedback.get(sql_or_fingerprint)
        if direct is not None:
            return direct
        return self._feedback.get(fingerprint(sql_or_fingerprint))

    def version(self, sql_or_fingerprint: str) -> int:
        """Monotonic per-query feedback version (0 = nothing recorded)."""
        feedback = self.feedback(sql_or_fingerprint)
        return feedback.runs if feedback else 0

    def fingerprints(self) -> list[str]:
        return sorted(self._feedback)

    def __len__(self) -> int:
        return len(self._feedback)
