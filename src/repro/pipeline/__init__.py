"""Lowering step 1: the physical plan becomes pipelines of tasks (Fig. 8b)."""

from repro.pipeline.tasks import Pipeline, Task
from repro.pipeline.pipeliner import decompose

__all__ = ["Pipeline", "Task", "decompose"]
