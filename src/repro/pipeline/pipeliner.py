"""Splitting the physical plan at materialization points (§5.1).

Mirrors Umbra: the dataflow graph is split at tuple materialization points
— hash-join builds, group-by hash tables, sort buffers — yielding pipelines
whose tasks are registered here.  Task registration is one of the funnel
points the Abstraction Trackers hook (the ``on_task`` callback).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PlanError
from repro.pipeline.tasks import Pipeline, Task
from repro.plan.physical import (
    PhysicalSemiJoin,
    PhysicalGroupBy,
    PhysicalGroupJoin,
    PhysicalHashJoin,
    PhysicalLimit,
    PhysicalMap,
    PhysicalOperator,
    PhysicalOutput,
    PhysicalScan,
    PhysicalSelect,
    PhysicalSort,
)


def decompose(
    root: PhysicalOutput,
    on_task: Callable[[Task], None] | None = None,
) -> list[Pipeline]:
    """Return the query's pipelines in execution order."""
    pipelines: list[Pipeline] = []

    def new_task(operator: PhysicalOperator, role: str) -> Task:
        task = Task(operator, role)
        if on_task is not None:
            on_task(task)
        return task

    def finish(tasks: list[Task]) -> None:
        pipelines.append(Pipeline(len(pipelines), tasks))

    def visit(op: PhysicalOperator) -> list[Task]:
        """Return the open task list of the pipeline producing op's tuples."""
        if isinstance(op, PhysicalScan):
            return [new_task(op, "scan")]
        if isinstance(op, PhysicalSelect):
            return visit(op.child) + [new_task(op, "filter")]
        if isinstance(op, PhysicalMap):
            return visit(op.child) + [new_task(op, "map")]
        if isinstance(op, PhysicalHashJoin):
            build_tasks = visit(op.build)
            finish(build_tasks + [new_task(op, "build")])
            return visit(op.probe) + [new_task(op, "probe")]
        if isinstance(op, PhysicalSemiJoin):
            build_tasks = visit(op.build)
            finish(build_tasks + [new_task(op, "semi-build")])
            return visit(op.probe) + [new_task(op, "semi-probe")]
        if isinstance(op, PhysicalGroupBy):
            child_tasks = visit(op.child)
            finish(child_tasks + [new_task(op, "materialize")])
            return [new_task(op, "aggregate")]
        if isinstance(op, PhysicalGroupJoin):
            build_tasks = visit(op.build)
            finish(build_tasks + [new_task(op, "groupjoin-join build")])
            probe_tasks = visit(op.probe)
            finish(probe_tasks + [new_task(op, "groupjoin-groupby probe")])
            return [new_task(op, "groupjoin-groupby output")]
        if isinstance(op, PhysicalSort):
            child_tasks = visit(op.child)
            finish(child_tasks + [new_task(op, "materialize")])
            return [new_task(op, "output-scan")]
        if isinstance(op, PhysicalLimit):
            return visit(op.child) + [new_task(op, "limit")]
        raise PlanError(f"cannot pipeline {type(op).__name__}")

    if not isinstance(root, PhysicalOutput):
        raise PlanError("pipeline decomposition expects an output root")
    final = visit(root.child) + [new_task(root, "output")]
    finish(final)
    return pipelines
