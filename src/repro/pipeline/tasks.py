"""Tasks and pipelines — the abstraction level between plan and IR.

A *pipeline* processes tuples from a source to a materialization point
without copying them in between; a *task* is one operator's contribution to
a pipeline (a materializing operator contributes tasks to several pipelines,
e.g. a join's build and probe).  Tasks are the second abstraction level of
the Tagging Dictionary: Log A links each task to its operator, Log B links
IR instructions to tasks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.plan.physical import PhysicalOperator

_task_counter = itertools.count(1)


@dataclass(frozen=True, eq=False)
class Task:
    """One operator's role in one pipeline."""

    operator: PhysicalOperator
    role: str
    id: int = field(default_factory=lambda: next(_task_counter))

    @property
    def label(self) -> str:
        return f"{self.role}({self.operator.label})"

    def __repr__(self) -> str:
        return f"<Task {self.id} {self.label}>"


@dataclass
class Pipeline:
    """An ordered task list; the first task drives the tuple loop."""

    index: int
    tasks: list[Task]

    @property
    def driver(self) -> Task:
        return self.tasks[0]

    @staticmethod
    def morsels(total: int, morsel_size: int):
        """Split a tuple domain into ``(index, lo, hi)`` morsel ranges.

        Shared by the engine's morsel loop and the serve scheduler so both
        produce identical work units for the same domain."""
        for index, lo in enumerate(range(0, total, morsel_size)):
            yield index, lo, min(total, lo + morsel_size)

    @property
    def label(self) -> str:
        return " -> ".join(t.label for t in self.tasks)

    def __repr__(self) -> str:
        return f"<Pipeline {self.index}: {self.label}>"
