"""Logical and physical query plans — the paper's "dataflow graph" level.

The plan of relational operators is the topmost abstraction level the
Tagging Dictionary maps back to; it is what the domain expert sees in the
annotated-plan report (Fig. 9).
"""

from repro.plan.expr import (
    IU,
    AggCall,
    BinaryExpr,
    CaseExpr,
    CompareExpr,
    ConstExpr,
    Expr,
    FuncExpr,
    IURef,
    InSetExpr,
    LogicalExpr,
    NotExpr,
)
from repro.plan.logical import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalMap,
    LogicalOperator,
    LogicalOutput,
    LogicalScan,
    LogicalSort,
)
from repro.plan.physical import (
    PhysicalGroupBy,
    PhysicalGroupJoin,
    PhysicalHashJoin,
    PhysicalLimit,
    PhysicalMap,
    PhysicalOperator,
    PhysicalOutput,
    PhysicalScan,
    PhysicalSelect,
    PhysicalSort,
)

__all__ = [
    "IU", "AggCall", "BinaryExpr", "CaseExpr", "CompareExpr", "ConstExpr",
    "Expr", "FuncExpr", "IURef", "InSetExpr", "LogicalExpr", "NotExpr",
    "LogicalFilter", "LogicalGroupBy", "LogicalJoin", "LogicalLimit",
    "LogicalMap", "LogicalOperator", "LogicalOutput", "LogicalScan",
    "LogicalSort",
    "PhysicalGroupBy", "PhysicalGroupJoin", "PhysicalHashJoin",
    "PhysicalLimit", "PhysicalMap", "PhysicalOperator", "PhysicalOutput",
    "PhysicalScan", "PhysicalSelect", "PhysicalSort",
]
