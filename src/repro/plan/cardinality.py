"""Cardinality estimation for the optimizer.

Classic System-R-style model over the column statistics the catalog keeps:
equality selects 1/ndv, ranges interpolate against min/max, joins divide by
the larger key ndv.  The optimizer-developer use case (Fig. 10) is exactly a
situation where two plans are *indistinguishable* under this model and only
profiling reveals which one wins — so the model being simple is faithful.
"""

from __future__ import annotations

from repro.catalog.table import ColumnStats
from repro.plan.expr import (
    IU,
    CompareExpr,
    ConstExpr,
    Expr,
    IURef,
    InSetExpr,
    LogicalExpr,
    NotExpr,
)
from repro.plan.logical import (
    LogicalFilter,
    LogicalSemiJoin,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalMap,
    LogicalOperator,
    LogicalOutput,
    LogicalScan,
    LogicalSort,
)

DEFAULT_SELECTIVITY = 0.33
EQ_FALLBACK_NDV = 10


class CardinalityModel:
    """Estimates row counts for (sub)plans, memoized per operator."""

    def __init__(self):
        self._iu_stats: dict[int, ColumnStats] = {}
        self._cache: dict[int, float] = {}

    def _harvest_stats(self, op: LogicalOperator) -> None:
        for node in op.walk():
            if isinstance(node, LogicalScan):
                for column, iu in node.column_ius.items():
                    if iu.id not in self._iu_stats:
                        index = node.table.schema.index_of(column)
                        self._iu_stats[iu.id] = node.table.stats_for(index)

    def stats_of(self, iu: IU) -> ColumnStats | None:
        return self._iu_stats.get(iu.id)

    def ndv(self, expr: Expr, fallback: float) -> float:
        if isinstance(expr, IURef):
            stats = self.stats_of(expr.iu)
            if stats is not None and stats.distinct > 0:
                return stats.distinct
        return fallback

    # -- selectivity -------------------------------------------------------

    def selectivity(self, expr: Expr) -> float:
        if isinstance(expr, LogicalExpr):
            parts = [self.selectivity(e) for e in expr.operands]
            if expr.op == "and":
                s = 1.0
                for p in parts:
                    s *= p
                return s
            return min(1.0, sum(parts))
        if isinstance(expr, NotExpr):
            return max(0.0, 1.0 - self.selectivity(expr.operand))
        if isinstance(expr, InSetExpr):
            operand = expr.operand
            if isinstance(operand, IURef):
                stats = self.stats_of(operand.iu)
                if stats is not None and stats.distinct > 0:
                    return min(1.0, len(expr.values) / stats.distinct)
            return min(1.0, len(expr.values) / EQ_FALLBACK_NDV)
        if isinstance(expr, CompareExpr):
            return self._compare_selectivity(expr)
        return DEFAULT_SELECTIVITY

    def _compare_selectivity(self, expr: CompareExpr) -> float:
        column, constant = expr.left, expr.right
        op = expr.op
        if isinstance(column, ConstExpr) and not isinstance(constant, ConstExpr):
            column, constant = constant, column
            flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}
            op = flip.get(op, op)
        if not isinstance(constant, ConstExpr) or not isinstance(column, IURef):
            return DEFAULT_SELECTIVITY
        stats = self.stats_of(column.iu)
        if stats is None or stats.distinct == 0:
            return DEFAULT_SELECTIVITY
        if op == "=":
            return 1.0 / stats.distinct
        if op == "<>":
            return 1.0 - 1.0 / stats.distinct
        lo, hi = stats.min_value, stats.max_value
        if (
            lo is None
            or hi is None
            or not isinstance(constant.value, (int, float))
            or hi <= lo
        ):
            return DEFAULT_SELECTIVITY
        fraction = (constant.value - lo) / (hi - lo)
        fraction = min(1.0, max(0.0, fraction))
        if op in ("<", "<="):
            return fraction
        return 1.0 - fraction

    # -- cardinality --------------------------------------------------------

    def estimate(self, op: LogicalOperator) -> float:
        if op.op_id in self._cache:
            return self._cache[op.op_id]
        self._harvest_stats(op)
        card = self._estimate(op)
        self._cache[op.op_id] = card
        return card

    def _estimate(self, op: LogicalOperator) -> float:
        if isinstance(op, LogicalScan):
            return float(op.table.row_count)
        if isinstance(op, LogicalFilter):
            return self.estimate(op.child) * self.selectivity(op.condition)
        if isinstance(op, LogicalJoin):
            left = self.estimate(op.left)
            right = self.estimate(op.right)
            denom = 1.0
            for lk, rk in zip(op.left_keys, op.right_keys):
                denom = max(denom, self.ndv(lk, left), self.ndv(rk, right))
            card = left * right / denom
            if op.residual is not None:
                card *= self.selectivity(op.residual)
            return max(card, 1.0)
        if isinstance(op, LogicalSemiJoin):
            left = self.estimate(op.left)
            right = self.estimate(op.right)
            key_ndv = self.ndv(op.left_keys[0], max(left, 1.0))
            # fraction of distinct outer keys with a match (containment)
            match_fraction = min(1.0, right / max(key_ndv, 1.0))
            fraction = (1.0 - match_fraction) if op.anti else match_fraction
            return max(1.0, left * max(0.05, min(0.95, fraction)))
        if isinstance(op, LogicalGroupBy):
            child = self.estimate(op.child)
            if not op.keys:
                return 1.0
            groups = 1.0
            for _, key_expr in op.keys:
                groups *= self.ndv(key_expr, max(child, 1.0) ** 0.5)
            return max(1.0, min(child, groups))
        if isinstance(op, LogicalLimit):
            return min(self.estimate(op.child), float(op.count))
        if isinstance(op, (LogicalMap, LogicalSort, LogicalOutput)):
            return self.estimate(op.child)
        raise TypeError(f"no cardinality rule for {type(op).__name__}")
