"""Bound expressions over Information Units (IUs).

Following Umbra's design, every value flowing through a plan is an IU: scan
operators produce one IU per referenced column, maps and group-bys produce
IUs for computed values.  Expressions reference IUs, so they are independent
of tuple layout — the code generator resolves an IU to whatever SSA value
currently holds it in the pipeline's tuple context.

Typing rules (storage encodings are documented in
:mod:`repro.catalog.schema`): DECIMAL arithmetic stays in integer
hundredths (multiplication rescales by 100, truncating — matching the
generated code exactly); any division produces FLOAT; DATE ± INT is DATE;
DATE - DATE is INT days.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.catalog.schema import DataType
from repro.errors import PlanError

_iu_counter = itertools.count(1)


@dataclass(frozen=True, eq=False)
class IU:
    """One named, typed value slot produced by an operator."""

    name: str
    dtype: DataType
    id: int = field(default_factory=lambda: next(_iu_counter))

    def __repr__(self) -> str:
        return f"IU({self.name}:{self.dtype.value}#{self.id})"


class Expr:
    """Base class for bound expressions."""

    dtype: DataType

    def ius(self) -> set[IU]:
        """All IUs referenced by this expression tree."""
        out: set[IU] = set()
        self._collect(out)
        return out

    def _collect(self, out: set[IU]) -> None:
        for child in self.children():
            child._collect(out)

    def children(self) -> list["Expr"]:
        return []


@dataclass(frozen=True)
class IURef(Expr):
    iu: IU

    @property
    def dtype(self) -> DataType:
        return self.iu.dtype

    def _collect(self, out: set[IU]) -> None:
        out.add(self.iu)

    def __str__(self) -> str:
        return self.iu.name


@dataclass(frozen=True)
class ConstExpr(Expr):
    """A literal in storage encoding (cents, day ordinal, dictionary id)."""

    value: int | float
    dtype: DataType

    def __str__(self) -> str:
        return str(self.value)


_ARITH_OPS = {"+", "-", "*", "/", "%"}


@dataclass(frozen=True)
class BinaryExpr(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _ARITH_OPS:
            raise PlanError(f"unknown arithmetic operator {self.op!r}")

    @property
    def dtype(self) -> DataType:
        lt, rt = self.left.dtype, self.right.dtype
        if self.op == "/":
            return DataType.FLOAT
        if self.op == "%":
            # C-style remainder on the encoded integers (used by window
            # bucketing); a date remainder is a day count, not a date
            if DataType.FLOAT in (lt, rt):
                raise PlanError("% is defined on encoded integers only")
            return DataType.INT if lt is DataType.DATE else lt
        if DataType.FLOAT in (lt, rt):
            return DataType.FLOAT
        if lt is DataType.DATE and rt is DataType.DATE:
            if self.op != "-":
                raise PlanError("only subtraction is defined between dates")
            return DataType.INT
        if DataType.DATE in (lt, rt):
            return DataType.DATE
        if DataType.DECIMAL in (lt, rt):
            return DataType.DECIMAL
        return DataType.INT

    def children(self) -> list[Expr]:
        return [self.left, self.right]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


_CMP_OPS = {"=", "<>", "<", "<=", ">", ">="}


@dataclass(frozen=True)
class CompareExpr(Expr):
    op: str
    left: Expr
    right: Expr
    dtype: DataType = DataType.BOOL

    def __post_init__(self):
        if self.op not in _CMP_OPS:
            raise PlanError(f"unknown comparison operator {self.op!r}")

    def children(self) -> list[Expr]:
        return [self.left, self.right]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class LogicalExpr(Expr):
    """AND / OR over boolean operands."""

    op: str  # "and" | "or"
    operands: tuple[Expr, ...]
    dtype: DataType = DataType.BOOL

    def children(self) -> list[Expr]:
        return list(self.operands)

    def __str__(self) -> str:
        return "(" + f" {self.op} ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class NotExpr(Expr):
    operand: Expr
    dtype: DataType = DataType.BOOL

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class InSetExpr(Expr):
    """Membership in a compile-time set of encoded values.

    This is what IN-lists and (NOT) LIKE bind to: LIKE patterns are resolved
    against the frozen string dictionary at compile time.
    """

    operand: Expr
    values: frozenset[int]
    dtype: DataType = DataType.BOOL

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        preview = sorted(self.values)[:4]
        suffix = ", ..." if len(self.values) > 4 else ""
        return f"({self.operand} in {{{', '.join(map(str, preview))}{suffix}}})"


@dataclass(frozen=True)
class CaseExpr(Expr):
    """CASE WHEN cond THEN value ... ELSE default END."""

    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr

    @property
    def dtype(self) -> DataType:
        return self.whens[0][1].dtype

    def children(self) -> list[Expr]:
        out = []
        for cond, value in self.whens:
            out.extend((cond, value))
        out.append(self.default)
        return out

    def __str__(self) -> str:
        parts = " ".join(f"when {c} then {v}" for c, v in self.whens)
        return f"(case {parts} else {self.default} end)"


_FUNCS = {
    "year": DataType.INT,
    "float": DataType.FLOAT,
    "to_cents": DataType.DECIMAL,  # INT -> DECIMAL promotion (x * 100)
}


@dataclass(frozen=True)
class FuncExpr(Expr):
    """Scalar builtins: ``year(date)``, ``float(x)``."""

    func: str
    operand: Expr

    def __post_init__(self):
        if self.func not in _FUNCS:
            raise PlanError(f"unknown function {self.func!r}")

    @property
    def dtype(self) -> DataType:
        return _FUNCS[self.func]

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        return f"{self.func}({self.operand})"


_AGG_KINDS = {"sum", "count", "min", "max"}


@dataclass(frozen=True)
class AggCall:
    """One primitive aggregate slot of a group-by.

    ``avg`` never appears here: the binder lowers it to sum/count plus a
    division in the output map.  ``count`` with ``arg=None`` is count(*).
    """

    kind: str
    arg: Expr | None
    output: IU

    def __post_init__(self):
        if self.kind not in _AGG_KINDS:
            raise PlanError(f"unknown aggregate {self.kind!r}")
        if self.kind != "count" and self.arg is None:
            raise PlanError(f"aggregate {self.kind} needs an argument")

    def __str__(self) -> str:
        return f"{self.kind}({self.arg if self.arg is not None else '*'})"


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, LogicalExpr) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(conjuncts(operand))
        return out
    return [expr]


def conjunction(exprs: list[Expr]) -> Expr | None:
    """Rebuild a single predicate from conjuncts."""
    if not exprs:
        return None
    if len(exprs) == 1:
        return exprs[0]
    return LogicalExpr("and", tuple(exprs))
