"""Reference executor: interprets physical plans directly in Python.

Two roles: (1) the correctness oracle the test suite compares compiled
execution against, and (2) the engine's ``EXPLAIN ANALYZE`` — the
tuple-counting facility the paper contrasts with sample-based operator costs
(§6.1: "the tuple count is a decent approximation, [but] our sampling
approach captures the actual time spent").

Expression semantics here must match generated code *exactly*; the shared
rules are documented in :mod:`repro.plan.expr`.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.catalog.schema import DataType
from repro.errors import PlanError
from repro.plan.expr import (
    AggCall,
    BinaryExpr,
    CaseExpr,
    CompareExpr,
    ConstExpr,
    Expr,
    FuncExpr,
    IURef,
    InSetExpr,
    LogicalExpr,
    NotExpr,
)
from repro.plan.physical import (
    PhysicalSemiJoin,
    PhysicalGroupBy,
    PhysicalGroupJoin,
    PhysicalHashJoin,
    PhysicalLimit,
    PhysicalMap,
    PhysicalOperator,
    PhysicalOutput,
    PhysicalScan,
    PhysicalSelect,
    PhysicalSort,
)


def _sdiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _natural(value, dtype: DataType) -> float:
    """Convert an encoded value to natural units for float arithmetic."""
    if dtype is DataType.DECIMAL:
        return value / 100
    return float(value)


def evaluate(expr: Expr, env: dict[int, object]):
    """Evaluate a bound expression against an IU environment."""
    if isinstance(expr, IURef):
        return env[expr.iu.id]
    if isinstance(expr, ConstExpr):
        return expr.value
    if isinstance(expr, BinaryExpr):
        lt, rt = expr.left.dtype, expr.right.dtype
        a = evaluate(expr.left, env)
        b = evaluate(expr.right, env)
        op = expr.op
        if op == "/":
            return _natural(a, lt) / _natural(b, rt)
        if expr.dtype is DataType.FLOAT:
            a, b = _natural(a, lt), _natural(b, rt)
            return a + b if op == "+" else a - b if op == "-" else a * b
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "%":
            return a - b * _sdiv(a, b)
        # multiplication: two cents operands need rescaling
        if lt is DataType.DECIMAL and rt is DataType.DECIMAL:
            return _sdiv(a * b, 100)
        return a * b
    if isinstance(expr, CompareExpr):
        a = evaluate(expr.left, env)
        b = evaluate(expr.right, env)
        op = expr.op
        if op == "=":
            return 1 if a == b else 0
        if op == "<>":
            return 1 if a != b else 0
        if op == "<":
            return 1 if a < b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">":
            return 1 if a > b else 0
        return 1 if a >= b else 0
    if isinstance(expr, LogicalExpr):
        if expr.op == "and":
            for operand in expr.operands:
                if not evaluate(operand, env):
                    return 0
            return 1
        for operand in expr.operands:
            if evaluate(operand, env):
                return 1
        return 0
    if isinstance(expr, NotExpr):
        return 0 if evaluate(expr.operand, env) else 1
    if isinstance(expr, InSetExpr):
        return 1 if evaluate(expr.operand, env) in expr.values else 0
    if isinstance(expr, CaseExpr):
        for cond, value in expr.whens:
            if evaluate(cond, env):
                return evaluate(value, env)
        return evaluate(expr.default, env)
    if isinstance(expr, FuncExpr):
        value = evaluate(expr.operand, env)
        if expr.func == "year":
            return datetime.date.fromordinal(value).year
        if expr.func == "float":
            return float(value)
        if expr.func == "to_cents":
            return value * 100
        raise PlanError(f"unknown function {expr.func}")
    raise PlanError(f"cannot evaluate {type(expr).__name__}")


@dataclass
class _AggState:
    """Running aggregate values for one group."""

    values: list = field(default_factory=list)
    count_matched: int = 0


def _init_agg(aggregates: list[AggCall]) -> list:
    out = []
    for agg in aggregates:
        if agg.kind == "count":
            out.append(0)
        elif agg.kind == "sum":
            out.append(0 if agg.arg.dtype is not DataType.FLOAT else 0.0)
        else:
            out.append(None)
    return out


def _update_agg(state: list, aggregates: list[AggCall], env) -> None:
    for i, agg in enumerate(aggregates):
        if agg.kind == "count":
            state[i] += 1
            continue
        value = evaluate(agg.arg, env)
        if agg.kind == "sum":
            state[i] += value
        elif agg.kind == "min":
            state[i] = value if state[i] is None else min(state[i], value)
        elif agg.kind == "max":
            state[i] = value if state[i] is None else max(state[i], value)


class Interpreter:
    """Executes a physical plan; records per-operator tuple counts."""

    def __init__(self):
        self.tuple_counts: dict[int, int] = {}

    def _count(self, op: PhysicalOperator, n: int = 1) -> None:
        self.tuple_counts[op.op_id] = self.tuple_counts.get(op.op_id, 0) + n

    def run(self, root: PhysicalOutput) -> list[tuple]:
        if not isinstance(root, PhysicalOutput):
            raise PlanError("plan root must be an output operator")
        rows = []
        for env in self._execute(root.child):
            self._count(root)
            rows.append(tuple(env[iu.id] for _, iu in root.columns))
        return rows

    def _execute(self, op: PhysicalOperator):  # noqa: C901
        if isinstance(op, PhysicalScan):
            ius = list(op.column_ius.items())
            columns = [(iu.id, op.table.column_named(name)) for name, iu in ius]
            for row_index in range(op.table.row_count):
                self._count(op)
                yield {iu_id: column[row_index] for iu_id, column in columns}
            return

        if isinstance(op, PhysicalSelect):
            for env in self._execute(op.child):
                if evaluate(op.condition, env):
                    self._count(op)
                    yield env
            return

        if isinstance(op, PhysicalMap):
            for env in self._execute(op.child):
                self._count(op)
                for iu, expr in op.computed:
                    env[iu.id] = evaluate(expr, env)
                yield env
            return

        if isinstance(op, PhysicalHashJoin):
            table: dict[tuple, list[dict]] = {}
            for env in self._execute(op.build):
                key = tuple(evaluate(k, env) for k in op.build_keys)
                table.setdefault(key, []).append(env)
            for env in self._execute(op.probe):
                key = tuple(evaluate(k, env) for k in op.probe_keys)
                for build_env in table.get(key, ()):
                    joined = {**build_env, **env}
                    if op.residual is not None and not evaluate(op.residual, joined):
                        continue
                    self._count(op)
                    yield joined
            return

        if isinstance(op, PhysicalSemiJoin):
            table: dict[tuple, list[dict]] = {}
            for env in self._execute(op.build):
                key = tuple(evaluate(k, env) for k in op.build_keys)
                table.setdefault(key, []).append(env)
            for env in self._execute(op.probe):
                key = tuple(evaluate(k, env) for k in op.probe_keys)
                candidates = table.get(key, ())
                if op.residual is None:
                    matched = bool(candidates)
                else:
                    matched = any(
                        evaluate(op.residual, {**inner, **env})
                        for inner in candidates
                    )
                if matched != op.anti:
                    self._count(op)
                    yield env
            return

        if isinstance(op, PhysicalGroupBy):
            groups: dict[tuple, tuple[dict, list]] = {}
            for env in self._execute(op.child):
                key = tuple(evaluate(expr, env) for _, expr in op.keys)
                entry = groups.get(key)
                if entry is None:
                    entry = (env, _init_agg(op.aggregates))
                    groups[key] = entry
                _update_agg(entry[1], op.aggregates, env)
            if not op.keys and not groups:
                # SQL: a global aggregate over empty input yields one row
                # (count = 0; sum/min/max have no NULL here, so 0)
                self._count(op)
                yield {agg.output.id: 0 for agg in op.aggregates}
                return
            for key, (_, state) in groups.items():
                self._count(op)
                out: dict[int, object] = {}
                for (iu, _), value in zip(op.keys, key):
                    out[iu.id] = value
                for agg, value in zip(op.aggregates, state):
                    out[agg.output.id] = value if value is not None else 0
                yield out
            return

        if isinstance(op, PhysicalGroupJoin):
            groups: dict[tuple, tuple[dict, list, list]] = {}
            for env in self._execute(op.build):
                key = tuple(evaluate(k, env) for k in op.build_keys)
                if key in groups:
                    raise PlanError("groupjoin build side is not unique on key")
                groups[key] = (env, _init_agg(op.aggregates), [0])
            for env in self._execute(op.probe):
                key = tuple(evaluate(k, env) for k in op.probe_keys)
                entry = groups.get(key)
                if entry is None:
                    continue
                _update_agg(entry[1], op.aggregates, env)
                entry[2][0] += 1
            for key, (build_env, state, matched) in groups.items():
                if matched[0] == 0:
                    continue  # inner-join semantics
                self._count(op)
                out: dict[int, object] = dict(build_env)
                for iu, value in zip(op.key_ius, key):
                    out[iu.id] = value
                for agg, value in zip(op.aggregates, state):
                    out[agg.output.id] = value if value is not None else 0
                yield out
            return

        if isinstance(op, PhysicalSort):
            rows = list(self._execute(op.child))

            def sort_key(env):
                parts = []
                for expr, ascending in op.keys:
                    value = evaluate(expr, env)
                    parts.append(value if ascending else -value)
                return tuple(parts)

            rows.sort(key=sort_key)
            if op.limit is not None:
                rows = rows[: op.limit]
            for env in rows:
                self._count(op)
                yield env
            return

        if isinstance(op, PhysicalLimit):
            produced = 0
            for env in self._execute(op.child):
                if produced >= op.count:
                    return
                produced += 1
                self._count(op)
                yield env
            return

        raise PlanError(f"cannot interpret {type(op).__name__}")
