"""Logical plan operators (the dataflow graph).

Every operator carries a stable ``op_id`` and knows its output IUs; the
optimizer rewrites the tree, and physical planning turns it into the
executable form.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.catalog.table import Table
from repro.errors import PlanError
from repro.plan.expr import IU, AggCall, Expr

_op_counter = itertools.count(1)


def _next_op_id() -> int:
    return next(_op_counter)


@dataclass(eq=False)
class LogicalOperator:
    """Base class; subclasses define ``children`` and ``output_ius``."""

    op_id: int = field(default_factory=_next_op_id, init=False)

    def children(self) -> list["LogicalOperator"]:
        return []

    def output_ius(self) -> list[IU]:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        return type(self).__name__.removeprefix("Logical").lower()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(eq=False)
class LogicalScan(LogicalOperator):
    """Full scan of a base table; produces one IU per referenced column."""

    table: Table
    alias: str
    column_ius: dict[str, IU] = field(default_factory=dict)

    def iu_for(self, column: str) -> IU:
        """The IU carrying ``column``, created on first reference."""
        iu = self.column_ius.get(column)
        if iu is None:
            dtype = self.table.schema.column(column).dtype
            iu = IU(f"{self.alias}.{column}", dtype)
            self.column_ius[column] = iu
        return iu

    def output_ius(self) -> list[IU]:
        return list(self.column_ius.values())

    def column_of(self, iu: IU) -> str:
        for column, candidate in self.column_ius.items():
            if candidate is iu:
                return column
        raise PlanError(f"{iu} not produced by scan of {self.alias}")


@dataclass(eq=False)
class LogicalFilter(LogicalOperator):
    child: LogicalOperator
    condition: Expr

    def children(self):
        return [self.child]

    def output_ius(self):
        return self.child.output_ius()


@dataclass(eq=False)
class LogicalJoin(LogicalOperator):
    """Inner equi-join: ``left.key_i = right.key_i`` for each key pair,

    plus an optional residual predicate evaluated on joined tuples."""

    left: LogicalOperator
    right: LogicalOperator
    left_keys: list[Expr]
    right_keys: list[Expr]
    residual: Expr | None = None

    def __post_init__(self):
        if len(self.left_keys) != len(self.right_keys):
            raise PlanError("join key lists differ in length")
        if not self.left_keys:
            raise PlanError("cross products are not supported; add a join key")

    def children(self):
        return [self.left, self.right]

    def output_ius(self):
        return self.left.output_ius() + self.right.output_ius()


@dataclass(eq=False)
class LogicalSemiJoin(LogicalOperator):
    """Semi (EXISTS/IN) or anti (NOT EXISTS/NOT IN) join.

    ``left`` is the outer input whose tuples are filtered; ``right`` is the
    unnested subquery.  Output IUs are the left side's only.  ``residual``
    may reference left IUs and right IUs (evaluated per matching candidate,
    e.g. Q21's ``l2.l_suppkey <> l1.l_suppkey`` correlation).
    """

    left: LogicalOperator
    right: LogicalOperator
    left_keys: list[Expr]
    right_keys: list[Expr]
    anti: bool = False
    residual: Expr | None = None

    def __post_init__(self):
        if len(self.left_keys) != len(self.right_keys):
            raise PlanError("semi-join key lists differ in length")
        if not self.left_keys:
            raise PlanError("semi joins need at least one key")

    def children(self):
        return [self.left, self.right]

    def output_ius(self):
        return self.left.output_ius()


@dataclass(eq=False)
class LogicalMap(LogicalOperator):
    """Computes new IUs from expressions over the child's IUs."""

    child: LogicalOperator
    computed: list[tuple[IU, Expr]]

    def children(self):
        return [self.child]

    def output_ius(self):
        return self.child.output_ius() + [iu for iu, _ in self.computed]


@dataclass(eq=False)
class LogicalGroupBy(LogicalOperator):
    """Hash aggregation: key expressions plus primitive aggregate slots."""

    child: LogicalOperator
    keys: list[tuple[IU, Expr]]
    aggregates: list[AggCall]

    def children(self):
        return [self.child]

    def output_ius(self):
        return [iu for iu, _ in self.keys] + [a.output for a in self.aggregates]


@dataclass(eq=False)
class LogicalSort(LogicalOperator):
    child: LogicalOperator
    keys: list[tuple[Expr, bool]]  # (expression, ascending)

    def children(self):
        return [self.child]

    def output_ius(self):
        return self.child.output_ius()


@dataclass(eq=False)
class LogicalLimit(LogicalOperator):
    child: LogicalOperator
    count: int

    def children(self):
        return [self.child]

    def output_ius(self):
        return self.child.output_ius()


@dataclass(eq=False)
class LogicalOutput(LogicalOperator):
    """Plan root: the SELECT list as (column name, IU) pairs."""

    child: LogicalOperator
    columns: list[tuple[str, IU]]

    def children(self):
        return [self.child]

    def output_ius(self):
        return [iu for _, iu in self.columns]


def explain(op: LogicalOperator, annotations: dict[int, str] | None = None) -> str:
    """Render a plan tree as indented text; optional per-op annotations."""
    lines: list[str] = []

    def describe(node: LogicalOperator) -> str:
        if isinstance(node, LogicalScan):
            detail = f"{node.table.name} as {node.alias}"
        elif isinstance(node, LogicalFilter):
            detail = str(node.condition)
        elif isinstance(node, LogicalJoin):
            pairs = ", ".join(
                f"{l} = {r}" for l, r in zip(node.left_keys, node.right_keys)
            )
            detail = pairs
        elif isinstance(node, LogicalSemiJoin):
            pairs = ", ".join(
                f"{l} = {r}" for l, r in zip(node.left_keys, node.right_keys)
            )
            detail = ("anti: " if node.anti else "semi: ") + pairs
        elif isinstance(node, LogicalGroupBy):
            keys = ", ".join(str(e) for _, e in node.keys)
            aggs = ", ".join(str(a) for a in node.aggregates)
            detail = f"keys=[{keys}] aggs=[{aggs}]"
        elif isinstance(node, LogicalMap):
            detail = ", ".join(f"{iu.name}={e}" for iu, e in node.computed)
        elif isinstance(node, LogicalSort):
            detail = ", ".join(
                f"{e}{'' if asc else ' desc'}" for e, asc in node.keys
            )
        elif isinstance(node, LogicalLimit):
            detail = str(node.count)
        elif isinstance(node, LogicalOutput):
            detail = ", ".join(name for name, _ in node.columns)
        else:
            detail = ""
        text = f"{node.kind}({detail})"
        if annotations and node.op_id in annotations:
            text += f"  [{annotations[node.op_id]}]"
        return text

    def walk(node: LogicalOperator, depth: int) -> None:
        lines.append("  " * depth + describe(node))
        for child in node.children():
            walk(child, depth + 1)

    walk(op, 0)
    return "\n".join(lines)
