"""Join ordering and plan construction from a query graph.

The binder decomposes WHERE into a :class:`QueryGraph` — relations (scans
with pushed-down filters), equi-join edges, and residual predicates — and
this module picks a join order: greedy operator ordering (GOO), always
joining the connected pair with the smallest estimated result.  A
``join_order_hint`` forces a left-deep order by alias, which the
optimizer-developer use case (Fig. 10) uses to compare two plans the cost
model cannot distinguish.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.plan.cardinality import CardinalityModel
from repro.plan.expr import Expr, conjunction
from repro.plan.logical import LogicalFilter, LogicalJoin, LogicalOperator


@dataclass
class JoinEdge:
    """One equi-join predicate between two relations (by index)."""

    left_rel: int
    right_rel: int
    left_expr: Expr
    right_expr: Expr


@dataclass
class Residual:
    """A predicate needing IUs from a specific set of relations."""

    relations: frozenset[int]
    condition: Expr


@dataclass
class QueryGraph:
    """The optimizer's input: what to join, how, and leftover predicates."""

    relations: list[LogicalOperator] = field(default_factory=list)
    aliases: list[str] = field(default_factory=list)
    edges: list[JoinEdge] = field(default_factory=list)
    residuals: list[Residual] = field(default_factory=list)


@dataclass
class _Component:
    """A partial join tree covering a set of relations."""

    plan: LogicalOperator
    relations: frozenset[int]


def _combine(
    component_a: _Component,
    component_b: _Component,
    graph: QueryGraph,
    pending_residuals: list[Residual],
) -> _Component | None:
    """Join two components if an edge connects them; apply ready residuals."""
    left_keys: list[Expr] = []
    right_keys: list[Expr] = []
    for edge in graph.edges:
        if edge.left_rel in component_a.relations and edge.right_rel in component_b.relations:
            left_keys.append(edge.left_expr)
            right_keys.append(edge.right_expr)
        elif edge.right_rel in component_a.relations and edge.left_rel in component_b.relations:
            left_keys.append(edge.right_expr)
            right_keys.append(edge.left_expr)
    if not left_keys:
        return None
    combined = component_a.relations | component_b.relations
    ready = [r for r in pending_residuals if r.relations <= combined]
    residual = conjunction([r.condition for r in ready])
    plan: LogicalOperator = LogicalJoin(
        component_a.plan, component_b.plan, left_keys, right_keys, residual
    )
    result = _Component(plan, combined)
    for r in ready:
        pending_residuals.remove(r)
    return result


def optimize_join_order(
    graph: QueryGraph,
    model: CardinalityModel | None = None,
    join_order_hint: list[str] | None = None,
) -> LogicalOperator:
    """Build the join tree: greedy smallest-result-first, or as hinted."""
    if not graph.relations:
        raise PlanError("query graph has no relations")
    model = model or CardinalityModel()
    pending = list(graph.residuals)
    components = [
        _Component(plan, frozenset([i])) for i, plan in enumerate(graph.relations)
    ]

    if len(components) == 1:
        only = components[0]
        if pending:
            condition = conjunction([r.condition for r in pending])
            return LogicalFilter(only.plan, condition)
        return only.plan

    if join_order_hint is not None:
        order = []
        for alias in join_order_hint:
            try:
                order.append(graph.aliases.index(alias))
            except ValueError:
                raise PlanError(f"hint names unknown relation {alias!r}") from None
        if sorted(order) != list(range(len(graph.relations))):
            raise PlanError("join order hint must name every relation exactly once")
        current = components[order[0]]
        for index in order[1:]:
            combined = _combine(current, components[index], graph, pending)
            if combined is None:
                raise PlanError(
                    f"hinted order disconnects at {graph.aliases[index]!r}"
                )
            current = combined
        if pending:
            raise PlanError("residual predicates left unapplied by hinted order")
        return current.plan

    while len(components) > 1:
        best: tuple[float, int, int, _Component] | None = None
        for i in range(len(components)):
            for j in range(i + 1, len(components)):
                candidate = _combine(
                    components[i], components[j], graph, pending_residuals=[]
                )
                if candidate is None:
                    continue
                cost = model.estimate(candidate.plan)
                if best is None or cost < best[0]:
                    best = (cost, i, j, candidate)
        if best is None:
            raise PlanError(
                "query graph is disconnected (a cross product would be needed)"
            )
        _, i, j, _ = best
        merged = _combine(components[i], components[j], graph, pending)
        components = [
            c for k, c in enumerate(components) if k not in (i, j)
        ] + [merged]

    final = components[0]
    if pending:
        condition = conjunction([r.condition for r in pending])
        return LogicalFilter(final.plan, condition)
    return final.plan
