"""Physical plan operators and physical planning.

Physical planning chooses hash-join build sides by estimated cardinality and
optionally applies *dataflow-graph operator fusion*: a group-by whose keys
are exactly the probe-side join keys fuses with the join into a groupjoin
(Moerkotte & Neumann [31]; §5.4 of the paper), which the Abstraction
Trackers then attribute section-by-section (groupjoin-join vs
groupjoin-groupby).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.catalog.table import Table
from repro.errors import PlanError
from repro.plan.cardinality import CardinalityModel
from repro.plan.expr import IU, AggCall, Expr, IURef
from repro.plan.logical import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalMap,
    LogicalOperator,
    LogicalOutput,
    LogicalScan,
    LogicalSemiJoin,
    LogicalSort,
)

_phys_counter = itertools.count(1)


@dataclass(eq=False)
class PhysicalOperator:
    """Base physical operator; these are the Tagging Dictionary's
    dataflow-graph-level components."""

    op_id: int = field(default_factory=lambda: next(_phys_counter), init=False)
    logical_id: int | None = field(default=None, init=False)
    # frontends with their own operator vocabulary (the streaming DSL) set
    # this so every profiling report speaks their language
    label_override: str | None = field(default=None, init=False)

    def children(self) -> list["PhysicalOperator"]:
        return []

    @property
    def kind(self) -> str:
        return type(self).__name__.removeprefix("Physical").lower()

    @property
    def label(self) -> str:
        return self.label_override or f"{self.kind}#{self.op_id}"

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(eq=False)
class PhysicalScan(PhysicalOperator):
    table: Table
    alias: str
    column_ius: dict[str, IU]

    @property
    def label(self) -> str:
        return self.label_override or f"scan {self.alias}"


@dataclass(eq=False)
class PhysicalSelect(PhysicalOperator):
    """Filter; fused into the surrounding pipeline by code generation."""

    child: PhysicalOperator
    condition: Expr

    def children(self):
        return [self.child]


@dataclass(eq=False)
class PhysicalMap(PhysicalOperator):
    child: PhysicalOperator
    computed: list[tuple[IU, Expr]]

    def children(self):
        return [self.child]


@dataclass(eq=False)
class PhysicalHashJoin(PhysicalOperator):
    """Build on ``build`` (left), probe with ``probe`` (right)."""

    build: PhysicalOperator
    probe: PhysicalOperator
    build_keys: list[Expr]
    probe_keys: list[Expr]
    residual: Expr | None
    build_payload: list[IU] = field(default_factory=list)

    def children(self):
        return [self.build, self.probe]

    @property
    def label(self) -> str:
        return self.label_override or f"join#{self.op_id}"


@dataclass(eq=False)
class PhysicalSemiJoin(PhysicalOperator):
    """Semi/anti hash join: build the subquery side (keys + any IUs the

    residual needs), probe with the outer side; a probe tuple passes when a
    matching entry exists (semi) or when none does (anti)."""

    build: PhysicalOperator
    probe: PhysicalOperator
    build_keys: list[Expr]
    probe_keys: list[Expr]
    anti: bool = False
    residual: Expr | None = None
    build_payload: list[IU] = field(default_factory=list)

    def children(self):
        return [self.build, self.probe]

    @property
    def label(self) -> str:
        return self.label_override or f"{'anti' if self.anti else 'semi'} join#{self.op_id}"


@dataclass(eq=False)
class PhysicalGroupBy(PhysicalOperator):
    child: PhysicalOperator
    keys: list[tuple[IU, Expr]]
    aggregates: list[AggCall]

    def children(self):
        return [self.child]

    @property
    def label(self) -> str:
        return self.label_override or f"group by#{self.op_id}"


@dataclass(eq=False)
class PhysicalGroupJoin(PhysicalOperator):
    """Fused group-by + join (dataflow-graph operator fusion)."""

    build: PhysicalOperator
    probe: PhysicalOperator
    build_keys: list[Expr]
    probe_keys: list[Expr]
    key_ius: list[IU]
    aggregates: list[AggCall]
    build_payload: list[IU] = field(default_factory=list)

    def children(self):
        return [self.build, self.probe]

    @property
    def label(self) -> str:
        return self.label_override or f"groupjoin#{self.op_id}"


@dataclass(eq=False)
class PhysicalSort(PhysicalOperator):
    child: PhysicalOperator
    keys: list[tuple[Expr, bool]]
    limit: int | None = None

    def children(self):
        return [self.child]


@dataclass(eq=False)
class PhysicalLimit(PhysicalOperator):
    child: PhysicalOperator
    count: int

    def children(self):
        return [self.child]


@dataclass(eq=False)
class PhysicalOutput(PhysicalOperator):
    child: PhysicalOperator
    columns: list[tuple[str, IU]]

    def children(self):
        return [self.child]


@dataclass(frozen=True)
class PlannerOptions:
    """Physical planning knobs (swept by the ablation benchmarks)."""

    enable_groupjoin: bool = False


def plan_physical(
    root: LogicalOperator,
    model: CardinalityModel | None = None,
    options: PlannerOptions | None = None,
) -> PhysicalOperator:
    """Lower a logical plan to a physical plan."""
    model = model or CardinalityModel()
    options = options or PlannerOptions()

    def convert(node: LogicalOperator) -> PhysicalOperator:
        if isinstance(node, LogicalScan):
            phys: PhysicalOperator = PhysicalScan(node.table, node.alias, node.column_ius)
        elif isinstance(node, LogicalFilter):
            phys = PhysicalSelect(convert(node.child), node.condition)
        elif isinstance(node, LogicalMap):
            phys = PhysicalMap(convert(node.child), node.computed)
        elif isinstance(node, LogicalJoin):
            phys = _convert_join(node)
        elif isinstance(node, LogicalSemiJoin):
            # the subquery side is always built; residual-referenced inner
            # IUs become the entry payload
            residual_ius = node.residual.ius() if node.residual else set()
            payload = [iu for iu in node.right.output_ius() if iu in residual_ius]
            phys = PhysicalSemiJoin(
                build=convert(node.right),
                probe=convert(node.left),
                build_keys=node.right_keys,
                probe_keys=node.left_keys,
                anti=node.anti,
                residual=node.residual,
                build_payload=payload,
            )
        elif isinstance(node, LogicalGroupBy):
            phys = _convert_groupby(node)
        elif isinstance(node, LogicalSort):
            phys = PhysicalSort(convert(node.child), node.keys)
        elif isinstance(node, LogicalLimit):
            child = convert(node.child)
            if isinstance(child, PhysicalSort) and child.limit is None:
                child.limit = node.count
                phys = child
            else:
                phys = PhysicalLimit(child, node.count)
        elif isinstance(node, LogicalOutput):
            phys = PhysicalOutput(convert(node.child), node.columns)
        else:
            raise PlanError(f"cannot lower {type(node).__name__}")
        phys.logical_id = node.op_id
        return phys

    def _convert_join(node: LogicalJoin) -> PhysicalOperator:
        left_card = model.estimate(node.left)
        right_card = model.estimate(node.right)
        if left_card <= right_card:
            build, probe = node.left, node.right
            build_keys, probe_keys = node.left_keys, node.right_keys
        else:
            build, probe = node.right, node.left
            build_keys, probe_keys = node.right_keys, node.left_keys
        build_phys = convert(build)
        probe_phys = convert(probe)
        payload = [iu for iu in build.output_ius()]
        return PhysicalHashJoin(
            build_phys, probe_phys, build_keys, probe_keys, node.residual, payload
        )

    def _convert_groupby(node: LogicalGroupBy) -> PhysicalOperator:
        if options.enable_groupjoin:
            fused = _try_groupjoin(node)
            if fused is not None:
                return fused
        return PhysicalGroupBy(convert(node.child), node.keys, node.aggregates)

    def _try_groupjoin(node: LogicalGroupBy) -> PhysicalOperator | None:
        """Fuse ``groupby(join)`` when grouping exactly on the join key of a

        join whose build side is unique on that key and the aggregates only
        read probe-side values — the conditions for groupjoin correctness."""
        child = node.child
        if not isinstance(child, LogicalJoin):
            return None
        join = child
        key_exprs = [expr for _, expr in node.keys]
        if len(key_exprs) != len(join.left_keys) or join.residual is not None:
            return None

        def same_refs(a: list[Expr], b: list[Expr]) -> bool:
            if len(a) != len(b):
                return False
            for x, y in zip(a, b):
                if not (isinstance(x, IURef) and isinstance(y, IURef)):
                    return False
                if x.iu is not y.iu:
                    return False
            return True

        for build, probe, bkeys, pkeys in (
            (join.left, join.right, join.left_keys, join.right_keys),
            (join.right, join.left, join.right_keys, join.left_keys),
        ):
            if not (same_refs(key_exprs, bkeys) or same_refs(key_exprs, pkeys)):
                continue
            # build side must be unique on the key
            build_card = model.estimate(build)
            key_ndv = model.ndv(bkeys[0], 0.0)
            if key_ndv < build_card * 0.99:
                continue
            probe_ius = set(probe.output_ius())
            build_ius = set(build.output_ius())
            agg_ok = all(
                agg.arg is None or agg.arg.ius() <= probe_ius
                for agg in node.aggregates
            )
            if not agg_ok:
                continue
            key_ius = [iu for iu, _ in node.keys]
            # the group keys must resolve on the build side for HT layout
            keys_on_build = all(
                isinstance(e, IURef) and e.iu in build_ius for e in bkeys
            )
            if not keys_on_build:
                continue
            return PhysicalGroupJoin(
                convert(build),
                convert(probe),
                bkeys,
                pkeys,
                key_ius,
                node.aggregates,
                build_payload=list(build.output_ius()),
            )
        return None

    return convert(root)


def explain_physical(
    op: PhysicalOperator, annotations: dict[int, str] | None = None
) -> str:
    """Indented physical plan rendering, optionally annotated per operator."""
    lines: list[str] = []

    def walk(node: PhysicalOperator, depth: int) -> None:
        text = node.label
        if isinstance(node, PhysicalSelect):
            text += f" [{node.condition}]"
        elif isinstance(node, PhysicalSort):
            keys = ", ".join(f"{e}{'' if asc else ' desc'}" for e, asc in node.keys)
            text += f" [{keys}]"
        elif isinstance(node, (PhysicalHashJoin, PhysicalGroupJoin, PhysicalSemiJoin)):
            pairs = ", ".join(
                f"{b} = {p}" for b, p in zip(node.build_keys, node.probe_keys)
            )
            text += f" [{pairs}]"
        elif isinstance(node, PhysicalGroupBy):
            text += f" [{', '.join(str(e) for _, e in node.keys)}]"
        if annotations and node.op_id in annotations:
            text += f"  ({annotations[node.op_id]})"
        lines.append("  " * depth + text)
        for child in node.children():
            walk(child, depth + 1)

    walk(op, 0)
    return "\n".join(lines)
