"""The engine-level compiled-plan cache: a bounded LRU shared by every
execution path.

PGO introduced a fingerprint-keyed plan cache private to the feedback
loop; this generalizes it into one service-level structure: plain
``execute`` calls, the PGO path, and every session of the concurrent query
service (repro.serve) share it, so identical SQL never recompiles.

Entries carry the feedback version they were compiled against (0 for
non-PGO flavors); a lookup with a newer version misses, which is how fresh
profile feedback forces a recompile.  Each entry also records a monotonic
insertion serial: the serve loop uses ``evict_since`` to drop entries whose
compile-time memory lives inside an execution epoch about to be released
(the bump allocator frees LIFO arenas, so mid-epoch compiles cannot outlive
the epoch).

Entries are tier-aware: when the tiering controller promotes a plan's
program to a specialized tier-2 trace, :meth:`PlanCache.supersede`
replaces the tier-1 ancestor in place — same key, same serial, same LRU
slot, hit/miss stats untouched — so unrelated plans are never
invalidated by a promotion (see docs/TIERING.md).

Eviction drops the entry but not its compile-time allocations — the bump
allocator has no free list — so capacity bounds *recompilation*, not
memory; DESIGN note: long-running processes should size the capacity to
their working set of templates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class _Entry:
    compiled: object
    feedback_version: int
    serial: int
    tier: int = 1


class PlanCache:
    """Bounded LRU of :class:`~repro.engine.CompiledQuery` objects."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._serial = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    @property
    def serial(self) -> int:
        """Monotonic insertion counter (epoch watermarks, repro.serve)."""
        return self._serial

    def get(self, key: tuple, feedback_version: int = 0):
        """The cached plan, or None on miss / stale feedback version."""
        entry = self._entries.get(key)
        if entry is None or entry.feedback_version != feedback_version:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.compiled

    def put(self, key: tuple, compiled, feedback_version: int = 0) -> None:
        self._entries[key] = _Entry(compiled, feedback_version, self._serial)
        self._serial += 1
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def forget(self, key: tuple) -> None:
        self._entries.pop(key, None)

    def tier_of(self, key: tuple) -> int | None:
        """Execution tier recorded for ``key`` (None when absent)."""
        entry = self._entries.get(key)
        return entry.tier if entry is not None else None

    def supersede(self, key: tuple, compiled=None, tier: int = 2) -> bool:
        """Replace ``key``'s entry with its tier-``tier`` recompilation.

        The specialized plan takes the ancestor's slot in place: the
        insertion serial, feedback version, and LRU position survive, and
        the hit/miss/eviction counters are untouched — supersession is a
        promotion, not a cache event, and unrelated entries never move.
        Returns False when ``key`` is not cached (nothing to supersede)."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        if compiled is not None:
            entry.compiled = compiled
        if tier > entry.tier:
            entry.tier = tier
        return True

    def supersede_compiled(self, compiled, tier: int = 2) -> bool:
        """:meth:`supersede` addressed by the compiled object itself.

        Promotion sites (the tiering controller's callers) hold the
        CompiledQuery, not the cache key; the cache is small and bounded,
        so an identity scan is fine."""
        for key, entry in self._entries.items():
            if entry.compiled is compiled:
                return self.supersede(key, tier=tier)
        return False

    def evict_since(self, watermark: int) -> int:
        """Drop every entry inserted at or after ``watermark``.

        The serve loop compiles cache misses inside its execution epoch;
        when the epoch's memory is released those plans' compile-time
        allocations go with it, so the entries must not survive either.
        Returns the number of entries dropped."""
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.serial >= watermark
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "tier2_entries": sum(
                1 for e in self._entries.values() if e.tier >= 2
            ),
        }
