"""Tailored Profiling — the paper's contribution.

- :mod:`repro.profiling.trackers` — Abstraction Trackers (§4.2.4)
- :mod:`repro.profiling.tagging` — the Tagging Dictionary (§4.2.2)
- :mod:`repro.profiling.postprocess` — sample attribution (§4.2.6)
- :mod:`repro.profiling.reports` — tailored reports: annotated plan,
  annotated IR, operator activity over time, memory-access profiles,
  iteration detection, plan comparison, per-worker lanes, IPC
- :mod:`repro.profiling.export` — JSON / folded-stack / perf-script exports
- :mod:`repro.profiling.session` — persisted sessions for offline
  post-processing (the paper's §5.2.2 metadata-file flow)
"""

from repro.profiling.tagging import TaggingDictionary
from repro.profiling.trackers import AbstractionTracker
from repro.profiling.postprocess import Attribution, SampleProcessor
from repro.profiling.session import load_session, save_session

__all__ = [
    "AbstractionTracker",
    "Attribution",
    "SampleProcessor",
    "TaggingDictionary",
    "load_session",
    "save_session",
]
