"""Profile export formats.

Tailored Profiling's post-processing consumes raw samples (the paper feeds
``perf script`` output into it); this module provides the reverse
direction — machine-readable exports of an attributed profile:

- :func:`to_json` — full structured dump (summary, per-operator costs,
  per-sample attributions) for external tooling,
- :func:`folded_stacks` — Brendan-Gregg folded-stack lines
  (``pipeline;operator;task;location count``), directly consumable by
  flamegraph renderers; the paper cites flame graphs as prior profiler UI,
- :func:`perf_script` — a perf-script-like text dump of the raw samples.
"""

from __future__ import annotations

import json

from repro.profiling.postprocess import CATEGORY_OPERATOR


def to_json(profile, include_samples: bool = True) -> str:
    """Serialize a profile: config, summary, costs, optional sample list."""
    summary = profile.attribution_summary()
    costs = profile.operator_costs()
    document = {
        "config": {
            "mode": profile.config.mode.value,
            "event": profile.config.event.value,
            "period": profile.config.period,
        },
        "workers": profile.workers,
        "result": {
            "columns": profile.result.columns,
            "row_count": len(profile.result.rows),
            "cycles": profile.result.cycles,
            "instructions": profile.result.instructions,
        },
        "summary": {
            "total_samples": summary.total_samples,
            "operator_share": summary.operator_share,
            "kernel_share": summary.kernel_share,
            "unattributed_share": summary.unattributed_share,
        },
        "operator_costs": [
            {"operator": op.label, "kind": op.kind, "share": share}
            for op, share in sorted(costs.items(), key=lambda kv: -kv[1])
        ],
        "tagging_dictionary": {
            "entries": profile.tagging.entry_count,
            "bytes": profile.tagging.size_bytes,
        },
    }
    if include_samples:
        document["samples"] = [
            {
                "tsc": a.sample.tsc,
                "ip": a.sample.ip,
                "worker": a.worker,
                "category": a.category,
                "via": a.via,
                "operators": [t.operator.label for t in a.tasks],
                "tasks": [t.label for t in a.tasks],
                **(
                    {"memaddr": a.sample.memaddr}
                    if a.sample.memaddr is not None
                    else {}
                ),
                **(
                    {"taken": a.sample.branch_taken}
                    if a.sample.branch_taken is not None
                    else {}
                ),
            }
            for a in profile.attributions
        ]
    return json.dumps(document, indent=2)


def folded_stacks(profile) -> str:
    """Folded-stack lines: semicolon-separated frames plus a count.

    Frames, outermost first: pipeline, dataflow operator, task role, and
    (for shared-location samples) the runtime function — the abstraction
    hierarchy itself becomes the stack.
    """
    pipeline_of_task = {}
    for pipeline in profile.pipelines:
        for task in pipeline.tasks:
            pipeline_of_task[task.id] = pipeline.index
    counts: dict[str, float] = {}
    for attribution in profile.attributions:
        if attribution.category == CATEGORY_OPERATOR:
            weight = attribution.weight_per_task
            for task in attribution.tasks:
                frames = [
                    f"pipeline_{pipeline_of_task.get(task.id, '?')}",
                    task.operator.label,
                    task.role,
                ]
                if attribution.runtime_function:
                    frames.append(attribution.runtime_function)
                key = ";".join(frames)
                counts[key] = counts.get(key, 0.0) + weight
        elif attribution.category == "kernel":
            key = f"kernel;{attribution.kernel_function or 'unknown'}"
            counts[key] = counts.get(key, 0.0) + 1.0
        else:
            counts["unattributed"] = counts.get("unattributed", 0.0) + 1.0
    lines = [
        f"{key} {count:g}" for key, count in sorted(counts.items())
    ]
    return "\n".join(lines)


def perf_script(profile) -> str:
    """A perf-script-shaped text dump of the raw samples."""
    lines = []
    event_name = profile.config.event.value
    for attribution in profile.attributions:
        sample = attribution.sample
        info = profile.program.function_at(sample.ip)
        symbol = info.name if info else "[unknown]"
        lines.append(
            f"query {attribution.worker:>3} {sample.tsc:>12}: "
            f"{event_name}: ip=0x{sample.ip:06x} ({symbol})"
        )
    return "\n".join(lines)
