"""Sample post-processing: native samples to abstraction levels (§4.2.6).

For every profiling sample the processor walks bottom-up: native IP →
(debug info) → IR instruction → (Log B) → task → (Log A) → dataflow-graph
operator.  Samples in shared runtime code are disambiguated by the value of
the reserved tag register captured in the sample — Register Tagging — or,
if call stacks were recorded instead, by walking to the innermost
query-code frame.  Kernel-region samples go to the kernel bucket; SYSLIB
samples are deliberately unattributable (Table 2's ~2 %).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.pipeline.tasks import Task
from repro.plan.physical import PhysicalOperator
from repro.profiling.tagging import TaggingDictionary
from repro.vm.isa import REG_TAG, CodeRegion, Program
from repro.vm.pmu import Sample

CATEGORY_OPERATOR = "operator"
CATEGORY_KERNEL = "kernel"
CATEGORY_UNATTRIBUTED = "unattributed"


@dataclass(frozen=True)
class Attribution:
    """One sample's resolved place in the abstraction hierarchy."""

    sample: Sample
    category: str
    tasks: tuple[Task, ...] = ()
    ir_id: int | None = None
    runtime_function: str | None = None
    kernel_function: str | None = None
    via: str = "dictionary"  # dictionary | register-tag | callstack | region
    worker: int = 0  # simulated core the sample was taken on
    # query/tenant dimension (repro.serve): the query-id half of the tag
    # register when several in-flight queries share the workers; None for
    # classic single-query profiling runs
    query_id: int | None = None
    # storage dimension (repro.storage): for memaddr-recording samples
    # whose address lands in a column segment, the StorageRef naming
    # (table, column, shard, segment, encoding); None otherwise
    storage: object = None

    @property
    def operators(self) -> tuple[PhysicalOperator, ...]:
        return tuple(t.operator for t in self.tasks)

    @property
    def weight_per_task(self) -> float:
        return 1.0 / len(self.tasks) if self.tasks else 0.0


@dataclass
class AttributionSummary:
    """Aggregate shares — the rows of the paper's Table 2."""

    total_samples: int = 0
    operator_share: float = 0.0
    kernel_share: float = 0.0
    unattributed_share: float = 0.0

    @property
    def attributed_share(self) -> float:
        return self.operator_share + self.kernel_share


class SampleProcessor:
    """Maps samples bottom-up using debug info + the Tagging Dictionary."""

    def __init__(self, program: Program, tagging: TaggingDictionary):
        self.program = program
        self.tagging = tagging

    # ------------------------------------------------------------------

    def attribute(self, sample: Sample) -> Attribution:
        attribution = self._attribute(sample)
        query_id = sample.query_id
        if query_id:
            # only stamp the query dimension when the high tag half is in
            # use (repro.serve); classic runs keep the None default
            attribution = dataclasses.replace(attribution, query_id=query_id)
        resolver = self.tagging.storage_resolver
        if resolver is not None and sample.memaddr is not None:
            ref = resolver(sample.memaddr)
            if ref is not None:
                attribution = dataclasses.replace(attribution, storage=ref)
        return attribution

    def _attribute(self, sample: Sample) -> Attribution:
        region = self.program.region_at(sample.ip)
        if region is CodeRegion.KERNEL:
            info = self.program.function_at(sample.ip)
            return Attribution(
                sample,
                CATEGORY_KERNEL,
                kernel_function=info.name if info else None,
                via="region",
            )
        if region is CodeRegion.SYSLIB:
            return Attribution(sample, CATEGORY_UNATTRIBUTED, via="region")
        if region is CodeRegion.QUERY:
            ir_id = self.program.debug.get(sample.ip)
            if ir_id is None:
                return Attribution(sample, CATEGORY_UNATTRIBUTED, via="dictionary")
            tasks = self.tagging.tasks_of_instruction(ir_id)
            if not tasks:
                return Attribution(
                    sample, CATEGORY_UNATTRIBUTED, ir_id=ir_id, via="dictionary"
                )
            return Attribution(
                sample, CATEGORY_OPERATOR, tasks=tasks, ir_id=ir_id
            )
        if region is CodeRegion.RUNTIME:
            return self._attribute_runtime(sample)
        return Attribution(sample, CATEGORY_UNATTRIBUTED, via="region")

    def _attribute_runtime(self, sample: Sample) -> Attribution:
        """Shared source location: disambiguate by tag or call stack."""
        info = self.program.function_at(sample.ip)
        runtime_name = info.name if info else None
        ir_id = self.program.debug.get(sample.ip)

        if sample.registers is not None:
            tag = sample.registers[REG_TAG]
            # the low half is the task id; the high half (if any) is the
            # query id, resolved separately in attribute()
            task = self.tagging.task_of_tag(tag) if isinstance(tag, int) else None
            if task is not None:
                return Attribution(
                    sample,
                    CATEGORY_OPERATOR,
                    tasks=(task,),
                    ir_id=ir_id,
                    runtime_function=runtime_name,
                    via="register-tag",
                )

        if sample.callstack is not None:
            for call_site in reversed(sample.callstack):
                if self.program.region_at(call_site) is not CodeRegion.QUERY:
                    continue
                site_ir = self.program.debug.get(call_site)
                if site_ir is None:
                    continue
                tasks = self.tagging.tasks_of_instruction(site_ir)
                if tasks:
                    return Attribution(
                        sample,
                        CATEGORY_OPERATOR,
                        tasks=tasks,
                        ir_id=ir_id,
                        runtime_function=runtime_name,
                        via="callstack",
                    )

        return Attribution(
            sample,
            CATEGORY_UNATTRIBUTED,
            ir_id=ir_id,
            runtime_function=runtime_name,
            via="unresolved",
        )

    # ------------------------------------------------------------------

    def process(self, samples: list[Sample]) -> list[Attribution]:
        return [self.attribute(s) for s in samples]

    def summarize(self, attributions: list[Attribution]) -> AttributionSummary:
        summary = AttributionSummary(total_samples=len(attributions))
        if not attributions:
            return summary
        n = len(attributions)
        operators = sum(1 for a in attributions if a.category == CATEGORY_OPERATOR)
        kernel = sum(1 for a in attributions if a.category == CATEGORY_KERNEL)
        summary.operator_share = operators / n
        summary.kernel_share = kernel / n
        summary.unattributed_share = 1.0 - (operators + kernel) / n
        return summary

    def operator_weights(
        self, attributions: list[Attribution]
    ) -> dict[PhysicalOperator, float]:
        """Sample weight per dataflow-graph operator (multi-parent samples

        split evenly, per the instruction-fusing rule of §4.2.7)."""
        weights: dict[PhysicalOperator, float] = {}
        for attribution in attributions:
            if attribution.category != CATEGORY_OPERATOR:
                continue
            share = attribution.weight_per_task
            for task in attribution.tasks:
                op = task.operator
                weights[op] = weights.get(op, 0.0) + share
        return weights

    def query_weights(
        self, attributions: list[Attribution]
    ) -> dict[int | None, int]:
        """Sample counts per query id (the serve tenant dimension).

        ``None`` collects samples whose registers were not recorded (or
        that predate query-qualified tagging)."""
        weights: dict[int | None, int] = {}
        for attribution in attributions:
            key = attribution.query_id
            weights[key] = weights.get(key, 0) + 1
        return weights

    def storage_weights(
        self, attributions: list[Attribution]
    ) -> dict[object, int]:
        """Sample counts per storage segment (the storage dimension):
        keys are :class:`repro.storage.StorageRef` values, so one entry
        names (table, column, shard, segment, encoding, part).  Only
        memaddr-recording samples that landed in a column segment appear."""
        weights: dict[object, int] = {}
        for attribution in attributions:
            ref = attribution.storage
            if ref is None:
                continue
            weights[ref] = weights.get(ref, 0) + 1
        return weights

    def task_weights(self, attributions: list[Attribution]) -> dict[Task, float]:
        weights: dict[Task, float] = {}
        for attribution in attributions:
            if attribution.category != CATEGORY_OPERATOR:
                continue
            share = attribution.weight_per_task
            for task in attribution.tasks:
                weights[task] = weights.get(task, 0.0) + share
        return weights
