"""The Profile object: one profiled query run and its tailored reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.pipeline.tasks import Pipeline, Task
from repro.plan.physical import PhysicalOperator, PhysicalOutput
from repro.profiling.postprocess import (
    Attribution,
    AttributionSummary,
    SampleProcessor,
)
from repro.profiling.tagging import TaggingDictionary
from repro.vm import Machine, Program

if TYPE_CHECKING:
    from repro.engine import Database, ProfilerConfig, QueryResult


@dataclass
class Profile:
    """Everything recorded while profiling one query, plus report entry
    points (implemented in :mod:`repro.profiling.reports`)."""

    database: "Database"
    config: "ProfilerConfig"
    physical: PhysicalOutput
    pipelines: list[Pipeline]
    ir_module: object
    program: Program
    machine: Machine
    tagging: TaggingDictionary
    processor: SampleProcessor
    attributions: list[Attribution]
    result: "QueryResult"
    machines: list[Machine] = field(default_factory=list)
    # PGO feedback inputs (repro.pgo): the profiled SQL text, per-task
    # observed tuple counts (when count_tuples was on), and the planner's
    # cardinality estimates keyed by physical op_id
    sql: str = ""
    task_counts: dict[int, int] = field(default_factory=dict)
    estimates: dict[int, float] = field(default_factory=dict)

    def __post_init__(self):
        if not self.machines:
            self.machines = [self.machine]

    @property
    def workers(self) -> int:
        return len(self.machines)

    # -- aggregate views ----------------------------------------------------

    @property
    def samples(self):
        return [a.sample for a in self.attributions]

    def zoom(self, start_tsc: int, end_tsc: int) -> "Profile":
        """Restrict the profile to a time interval (§4.3: after spotting a

        temporal hotspot in the timeline, "narrow down on the next lower
        abstraction level, i.e., limit the results to the time interval of
        the hotspot").  All reports work on the zoomed profile."""
        import dataclasses

        filtered = [
            a for a in self.attributions if start_tsc <= a.sample.tsc < end_tsc
        ]
        return dataclasses.replace(self, attributions=filtered)

    def attribution_summary(self) -> AttributionSummary:
        return self.processor.summarize(self.attributions)

    def operator_costs(self) -> dict[PhysicalOperator, float]:
        """Fraction of operator-attributed samples per operator (Fig. 9b)."""
        weights = self.processor.operator_weights(self.attributions)
        total = sum(weights.values())
        if total == 0:
            return {}
        return {op: w / total for op, w in weights.items()}

    def task_costs(self) -> dict[Task, float]:
        weights = self.processor.task_weights(self.attributions)
        total = sum(weights.values())
        if total == 0:
            return {}
        return {task: w / total for task, w in weights.items()}

    # -- tailored reports ------------------------------------------------------

    def annotated_plan(self) -> str:
        from repro.profiling import reports

        return reports.annotated_plan(self)

    def plan_dot(self) -> str:
        from repro.profiling import reports

        return reports.plan_dot(self)

    def hot_instructions(self, n: int = 10):
        from repro.profiling import reports

        return reports.hot_instructions(self, n)

    def annotated_ir(self, pipeline_index: int | None = None) -> str:
        from repro.profiling import reports

        return reports.annotated_ir(self, pipeline_index)

    def activity_timeline(self, bins: int = 25):
        from repro.profiling import reports

        return reports.activity_timeline(self, bins)

    def render_timeline(self, bins: int = 25, width: int = 60) -> str:
        from repro.profiling import reports

        return reports.render_timeline(self, bins=bins, width=width)

    def memory_profile(self):
        from repro.profiling import reports

        return reports.memory_profile(self)

    def annotated_pipelines(self) -> str:
        from repro.profiling import reports

        return reports.annotated_pipelines(self)

    def query_breakdown(self) -> dict:
        from repro.profiling import reports

        return reports.query_breakdown(self)

    def render_query_breakdown(self) -> str:
        from repro.profiling import reports

        return reports.render_query_breakdown(self)

    def iterations(self):
        from repro.profiling import reports

        return reports.detect_iterations(self)

    def iteration_report(self) -> str:
        from repro.profiling import reports

        return reports.iteration_report(self)
