"""Tailored reports: each developer persona's view of the same samples.

- :func:`annotated_plan` — the domain expert's view (Fig. 6a / 9b): the
  query plan with per-operator cost percentages.
- :func:`annotated_ir` — the operator developer's view (Fig. 6b): the IR
  listing with per-instruction sample shares and owning operators.
- :func:`activity_timeline` — operator activity over time (Fig. 7 / 11).
- :func:`memory_profile` — per-operator memory access patterns (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.printer import format_instr
from repro.plan.physical import PhysicalOperator, explain_physical
from repro.profiling.postprocess import CATEGORY_OPERATOR


def annotated_plan(profile) -> str:
    """Physical plan annotated with per-operator sample percentages."""
    costs = profile.operator_costs()
    annotations = {
        op.op_id: f"{share * 100:.1f}%" for op, share in costs.items()
    }
    return explain_physical(profile.physical, annotations)


def plan_dot(profile) -> str:
    """The annotated plan as Graphviz DOT — the paper's Fig. 9 rendering.

    Node fill intensity tracks each operator's sample share."""
    costs = profile.operator_costs()
    lines = [
        "digraph plan {",
        "  rankdir=BT;",
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    for op in profile.physical.walk():
        share = costs.get(op, 0.0)
        intensity = 255 - int(min(1.0, share * 1.6) * 160)
        color = f"#ff{intensity:02x}{intensity:02x}"
        label = op.label.replace('"', "'")
        lines.append(
            f'  n{op.op_id} [label="{label}\n{share * 100:.1f}%", '
            f'fillcolor="{color}"];'
        )
        for child in op.children():
            lines.append(f"  n{child.op_id} -> n{op.op_id};")
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------


def annotated_pipelines(profile) -> str:
    """The middle abstraction level: pipelines of tasks with cost shares.

    The dataflow graph (plan) is the top level, IR the bottom; this report
    serves anyone reasoning about materialization points and task placement
    — e.g. which pipeline a fused operator's time is actually spent in.
    """
    task_shares = profile.task_costs()
    lines = ["pipelines of tasks (share of operator-attributed samples):"]
    for pipeline in profile.pipelines:
        total = sum(task_shares.get(task, 0.0) for task in pipeline.tasks)
        lines.append(f"pipeline {pipeline.index}  ({total * 100:.1f}%)")
        for task in pipeline.tasks:
            share = task_shares.get(task, 0.0)
            lines.append(f"  {share * 100:5.1f}%  {task.label}")
    return "\n".join(lines)


def query_breakdown(profile) -> dict:
    """The query/tenant dimension (repro.serve): samples and operator
    shares per query id.

    Under concurrent serving one sample stream carries work from many
    in-flight queries; the tag register's high half says which.  Classic
    single-query profiles collapse to a single ``None`` bucket."""
    by_query: dict = {}
    for attribution in profile.attributions:
        by_query.setdefault(attribution.query_id, []).append(attribution)
    breakdown: dict = {}
    for query_id in sorted(
        by_query, key=lambda q: (q is None, q if q is not None else 0)
    ):
        attrs = by_query[query_id]
        weights = profile.processor.operator_weights(attrs)
        total = sum(weights.values())
        breakdown[query_id] = {
            "samples": len(attrs),
            "operators": (
                {op.label: w / total for op, w in weights.items()}
                if total
                else {}
            ),
        }
    return breakdown


def render_query_breakdown(profile) -> str:
    """Text rendering of :func:`query_breakdown`."""
    breakdown = query_breakdown(profile)
    lines = ["samples per query (tag-register high half):"]
    for query_id, info in breakdown.items():
        label = "unqualified" if query_id is None else f"query {query_id}"
        lines.append(f"{label}: {info['samples']} sample(s)")
        top = sorted(info["operators"].items(), key=lambda kv: -kv[1])[:5]
        for op_label, share in top:
            lines.append(f"  {share * 100:5.1f}%  {op_label}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------


def _ir_sample_counts(profile) -> tuple[dict[int, float], float]:
    counts: dict[int, float] = {}
    total = 0.0
    for attribution in profile.attributions:
        if attribution.ir_id is None:
            continue
        counts[attribution.ir_id] = counts.get(attribution.ir_id, 0.0) + 1.0
        total += 1.0
    return counts, total


def hot_instructions(profile, n: int = 10) -> list[tuple]:
    """The hottest IR instructions: (share, ir_id, text, owner labels).

    The Listing 1 view — which single lines absorb the most samples —
    usable programmatically (the annotated-IR report shows the same data
    in context)."""
    counts, total = _ir_sample_counts(profile)
    if not total:
        return []
    instr_by_id = {}
    for function in profile.ir_module.functions:
        for instr in function.all_instructions():
            instr_by_id[instr.id] = instr
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])[:n]
    out = []
    for ir_id, count in ranked:
        instr = instr_by_id.get(ir_id)
        text = format_instr(instr) if instr is not None else f"%{ir_id}"
        owners = tuple(
            t.operator.label for t in profile.tagging.tasks_of_instruction(ir_id)
        )
        out.append((count / total, ir_id, text, owners))
    return out


def annotated_ir(profile, pipeline_index: int | None = None) -> str:
    """IR listing with per-instruction shares and operator labels (Fig. 6b)."""
    counts, total = _ir_sample_counts(profile)
    lines: list[str] = []
    for function in profile.ir_module.functions:
        if pipeline_index is not None and function.name != f"pipeline_{pipeline_index}":
            continue
        lines.append(f"define @{function.name} {{")
        for block in function.blocks:
            block_share = sum(
                counts.get(i.id, 0.0) for i in block.instructions
            ) / total * 100 if total else 0.0
            lines.append(f"{block.name}: ({block_share:.1f}%)")
            for instr in block.instructions:
                share = counts.get(instr.id, 0.0) / total * 100 if total else 0.0
                tasks = profile.tagging.tasks_of_instruction(instr.id)
                owner = ", ".join(t.operator.label for t in tasks) or "-"
                lines.append(
                    f"  {share:5.1f}%  {format_instr(instr):60s} {owner}"
                )
        lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------


@dataclass
class TimelineBin:
    """One time bucket of the operator-activity report."""

    start_tsc: int
    end_tsc: int
    total: int = 0
    by_operator: dict[PhysicalOperator, float] = field(default_factory=dict)

    def share_of(self, op: PhysicalOperator) -> float:
        if self.total == 0:
            return 0.0
        return self.by_operator.get(op, 0.0) / self.total


@dataclass
class Timeline:
    """Operator activity over the query runtime (Fig. 7)."""

    bins: list[TimelineBin]
    operators: list[PhysicalOperator]

    def dominant_operator(self, bin_index: int) -> PhysicalOperator | None:
        bucket = self.bins[bin_index]
        if not bucket.by_operator:
            return None
        return max(bucket.by_operator, key=bucket.by_operator.get)


def activity_timeline(profile, bins: int = 25) -> Timeline:
    """Bucket operator-attributed samples by timestamp (§4.3: "determine

    operator activity over the query runtime")."""
    attributions = [
        a for a in profile.attributions if a.category == CATEGORY_OPERATOR
    ]
    operators: list[PhysicalOperator] = []
    for op in profile.physical.walk():
        operators.append(op)
    if not attributions:
        return Timeline([], operators)
    lo = min(a.sample.tsc for a in attributions)
    hi = max(a.sample.tsc for a in attributions) + 1
    width = max(1, (hi - lo) // bins + (1 if (hi - lo) % bins else 0))
    buckets = [
        TimelineBin(start_tsc=lo + i * width, end_tsc=lo + (i + 1) * width)
        for i in range(bins)
    ]
    for attribution in attributions:
        index = min(bins - 1, (attribution.sample.tsc - lo) // width)
        bucket = buckets[index]
        bucket.total += 1
        share = attribution.weight_per_task
        for task in attribution.tasks:
            op = task.operator
            bucket.by_operator[op] = bucket.by_operator.get(op, 0.0) + share
    return Timeline([b for b in buckets if b.total], operators)


def render_timeline(profile, bins: int = 25, width: int = 60) -> str:
    """ASCII rendering of the activity timeline, one row per operator."""
    timeline = activity_timeline(profile, bins)
    if not timeline.bins:
        return "(no samples)"
    involved = sorted(
        {op for b in timeline.bins for op in b.by_operator},
        key=lambda op: op.op_id,
    )
    glyphs = " .:-=+*#%@"
    lines = []
    label_width = max(len(op.label) for op in involved) + 2
    for op in involved:
        cells = []
        for bucket in timeline.bins:
            share = bucket.share_of(op)
            cells.append(glyphs[min(len(glyphs) - 1, int(share * (len(glyphs) - 1)))])
        lines.append(f"{op.label:<{label_width}}|{''.join(cells)}|")
    span = timeline.bins[-1].end_tsc - timeline.bins[0].start_tsc
    lines.append(f"{'':<{label_width}} {span} cycles total")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# plan comparison (§6.1: the optimizer developer "can compare the profiling
# results of different query plans for the same query")


def compare_profiles(profile_a, profile_b,
                     label_a: str = "plan A", label_b: str = "plan B") -> str:
    """Side-by-side comparison of two profiles of the same query."""
    result_a, result_b = profile_a.result, profile_b.result
    lines = [
        f"{'':24} {label_a:>14} {label_b:>14}",
        f"{'cycles (wall)':24} {result_a.cycles:>14,} {result_b.cycles:>14,}",
        f"{'instructions':24} {result_a.instructions:>14,} "
        f"{result_b.instructions:>14,}",
        f"{'samples':24} {len(profile_a.samples):>14} "
        f"{len(profile_b.samples):>14}",
        "",
        f"{'operator kind':24} {label_a:>14} {label_b:>14}",
    ]

    def by_kind(profile):
        shares: dict[str, float] = {}
        for op, share in profile.operator_costs().items():
            shares[op.kind] = shares.get(op.kind, 0.0) + share
        return shares

    kinds_a, kinds_b = by_kind(profile_a), by_kind(profile_b)
    for kind in sorted(set(kinds_a) | set(kinds_b)):
        lines.append(
            f"{kind:24} {kinds_a.get(kind, 0) * 100:>13.1f}% "
            f"{kinds_b.get(kind, 0) * 100:>13.1f}%"
        )
    lines.append("")
    for label, profile in ((label_a, profile_a), (label_b, profile_b)):
        lines.append(f"{label} operators:")
        for op, share in sorted(
            profile.operator_costs().items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {share * 100:5.1f}%  {op.label}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# iterative dataflow (§4.2.6)


@dataclass
class Iteration:
    """One detected iteration of an iterative dataflow execution."""

    index: int
    start_tsc: int
    end_tsc: int
    samples: int


def detect_iterations(profile) -> list[Iteration]:
    """Split the sample stream into dataflow iterations (§4.2.6).

    The Tagging Dictionary cannot distinguish iterations — the same
    generated code runs again — so post-processing uses the samples'
    *timestamps*: pipelines execute in ascending order within one
    iteration, so a sample from an earlier pipeline than its predecessor
    marks the start of the next iteration.
    """
    pipeline_of_task = {
        task.id: pipeline.index
        for pipeline in profile.pipelines
        for task in pipeline.tasks
    }
    ordered = [
        a for a in sorted(profile.attributions, key=lambda a: a.sample.tsc)
        if a.category == CATEGORY_OPERATOR and a.tasks
    ]
    if not ordered:
        return []
    iterations: list[Iteration] = []
    start = ordered[0].sample.tsc
    count = 0
    previous_pipeline = -1
    for attribution in ordered:
        pipeline = min(pipeline_of_task[t.id] for t in attribution.tasks)
        if pipeline < previous_pipeline:
            iterations.append(Iteration(
                len(iterations), start, attribution.sample.tsc, count
            ))
            start = attribution.sample.tsc
            count = 0
        previous_pipeline = pipeline
        count += 1
    iterations.append(Iteration(
        len(iterations), start, ordered[-1].sample.tsc + 1, count
    ))
    return iterations


def iteration_report(profile) -> str:
    """Per-iteration summary: span, samples, dominant operator."""
    iterations = detect_iterations(profile)
    if not iterations:
        return "(no samples)"
    lines = [
        f"{len(iterations)} iteration(s) detected",
        f"{'iter':>5} {'start tsc':>12} {'cycles':>10} {'samples':>8}  top operator",
    ]
    for iteration in iterations:
        zoomed = profile.zoom(iteration.start_tsc, iteration.end_tsc)
        costs = zoomed.operator_costs()
        top = max(costs, key=costs.get).label if costs else "-"
        lines.append(
            f"{iteration.index:>5} {iteration.start_tsc:>12,} "
            f"{iteration.end_tsc - iteration.start_tsc:>10,} "
            f"{iteration.samples:>8}  {top}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------


@dataclass
class MemoryAccessProfile:
    """Per-operator load addresses over time (Fig. 12)."""

    accesses: dict[PhysicalOperator, list[tuple[int, int]]]
    # maps an address to the physical structure it belongs to (set when a
    # storage engine backs the database); bands are then the named
    # structures themselves rather than address-gap clusters
    band_of: "object" = None

    def address_range(self, op: PhysicalOperator) -> int:
        points = self.accesses.get(op, [])
        if not points:
            return 0
        addrs = [a for _, a in points]
        return max(addrs) - min(addrs)

    def linearity(self, op: PhysicalOperator) -> float:
        """Pearson correlation of (time, address) — ~1.0 for a linear scan,

        ~0 for scattered hash-table access."""
        points = self.accesses.get(op, [])
        return _pearson(points)

    def band_linearity(self, op: PhysicalOperator, gap: int = 32 * 1024) -> float:
        """Linearity computed per address *band* and averaged by weight.

        A table scan touches several column arrays in lock-step; globally
        the addresses look like parallel bands (exactly the stripes of the
        paper's Fig. 12), so correlation is computed within each band —
        ~1.0 for sequential scans, ~0 for hash-table access.
        """
        points = self.accesses.get(op, [])
        if len(points) < 3:
            return 0.0
        ordered = sorted(points, key=lambda p: p[1])
        if self.band_of is not None:
            # compressed layouts pack several small columns within one
            # gap-sized window; group by the resolved structure instead
            grouped: dict[object, list[tuple[int, int]]] = {}
            for point in ordered:
                grouped.setdefault(self.band_of(point[1]), []).append(point)
            bands = list(grouped.values())
        else:
            bands = [[ordered[0]]]
            for point in ordered[1:]:
                if point[1] - bands[-1][-1][1] > gap:
                    bands.append([point])
                else:
                    bands[-1].append(point)
        weighted = 0.0
        counted = 0
        for band in bands:
            if len(band) < 3:
                continue
            band.sort(key=lambda p: p[0])
            weighted += _pearson(band) * len(band)
            counted += len(band)
        return weighted / counted if counted else 0.0


def render_worker_timeline(profile, bins: int = 30) -> str:
    """Per-worker activity lanes for multicore profiles.

    Each lane shows one simulated core's sample density over time; gaps are
    barrier waits or morsel starvation — the scheduling view a multicore
    deployment of Tailored Profiling adds on top of the paper's reports.
    """
    attributions = [a for a in profile.attributions if a.category == CATEGORY_OPERATOR]
    if not attributions:
        return "(no samples)"
    lo = min(a.sample.tsc for a in attributions)
    hi = max(a.sample.tsc for a in attributions) + 1
    width = max(1, (hi - lo) // bins + (1 if (hi - lo) % bins else 0))
    workers = sorted({a.worker for a in attributions})
    counts = {w: [0] * bins for w in workers}
    for a in attributions:
        index = min(bins - 1, (a.sample.tsc - lo) // width)
        counts[a.worker][index] += 1
    peak = max(max(row) for row in counts.values()) or 1
    glyphs = " .:-=+*#%@"
    lines = []
    for worker in workers:
        cells = "".join(
            glyphs[min(len(glyphs) - 1, int(c / peak * (len(glyphs) - 1)))]
            for c in counts[worker]
        )
        lines.append(f"worker {worker}  |{cells}|")
    return "\n".join(lines)


def ipc_report(cycles_profile, instructions_profile) -> dict[PhysicalOperator, float]:
    """Per-operator IPC, the Figure 1 'IPC (15%)' style annotation.

    Combines two profiles of the *same* query: one sampled on cycles, one
    on retired instructions.  An operator's IPC is its instruction share
    scaled by total instructions over its cycle share scaled by total
    cycles — low IPC flags memory- or dependency-bound operators.
    """
    cycle_shares = cycles_profile.operator_costs()
    instr_shares = instructions_profile.operator_costs()
    total_cycles = cycles_profile.result.cycles
    total_instr = instructions_profile.result.instructions
    # the two profiles compiled the same SQL separately, so operators are
    # matched structurally (identical plan shape, different identities)
    counterpart = {
        a: b
        for a, b in zip(
            cycles_profile.physical.walk(), instructions_profile.physical.walk()
        )
    }
    out: dict[PhysicalOperator, float] = {}
    for op, cycle_share in cycle_shares.items():
        twin = counterpart.get(op)
        instr_share = instr_shares.get(twin, 0.0) if twin is not None else 0.0
        if cycle_share <= 0:
            continue
        out[op] = (instr_share * total_instr) / (cycle_share * total_cycles)
    return out


def render_ipc(cycles_profile, instructions_profile) -> str:
    ipc = ipc_report(cycles_profile, instructions_profile)
    lines = ["per-operator IPC (instructions per cycle):"]
    for op, value in sorted(ipc.items(), key=lambda kv: kv[0].op_id):
        lines.append(f"  {op.label:<22} {value:5.2f}")
    return "\n".join(lines)


def _pearson(points: list[tuple[int, int]]) -> float:
    if len(points) < 3:
        return 0.0
    n = len(points)
    ts = [t for t, _ in points]
    addrs = [a for _, a in points]
    mean_t = sum(ts) / n
    mean_a = sum(addrs) / n
    cov = sum((t - mean_t) * (a - mean_a) for t, a in points)
    var_t = sum((t - mean_t) ** 2 for t in ts)
    var_a = sum((a - mean_a) ** 2 for a in addrs)
    if var_t == 0 or var_a == 0:
        return 0.0
    return cov / (var_t**0.5 * var_a**0.5)


def memory_profile(profile) -> MemoryAccessProfile:
    """Group sampled load addresses by operator (requires MEM_LOADS

    sampling with address capture — §6.1's operator-developer use case).

    Accesses are classified like the paper's Fig. 12: a load that touches a
    base-table column is credited to that table's scan (its rows are
    labelled "orders"/"lineitem"), everything else (hash tables, sort
    buffers) stays with the operator that executed the load.  Stack traffic
    (register spill slots) is filtered out, as data-access profiling tools
    do.
    """
    # base-table column extents -> owning scan operator
    from repro.plan.physical import PhysicalScan

    scans_by_table: dict[str, PhysicalOperator] = {}
    for op in profile.physical.walk():
        if isinstance(op, PhysicalScan) and op.table.name not in scans_by_table:
            scans_by_table[op.table.name] = op
    extents: list[tuple[int, int, PhysicalOperator]] = []
    db = profile.database
    storage = getattr(db, "storage", None)
    if storage is None:
        # flat layout: one contiguous extent per column
        for (table_name, _column), addr in db._column_addresses.items():
            scan = scans_by_table.get(table_name)
            if scan is None:
                continue
            size = max(8, db.catalog.table(table_name).row_count * 8)
            extents.append((addr, addr + size, scan))
        extents.sort()

    def owner_by_address(addr: int) -> PhysicalOperator | None:
        if storage is not None:
            # the storage engine knows every segment's extent (including
            # packed/dictionary/run data that has no flat column address)
            ref = storage.resolve(addr)
            return scans_by_table.get(ref.table) if ref is not None else None
        import bisect

        index = bisect.bisect_right(extents, (addr, float("inf"), None)) - 1
        if index >= 0:
            lo, hi, scan = extents[index]
            if lo <= addr < hi:
                return scan
        return None

    accesses: dict[PhysicalOperator, list[tuple[int, int]]] = {}
    stacks = [(m.stack_base, m.stack_end) for m in profile.machines]
    for attribution in profile.attributions:
        if attribution.category != CATEGORY_OPERATOR:
            continue
        addr = attribution.sample.memaddr
        if addr is None or any(lo <= addr < hi for lo, hi in stacks):
            continue
        scan = owner_by_address(addr)
        if scan is not None:
            accesses.setdefault(scan, []).append((attribution.sample.tsc, addr))
            continue
        for task in attribution.tasks:
            accesses.setdefault(task.operator, []).append(
                (attribution.sample.tsc, addr)
            )

    band_of = None
    if storage is not None:
        def band_of(addr, _storage=storage):
            ref = _storage.resolve(addr)
            if ref is not None:
                return (ref.table, ref.column, ref.part)
            return addr >> 15  # non-storage memory: 32 KiB pages
    return MemoryAccessProfile(accesses, band_of)


# ---------------------------------------------------------------------------


def storage_breakdown(profile) -> dict:
    """The storage dimension: memaddr samples grouped by the physical
    segment they touched (table, column, shard, segment, encoding, part).

    Requires memaddr-recording sampling and a storage-backed database.
    Returns ``{(table, column): {"samples": n, "encoding": name,
    "segments": {segment_index: count}, "parts": {part: count}}}`` sorted
    by sample count, so a developer can see not just *which column* is hot
    but which slice of it — and whether time goes to the data itself or
    to auxiliary structures (dictionaries, run directories)."""
    weights = profile.processor.storage_weights(profile.attributions)
    grouped: dict = {}
    for ref, count in weights.items():
        entry = grouped.setdefault(
            (ref.table, ref.column),
            {"samples": 0, "encoding": ref.encoding,
             "segments": {}, "parts": {}},
        )
        entry["samples"] += count
        segments = entry["segments"]
        segments[ref.segment] = segments.get(ref.segment, 0) + count
        parts = entry["parts"]
        parts[ref.part] = parts.get(ref.part, 0) + count
    return dict(
        sorted(grouped.items(), key=lambda kv: -kv[1]["samples"])
    )


def render_storage_report(profile) -> str:
    """Text rendering of :func:`storage_breakdown` plus the observed
    zone-map effect (segments considered vs skipped, from the generated
    scan loops' counters)."""
    breakdown = storage_breakdown(profile)
    lines = ["storage dimension (memaddr samples per column segment):"]
    if not breakdown:
        lines.append("  (no storage-attributable samples; "
                     "enable record_memaddr)")
    for (table, column), info in breakdown.items():
        segs = info["segments"]
        hot = sorted(segs.items(), key=lambda kv: -kv[1])[:4]
        seg_text = ", ".join(f"seg {s}: {n}" for s, n in hot)
        if len(segs) > len(hot):
            seg_text += f", ... ({len(segs)} segments total)"
        lines.append(
            f"  {table}.{column} [{info['encoding']}]: "
            f"{info['samples']} sample(s)  ({seg_text})"
        )
        aux = {p: n for p, n in info["parts"].items() if p != "data"}
        if aux:
            aux_text = ", ".join(f"{p}: {n}" for p, n in sorted(aux.items()))
            lines.append(f"    auxiliary structures: {aux_text}")
    storage = getattr(profile.database, "storage", None)
    if storage is not None and storage.prune_stats:
        lines.append("zone-map effect (segments skipped / considered):")
        for (table, index), stats in sorted(storage.prune_stats.items()):
            column = storage.tables[table].columns[index]
            lines.append(
                f"  {table}.{column.name}: {stats.skipped} / "
                f"{stats.considered}  ({stats.skip_share * 100:.1f}%)"
            )
        for line in storage.encoding_advice():
            lines.append(f"  advice: {line}")
    return "\n".join(lines)
