"""Offline profiling sessions: the paper's metadata-file workflow (§5.2.2).

Umbra "writes all logs into a meta-data file, which is read by the
post-processing phase"; samples arrive separately via ``perf script``.
This module reproduces that decoupling: :func:`save_session` persists the
compile-time metadata (Tagging Dictionary logs, debug info, code-region
map) and the raw samples; :func:`load_session` re-attributes the samples
with *no* live engine objects — everything the post-processor needs is in
the files.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ProfilingError
from repro.vm.isa import REG_TAG, TAG_QUERY_SHIFT, TAG_TASK_MASK

_TAGGING_FILE = "tagging.json"
_PROGRAM_FILE = "program.json"
_SAMPLES_FILE = "samples.jsonl"
_META_FILE = "meta.json"


def save_session(profile, directory) -> pathlib.Path:
    """Persist one profiled run for offline post-processing."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    pipeline_of_task = {
        task.id: pipeline.index
        for pipeline in profile.pipelines
        for task in pipeline.tasks
    }
    tagging = profile.tagging
    tagging_doc = {
        "tasks": {
            str(task_id): {
                "role": task.role,
                "operator": task.operator.label,
                "kind": task.operator.kind,
                "pipeline": pipeline_of_task.get(task_id),
            }
            for task_id, task in tagging.tasks.items()
        },
        "log_b": {str(ir): list(task_ids) for ir, task_ids in tagging.log_b.items()},
        "runtime_ir": {str(ir): name for ir, name in tagging.runtime_ir.items()},
    }
    (directory / _TAGGING_FILE).write_text(json.dumps(tagging_doc))

    program = profile.program
    program_doc = {
        "functions": [
            {
                "name": info.name,
                "start": info.start,
                "end": info.end,
                "region": info.region.value,
            }
            for info in program.functions
        ],
        "debug": {str(ip): ir for ip, ir in program.debug.items()},
    }
    (directory / _PROGRAM_FILE).write_text(json.dumps(program_doc))

    with (directory / _SAMPLES_FILE).open("w") as handle:
        for attribution in profile.attributions:
            sample = attribution.sample
            record = {"ip": sample.ip, "tsc": sample.tsc,
                      "worker": attribution.worker}
            if sample.registers is not None:
                tag = sample.registers[REG_TAG]
                record["tag"] = tag
                if isinstance(tag, int) and tag >> TAG_QUERY_SHIFT:
                    # query/tenant dimension (repro.serve): persist the
                    # high half explicitly so offline tools need no
                    # knowledge of the packing
                    record["query"] = tag >> TAG_QUERY_SHIFT
            if sample.callstack is not None:
                record["callstack"] = list(sample.callstack)
            if sample.memaddr is not None:
                record["memaddr"] = sample.memaddr
            if sample.branch_taken is not None:
                record["taken"] = sample.branch_taken
            handle.write(json.dumps(record) + "\n")

    meta = {
        "mode": profile.config.mode.value,
        "event": profile.config.event.value,
        "period": profile.config.period,
        "cycles": profile.result.cycles,
        "instructions": profile.result.instructions,
        "workers": profile.workers,
    }
    (directory / _META_FILE).write_text(json.dumps(meta))
    return directory


class OfflineSession:
    """Post-processing over persisted metadata — no engine required."""

    def __init__(self, tagging_doc: dict, program_doc: dict,
                 samples: list[dict], meta: dict):
        self.meta = meta
        self._tasks = {
            int(task_id): info for task_id, info in tagging_doc["tasks"].items()
        }
        self._log_b = {
            int(ir): [int(t) for t in task_ids]
            for ir, task_ids in tagging_doc["log_b"].items()
        }
        self._runtime_ir = {
            int(ir): name for ir, name in tagging_doc["runtime_ir"].items()
        }
        self._functions = program_doc["functions"]
        self._debug = {int(ip): ir for ip, ir in program_doc["debug"].items()}
        self.samples = samples

    # -- lookups ------------------------------------------------------------

    def _region_at(self, ip: int) -> str | None:
        for info in self._functions:
            if info["start"] <= ip < info["end"]:
                return info["region"]
        return None

    def attribute(self, record: dict) -> tuple[str, list[dict]]:
        """(category, task infos) for one persisted sample record."""
        region = self._region_at(record["ip"])
        if region == "kernel":
            return "kernel", []
        if region == "query":
            ir = self._debug.get(record["ip"])
            tasks = self._log_b.get(ir, []) if ir is not None else []
            if tasks:
                return "operator", [self._tasks[t] for t in tasks]
            return "unattributed", []
        if region == "runtime":
            tag = record.get("tag")
            if isinstance(tag, int):
                # the low half is the task id (the high half, when
                # present, is the serve query id — see record["query"])
                tag &= TAG_TASK_MASK
            if tag in self._tasks:
                return "operator", [self._tasks[tag]]
            for call_site in reversed(record.get("callstack", [])):
                if self._region_at(call_site) != "query":
                    continue
                ir = self._debug.get(call_site)
                tasks = self._log_b.get(ir, []) if ir is not None else []
                if tasks:
                    return "operator", [self._tasks[t] for t in tasks]
            return "unattributed", []
        return "unattributed", []

    # -- aggregates -----------------------------------------------------------

    def summary(self) -> dict:
        counts = {"operator": 0, "kernel": 0, "unattributed": 0}
        for record in self.samples:
            category, _ = self.attribute(record)
            counts[category] += 1
        total = max(1, len(self.samples))
        return {
            "total_samples": len(self.samples),
            "operator_share": counts["operator"] / total,
            "kernel_share": counts["kernel"] / total,
            "unattributed_share": counts["unattributed"] / total,
        }

    def query_weights(self) -> dict[int, int]:
        """Sample counts per serve query id (0 = unqualified samples)."""
        weights: dict[int, int] = {}
        for record in self.samples:
            query = record.get("query")
            if query is None:
                tag = record.get("tag")
                query = tag >> TAG_QUERY_SHIFT if isinstance(tag, int) else 0
            weights[query] = weights.get(query, 0) + 1
        return weights

    def operator_weights(self) -> dict[str, float]:
        weights: dict[str, float] = {}
        for record in self.samples:
            category, tasks = self.attribute(record)
            if category != "operator" or not tasks:
                continue
            share = 1.0 / len(tasks)
            for task in tasks:
                label = task["operator"]
                weights[label] = weights.get(label, 0.0) + share
        return weights


def load_session(directory) -> OfflineSession:
    """Load a persisted session for offline post-processing."""
    directory = pathlib.Path(directory)
    try:
        tagging_doc = json.loads((directory / _TAGGING_FILE).read_text())
        program_doc = json.loads((directory / _PROGRAM_FILE).read_text())
        meta = json.loads((directory / _META_FILE).read_text())
        samples = [
            json.loads(line)
            for line in (directory / _SAMPLES_FILE).read_text().splitlines()
            if line.strip()
        ]
    except FileNotFoundError as exc:
        raise ProfilingError(f"not a profiling session: {exc}") from None
    return OfflineSession(tagging_doc, program_doc, samples, meta)
