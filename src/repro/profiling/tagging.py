"""The Tagging Dictionary (§4.2.2): per-lowering-step link logs.

Log A links tasks to their dataflow-graph operators (filled during pipeline
decomposition); Log B links IR instructions to tasks (filled by the IR
builder's emission funnel while the task tracker is active).  The third
lowering step, IR to native code, is covered by the backend's debug
information, exactly as Umbra uses DWARF from LLVM.

Optimizations keep the dictionary consistent (§4.2.7): eliminated
instructions are dropped; merged instructions (CSE) carry *all* their
original parents, so a sample on a merged instruction is split across the
source locations it implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.opts import OptimizationResult
from repro.errors import ProfilingError
from repro.pipeline.tasks import Task
from repro.plan.physical import PhysicalOperator
from repro.vm.isa import TAG_QUERY_SHIFT, TAG_TASK_MASK

# Paper §6.2: one dictionary entry is a triple (operator, task, IR source
# line) stored in 24 bytes.
ENTRY_BYTES = 24


@dataclass
class TaggingDictionary:
    """Both logs plus bookkeeping for shared (runtime) source locations."""

    # Log A: task id -> dataflow-graph operator
    log_a: dict[int, PhysicalOperator] = field(default_factory=dict)
    # Log B: IR instruction id -> owning task ids (usually exactly one;
    # several after instruction merging)
    log_b: dict[int, tuple[int, ...]] = field(default_factory=dict)
    # tasks by id, for report labels and register-tag resolution
    tasks: dict[int, Task] = field(default_factory=dict)
    # IR ids belonging to pre-compiled runtime functions (shared locations)
    runtime_ir: dict[int, str] = field(default_factory=dict)
    # storage dimension: maps a sampled memory address to the segment it
    # belongs to (a repro.storage.StorageRef), set by the engine when the
    # database has a columnar layout.  None outside storage-backed runs.
    storage_resolver: object = None
    # view dimension (repro.views): standing-query ids and their circuit
    # operators, so maintenance samples resolve through a *fifth*
    # abstraction level (view -> circuit operator -> IR -> VM)
    views: dict[int, str] = field(default_factory=dict)
    view_operators: dict[int, dict[int, str]] = field(default_factory=dict)

    # -- population (compile time) ----------------------------------------

    def register_task(self, task: Task) -> None:
        if task.id in self.log_a:
            raise ProfilingError(f"task {task.id} registered twice")
        self.log_a[task.id] = task.operator
        self.tasks[task.id] = task

    def link_instruction(self, ir_id: int, task: Task) -> None:
        if task.id not in self.log_a:
            raise ProfilingError(f"instruction links to unregistered task {task.id}")
        self.log_b[ir_id] = (task.id,)

    def link_runtime_instruction(self, ir_id: int, function_name: str) -> None:
        self.runtime_ir[ir_id] = function_name

    def apply_optimizations(self, result: OptimizationResult) -> None:
        """Fold the optimizer's deltas into Log B (§4.2.7)."""
        for ir_id in result.removed:
            self.log_b.pop(ir_id, None)
            self.runtime_ir.pop(ir_id, None)
        for survivor, absorbed in result.merged.items():
            parents: list[int] = list(self.log_b.get(survivor, ()))
            for dup in absorbed:
                for task_id in self.log_b.pop(dup, ()):
                    if task_id not in parents:
                        parents.append(task_id)
            if parents:
                self.log_b[survivor] = tuple(parents)

    # -- query dimension (repro.serve) --------------------------------------
    #
    # Under concurrent serving the tag register carries a packed
    # (query-id, task-id) pair: the task half identifies the component of
    # *some* compiled plan, the query half identifies which in-flight query
    # instance executed it (two concurrent queries can share one cached
    # compile, and therefore identical task ids).

    @staticmethod
    def encode_tag(query_id: int, task_id: int) -> int:
        return (query_id << TAG_QUERY_SHIFT) | (task_id & TAG_TASK_MASK)

    @staticmethod
    def decode_tag(value: int) -> tuple[int, int]:
        """Split a captured tag-register value into (query_id, task_id)."""
        return value >> TAG_QUERY_SHIFT, value & TAG_TASK_MASK

    def task_of_tag(self, value: int) -> Task | None:
        """Resolve the task half of a (possibly qualified) tag value."""
        return self.tasks.get(value & TAG_TASK_MASK)

    # -- view dimension (repro.views) ---------------------------------------
    #
    # Maintenance work reuses the same packed register layout: the query
    # half carries a view id (offset far above any serve query id), the
    # task half a delta-circuit node id.

    def register_view(self, view_id: int, name: str,
                      operators: dict[int, str]) -> None:
        if view_id in self.views:
            raise ProfilingError(f"view {view_id} registered twice")
        self.views[view_id] = name
        self.view_operators[view_id] = dict(operators)

    def view_of_tag(self, value: int) -> str | None:
        query_id, _ = self.decode_tag(value)
        return self.views.get(query_id)

    def view_operator_of_tag(self, value: int) -> str | None:
        query_id, task_id = self.decode_tag(value)
        return self.view_operators.get(query_id, {}).get(task_id)

    # -- lookup (post-processing time) --------------------------------------

    def tasks_of_instruction(self, ir_id: int) -> tuple[Task, ...]:
        return tuple(self.tasks[t] for t in self.log_b.get(ir_id, ()))

    def operator_of_task(self, task_id: int) -> PhysicalOperator | None:
        return self.log_a.get(task_id)

    def task_by_id(self, task_id: int) -> Task | None:
        return self.tasks.get(task_id)

    def runtime_function_of(self, ir_id: int) -> str | None:
        return self.runtime_ir.get(ir_id)

    # -- statistics (§6.2 storage discussion) --------------------------------

    @property
    def entry_count(self) -> int:
        return len(self.log_b)

    @property
    def size_bytes(self) -> int:
        return self.entry_count * ENTRY_BYTES
