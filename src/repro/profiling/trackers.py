"""Abstraction Trackers (§4.2.4): who is being lowered right now?

A tracker is a stack holding the currently-lowered component of one
abstraction level.  The engine pushes on entry to a component's lowering
code and pops on exit; whenever a lower-level component is created, the
Tagging Dictionary consults the tracker tops to record the links.

Umbra uses two: one for the active operator (produce/consume entry/exit)
and one for the active task (trigger/finish).  So do we.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import ProfilingError


class AbstractionTracker:
    """A stack of active higher-level components."""

    def __init__(self, name: str):
        self.name = name
        self._stack: list = []

    @property
    def current(self):
        """The active component, or None outside any component."""
        return self._stack[-1] if self._stack else None

    def push(self, component) -> None:
        self._stack.append(component)

    def pop(self):
        if not self._stack:
            raise ProfilingError(f"tracker {self.name!r}: pop from empty stack")
        return self._stack.pop()

    @contextmanager
    def active(self, component):
        """Scope ``component`` as the active one for the duration."""
        self.push(component)
        try:
            yield
        finally:
            popped = self.pop()
            if popped is not component:
                raise ProfilingError(
                    f"tracker {self.name!r}: unbalanced push/pop"
                )

    @property
    def depth(self) -> int:
        return len(self._stack)
