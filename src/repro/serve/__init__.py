"""repro.serve — the concurrent query service.

Sessions, admission control, and a morsel-interleaving scheduler over
shared VM workers, with always-on workload profiling: the tag register
carries a (query-id, component-tag) pair so every PMU sample attributes
to the right query *and* operator even with many queries in flight.
"""

from repro.serve.errors import (
    CANCELLED,
    COMPILE_ERROR,
    EXEC_ERROR,
    INSTRUCTION_LIMIT,
    QUEUE_FULL,
    SESSION_CLOSED,
    SHARD_FAILED,
    TENANT_QUOTA,
    TIMEOUT,
    ServiceError,
)
from repro.serve.profiler import (
    ContinuousProfiler,
    ProfileSnapshot,
    WorkloadProfile,
)
from repro.serve.service import (
    SERVE_PERIOD_CYCLES,
    QueryService,
    ServiceConfig,
    ServiceResult,
)
from repro.serve.session import Session, SessionManager
from repro.serve.workload import (
    SYNTHETIC_TEMPLATES,
    WorkloadItem,
    WorkloadSummary,
    load_workload,
    run_workload,
    synthetic_workload,
)

__all__ = [
    "CANCELLED",
    "COMPILE_ERROR",
    "EXEC_ERROR",
    "INSTRUCTION_LIMIT",
    "QUEUE_FULL",
    "SESSION_CLOSED",
    "SHARD_FAILED",
    "TENANT_QUOTA",
    "TIMEOUT",
    "SERVE_PERIOD_CYCLES",
    "SYNTHETIC_TEMPLATES",
    "ContinuousProfiler",
    "ProfileSnapshot",
    "QueryService",
    "ServiceConfig",
    "ServiceError",
    "ServiceResult",
    "Session",
    "SessionManager",
    "WorkloadItem",
    "WorkloadProfile",
    "WorkloadSummary",
    "load_workload",
    "run_workload",
    "synthetic_workload",
]
