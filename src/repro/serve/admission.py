"""Admission control: a bounded priority queue with graceful shedding.

The queue holds :class:`QueryRequest` objects ordered by (priority desc,
submission order).  When full, ``offer`` raises a structured
:class:`~repro.serve.errors.ServiceError` with code ``QUEUE_FULL`` — load
shedding is an *error the client can act on*, never a silent drop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.serve.errors import QUEUE_FULL, ServiceError


@dataclass(frozen=True)
class QueryRequest:
    """One submitted query, as the admission queue carries it."""

    ticket: int
    sql: str
    session: str
    priority: int = 0
    # both limits are simulated quantities: cycles against the worker's
    # clock, instructions against the per-query budget
    timeout_cycles: int | None = None
    max_instructions: int | None = None

    @property
    def order_key(self) -> tuple[int, int]:
        # smaller sorts first: high priority, then FIFO within a priority
        return (-self.priority, self.ticket)


@dataclass
class AdmissionController:
    """Bounded priority queue; sheds on overflow, skips cancellations."""

    max_queue: int = 32
    _heap: list[tuple[tuple[int, int], QueryRequest]] = field(
        default_factory=list
    )
    _cancelled: set[int] = field(default_factory=set)
    shed: int = 0

    def __len__(self) -> int:
        return sum(
            1 for _, r in self._heap if r.ticket not in self._cancelled
        )

    def empty(self) -> bool:
        return len(self) == 0

    def offer(self, request: QueryRequest) -> None:
        """Enqueue, or shed with a stable ``QUEUE_FULL`` error."""
        if len(self) >= self.max_queue:
            self.shed += 1
            raise ServiceError(
                QUEUE_FULL,
                f"admission queue full ({self.max_queue} queued); "
                f"query {request.ticket} shed",
            )
        heapq.heappush(self._heap, (request.order_key, request))

    def poll(self) -> QueryRequest | None:
        """The next admissible request, or None when the queue is empty."""
        while self._heap:
            _, request = heapq.heappop(self._heap)
            if request.ticket in self._cancelled:
                self._cancelled.discard(request.ticket)
                continue
            return request
        return None

    def cancel(self, ticket: int) -> bool:
        """Mark a queued ticket cancelled; True if it was waiting here."""
        if any(
            r.ticket == ticket
            for _, r in self._heap
            if r.ticket not in self._cancelled
        ):
            self._cancelled.add(ticket)
            return True
        return False
