"""Structured service errors: every failure path carries a stable code.

Clients of the concurrent query service (and its tests) match on
``ServiceError.code``, never on message text — the codes are part of the
service's public contract and must stay stable across releases.
"""

from __future__ import annotations

from repro.errors import ReproError

# stable error codes (the service's wire contract)
QUEUE_FULL = "QUEUE_FULL"
TIMEOUT = "TIMEOUT"
CANCELLED = "CANCELLED"
SESSION_CLOSED = "SESSION_CLOSED"
COMPILE_ERROR = "COMPILE_ERROR"
INSTRUCTION_LIMIT = "INSTRUCTION_LIMIT"
EXEC_ERROR = "EXEC_ERROR"
# fleet-level codes (repro.fleet): the router tier sheds over-quota
# tenants and surfaces shard loss under the same structured contract
TENANT_QUOTA = "TENANT_QUOTA"
SHARD_FAILED = "SHARD_FAILED"

_KNOWN_CODES = frozenset({
    QUEUE_FULL,
    TIMEOUT,
    CANCELLED,
    SESSION_CLOSED,
    COMPILE_ERROR,
    INSTRUCTION_LIMIT,
    EXEC_ERROR,
    TENANT_QUOTA,
    SHARD_FAILED,
})


class ServiceError(ReproError):
    """A structured failure: a stable ``code`` plus a human message."""

    def __init__(self, code: str, message: str):
        if code not in _KNOWN_CODES:
            raise ValueError(f"unknown service error code: {code}")
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.detail = message
