"""Per-query execution state: a compiled query sliced into morsel units.

The engine runs a query's pipelines in one synchronous sweep
(``Database._run_pipelines``); the service instead unrolls the same sweep
into discrete *units* — setup, per-pipeline prepare, and morsel calls —
that the scheduler interleaves across queries on the shared workers.
Phase ordering within a query is preserved by a lazy barrier: the
execution records the simulated completion time of each phase
(``ready_tsc``), and a worker picking up the next phase's unit first
advances its clock to it, exactly as a real worker would wait.

Per-query counters (instructions, loads, stores, tuple counters, rows)
are accumulated from per-unit deltas of the shared worker state.  They
are *interleaving-invariant*: a morsel executes the same instruction
sequence no matter which worker runs it or what ran before, because the
only state it reads is the table data and this query's own state block.
Cycles and sample counts are **not** invariant (the cache hierarchy and
branch predictor are shared across queries by design) — the differential
oracle compares only the invariant set.
"""

from __future__ import annotations

from repro.pipeline.tasks import Pipeline
from repro.serve.errors import ServiceError
from repro.vm.pmu import Sample

# unit kinds
SETUP = "setup"
PREPARE = "prepare"
MORSEL = "morsel"

# execution statuses
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


class Unit:
    """One schedulable piece of a query: a single function call."""

    __slots__ = ("kind", "pipeline", "morsel", "lo", "hi")

    def __init__(self, kind, pipeline=-1, morsel=-1, lo=0, hi=0):
        self.kind = kind
        self.pipeline = pipeline
        self.morsel = morsel
        self.lo = lo
        self.hi = hi

    def __repr__(self) -> str:
        if self.kind == MORSEL:
            return (
                f"<Unit morsel p{self.pipeline}#{self.morsel} "
                f"[{self.lo}:{self.hi})>"
            )
        return f"<Unit {self.kind} p{self.pipeline}>"


class QueryExecution:
    """One admitted query's in-flight state."""

    def __init__(
        self,
        query_id: int,
        request,
        compiled,
        state_addr: int,
        admit_tsc: int,
        morsel_size: int,
    ):
        self.query_id = query_id
        self.request = request
        self.compiled = compiled
        self.state_addr = state_addr
        self.admit_tsc = admit_tsc
        self.morsel_size = morsel_size
        self.ready_tsc = admit_tsc
        self.deadline_tsc = (
            admit_tsc + request.timeout_cycles
            if request.timeout_cycles is not None
            else None
        )
        self.budget_left = request.max_instructions
        # worker index -> this query's Machine on that worker
        self.machines: dict[int, object] = {}
        self.pending: list[Unit] = [Unit(SETUP)]
        self._phase = SETUP
        self._pipeline_pos = -1
        self._phase_units_left = 1
        self._phase_end_tsc = admit_tsc
        self.last_dispatch_step = -1
        # interleaving-invariant per-query counters
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        # busy (not invariant: shared caches/predictor) — reporting only
        self.busy_cycles = 0
        self.samples: list[tuple[int, Sample]] = []
        self.raw_morsels: list[tuple[int, int, list]] = []
        self.rows: list[tuple] | None = None
        self.task_counts: dict[int, int] = {}
        self.status = RUNNING
        self.error: ServiceError | None = None
        self.completed_tsc: int | None = None

    # -- scheduling interface -----------------------------------------------

    @property
    def priority(self) -> int:
        return self.request.priority

    @property
    def done(self) -> bool:
        return self.status != RUNNING

    def unit_entry(self, unit: Unit) -> tuple[int, tuple]:
        """The (entry ip, args) for one unit's function call."""
        query = self.compiled.query
        if unit.kind == SETUP:
            return query["query_setup"].info.start, (self.state_addr,)
        if unit.kind == PREPARE:
            fn = query[f"pipeline_{unit.pipeline}_prepare"]
            return fn.info.start, (self.state_addr,)
        fn = query[f"pipeline_{unit.pipeline}"]
        return fn.info.start, (self.state_addr, unit.lo, unit.hi)

    def unit_finished(self, unit: Unit, end_tsc: int, database) -> None:
        """Advance the phase machine after a unit ran to completion.

        Host execution is serial, so when the current phase's last unit
        finishes we can immediately compute the next pipeline's morsel
        domain (it may read this query's state block, e.g. a buffer
        count) and queue the next units."""
        self._phase_end_tsc = max(self._phase_end_tsc, end_tsc)
        self._phase_units_left -= 1
        if self._phase_units_left > 0:
            return
        # phase complete: the per-query barrier point
        self.ready_tsc = self._phase_end_tsc
        if self._phase == SETUP or self._phase == MORSEL:
            self._enter_pipeline(self._pipeline_pos + 1, database)
        elif self._phase == PREPARE:
            if not self._start_morsels(self._pipeline_pos, database):
                # prepared an empty domain (e.g. zero groups): the
                # pipeline has no morsels, move on or the query hangs
                self._enter_pipeline(self._pipeline_pos + 1, database)

    def _enter_pipeline(self, position: int, database) -> None:
        pipelines = self.compiled.pipelines
        while position < len(pipelines):
            self._pipeline_pos = position
            index = pipelines[position].index
            if f"pipeline_{index}_prepare" in self.compiled.query:
                self._phase = PREPARE
                self.pending = [Unit(PREPARE, pipeline=index)]
                self._phase_units_left = 1
                return
            if self._start_morsels(position, database):
                return
            # empty domain: the pipeline is a no-op, fall through
            position += 1
        self._finish(database)

    def _start_morsels(self, position: int, database) -> bool:
        """Queue the pipeline's morsel units; False if the domain is empty."""
        pipeline = self.compiled.pipelines[position]
        meta = self.compiled.query_ir.meta
        domain = meta.pipeline_domains.get(pipeline.index)
        total = database._domain_total(domain, self.state_addr)
        units = [
            Unit(MORSEL, pipeline=pipeline.index, morsel=i, lo=lo, hi=hi)
            for i, lo, hi in Pipeline.morsels(total, self.morsel_size)
        ]
        if not units:
            self._phase = MORSEL
            self._pipeline_pos = position
            return False
        self._phase = MORSEL
        self._pipeline_pos = position
        self.pending = units
        self._phase_units_left = len(units)
        return True

    def _finish(self, database) -> None:
        """Read tuple counters, decode rows, mark done."""
        meta = self.compiled.query_ir.meta
        self.task_counts = {
            task_id: database.memory.read(self.state_addr + offset)
            for task_id, offset in meta.task_counter_of.items()
        }
        columns = self.compiled.physical.columns
        ordered = sorted(self.raw_morsels, key=lambda m: (m[0], m[1]))
        self.rows = [
            database._decode_row(raw, columns)
            for _, _, raws in ordered
            for raw in raws
        ]
        self.pending = []
        self.status = DONE
        self.completed_tsc = self.ready_tsc

    def fail(self, error: ServiceError, status: str = FAILED) -> None:
        self.pending = []
        self.status = status
        self.error = error
        self.completed_tsc = self._phase_end_tsc

    @property
    def latency_cycles(self) -> int:
        end = (
            self.completed_tsc
            if self.completed_tsc is not None
            else self._phase_end_tsc
        )
        return max(0, end - self.admit_tsc)
