"""Always-on workload profiling: the PMU never disarms between queries.

The service's workers keep sampling across query boundaries (the PMU
cursor travels with the worker, see :mod:`repro.serve.workers`); this
module turns that continuous sample stream into:

* a per-query :class:`~repro.profiling.profile.Profile` built at query
  completion — fed straight into the PGO feedback store when one is
  attached, closing the profile-guided-optimization loop for *every*
  production query instead of dedicated profiling runs;
* a rolling :class:`WorkloadProfile`: per-template operator cost shares,
  top-K hot code regions, and latency percentiles across the workload;
* an attribution-accuracy metric: the scheduler knows ground truth (it
  observed which query each sample interrupted), the tag register's
  query-id half is the mechanism under test.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field

from repro.profiling.postprocess import SampleProcessor
from repro.profiling.profile import Profile


def percentile(values: list[int], fraction: float) -> int:
    """Nearest-rank percentile; 0 for an empty list."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = max(1, int(round(fraction * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class TemplateStats:
    """Rolling aggregate for one query template (by SQL fingerprint)."""

    sql: str
    queries: int = 0
    samples: int = 0
    instructions: int = 0
    latencies: list[int] = field(default_factory=list)
    operator_samples: Counter = field(default_factory=Counter)

    def operator_shares(self) -> dict[str, float]:
        total = sum(self.operator_samples.values())
        if total == 0:
            return {}
        return {
            label: count / total
            for label, count in self.operator_samples.most_common()
        }


@dataclass
class ViewMaintenanceStats:
    """Rolling maintenance cost of one materialized view (repro.views)."""

    name: str
    view_id: int
    batches: int = 0
    samples: int = 0
    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    operator_samples: Counter = field(default_factory=Counter)
    operator_instructions: Counter = field(default_factory=Counter)


def _copy_view_stats(stats: ViewMaintenanceStats) -> ViewMaintenanceStats:
    return ViewMaintenanceStats(
        name=stats.name,
        view_id=stats.view_id,
        batches=stats.batches,
        samples=stats.samples,
        instructions=stats.instructions,
        cycles=stats.cycles,
        loads=stats.loads,
        operator_samples=Counter(stats.operator_samples),
        operator_instructions=Counter(stats.operator_instructions),
    )


def _counter_add(mine: Counter, other: Counter) -> Counter:
    """Key-preserving counter addition.

    ``Counter.__add__`` drops non-positive entries, which breaks merge's
    identity (``empty.merge(s) == s``) and associativity whenever a
    zero-count key is present on one side only — so merge never uses it.
    """
    out = Counter(mine)
    for key, count in other.items():
        out[key] = out.get(key, 0) + count
    return out


@dataclass
class ProfileSnapshot:
    """A detached, mergeable copy of a profiler's rolling aggregate.

    This is the public exchange format between a :class:`ContinuousProfiler`
    and anything that wants its numbers without reaching into the live
    object: tests, reports, and the fleet tier's cross-shard merger.  All
    containers are copies, so a snapshot is immutable-in-practice and two
    snapshots can be merged without touching either source.

    ``merge`` is associative and commutative up to list order (sample and
    latency totals are sums, region counts are counter sums, per-template
    stats combine field-wise), which is what lets a fleet fold N shard
    snapshots in any tree shape and always report the same totals.
    """

    queries: int
    samples: int
    attributed_samples: int
    matched_samples: int
    templates: dict[str, TemplateStats]
    regions: Counter
    latencies: list[int]
    # materialized-view maintenance (repro.views); defaulted so shards
    # without a view tier keep constructing snapshots unchanged
    maintenance_samples: int = 0
    maintenance_instructions: int = 0
    views: dict[int, ViewMaintenanceStats] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        if self.attributed_samples == 0:
            return 1.0
        return self.matched_samples / self.attributed_samples

    @classmethod
    def empty(cls) -> "ProfileSnapshot":
        """The merge identity: ``empty().merge(s) == s`` exactly."""
        return cls(
            queries=0,
            samples=0,
            attributed_samples=0,
            matched_samples=0,
            templates={},
            regions=Counter(),
            latencies=[],
        )

    def merge(self, other: "ProfileSnapshot") -> "ProfileSnapshot":
        """Combine two snapshots into a new one (sources untouched)."""
        templates = {
            key: _copy_template(stats) for key, stats in self.templates.items()
        }
        for key, stats in other.templates.items():
            mine = templates.get(key)
            if mine is None:
                templates[key] = _copy_template(stats)
                continue
            mine.queries += stats.queries
            mine.samples += stats.samples
            mine.instructions += stats.instructions
            mine.latencies.extend(stats.latencies)
            mine.operator_samples = _counter_add(
                mine.operator_samples, stats.operator_samples
            )
            if not mine.sql:
                mine.sql = stats.sql
        views = {
            view_id: _copy_view_stats(stats)
            for view_id, stats in self.views.items()
        }
        for view_id, stats in other.views.items():
            mine_view = views.get(view_id)
            if mine_view is None:
                views[view_id] = _copy_view_stats(stats)
                continue
            mine_view.batches += stats.batches
            mine_view.samples += stats.samples
            mine_view.instructions += stats.instructions
            mine_view.cycles += stats.cycles
            mine_view.loads += stats.loads
            mine_view.operator_samples = _counter_add(
                mine_view.operator_samples, stats.operator_samples
            )
            mine_view.operator_instructions = _counter_add(
                mine_view.operator_instructions, stats.operator_instructions
            )
            if not mine_view.name:
                mine_view.name = stats.name
        return ProfileSnapshot(
            queries=self.queries + other.queries,
            samples=self.samples + other.samples,
            attributed_samples=(
                self.attributed_samples + other.attributed_samples
            ),
            matched_samples=self.matched_samples + other.matched_samples,
            templates=templates,
            regions=_counter_add(self.regions, other.regions),
            latencies=self.latencies + other.latencies,
            maintenance_samples=(
                self.maintenance_samples + other.maintenance_samples
            ),
            maintenance_instructions=(
                self.maintenance_instructions + other.maintenance_instructions
            ),
            views=views,
        )

    def workload_profile(self, top_k: int = 10) -> "WorkloadProfile":
        """Render-ready view of the snapshot (same shape as the live one)."""
        return WorkloadProfile(
            queries=self.queries,
            samples=self.samples,
            attributed_samples=self.attributed_samples,
            matched_samples=self.matched_samples,
            templates=dict(self.templates),
            hot_regions=self.regions.most_common(top_k),
            latency_p50=percentile(self.latencies, 0.50),
            latency_p95=percentile(self.latencies, 0.95),
            latency_p99=percentile(self.latencies, 0.99),
            maintenance_samples=self.maintenance_samples,
            views=dict(self.views),
        )


def _copy_template(stats: TemplateStats) -> TemplateStats:
    return TemplateStats(
        sql=stats.sql,
        queries=stats.queries,
        samples=stats.samples,
        instructions=stats.instructions,
        latencies=list(stats.latencies),
        operator_samples=Counter(stats.operator_samples),
    )


@dataclass
class WorkloadProfile:
    """A point-in-time snapshot of the rolling workload aggregate."""

    queries: int
    samples: int
    attributed_samples: int
    matched_samples: int
    templates: dict[str, TemplateStats]
    hot_regions: list[tuple[str, int]]
    latency_p50: int
    latency_p95: int
    latency_p99: int
    maintenance_samples: int = 0
    views: dict[int, ViewMaintenanceStats] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Share of register-carrying samples whose decoded query id
        matches the scheduler's ground truth (1.0 when nothing sampled)."""
        if self.attributed_samples == 0:
            return 1.0
        return self.matched_samples / self.attributed_samples

    def render(self) -> str:
        lines = [
            "workload profile",
            f"  queries profiled    {self.queries}",
            f"  samples             {self.samples}",
            f"  tag accuracy        {self.accuracy:.4f}",
            "  latency cycles      "
            f"p50={self.latency_p50} p95={self.latency_p95} "
            f"p99={self.latency_p99}",
        ]
        if self.hot_regions:
            lines.append("  hot regions")
            for name, count in self.hot_regions:
                lines.append(f"    {count:6d}  {name}")
        for key, stats in sorted(
            self.templates.items(), key=lambda kv: -kv[1].samples
        ):
            lines.append(
                f"  template {key}  ({stats.queries} runs, "
                f"{stats.samples} samples)"
            )
            first = stats.sql.strip().splitlines()[0] if stats.sql else ""
            if first:
                lines.append(f"    {first[:72]}")
            for label, share in list(stats.operator_shares().items())[:6]:
                lines.append(f"    {share:6.1%}  {label}")
        if self.views:
            lines.append(
                f"  view maintenance    {self.maintenance_samples} samples"
            )
            for stats in sorted(
                self.views.values(), key=lambda s: -s.instructions
            ):
                lines.append(
                    f"    view {stats.name}  ({stats.batches} batches, "
                    f"{stats.instructions} instructions, "
                    f"{stats.samples} samples)"
                )
                for label, count in stats.operator_instructions.most_common(6):
                    lines.append(f"      {count:8d}  {label}")
        return "\n".join(lines)


class ContinuousProfiler:
    """Aggregates the always-on sample stream across queries."""

    def __init__(self, database, config, pgo_store=None, top_k: int = 10):
        self.database = database
        self.config = config
        self.pgo_store = pgo_store
        self.top_k = top_k
        self.queries = 0
        self.samples_total = 0
        # accuracy bookkeeping: scheduler ground truth vs register tag
        self.attributed_samples = 0
        self.matched_samples = 0
        self.templates: dict[str, TemplateStats] = {}
        self.region_counter: Counter = Counter()
        self.latencies: list[int] = []
        # materialized-view maintenance (repro.views): per-view rolling
        # cost, attributed through the tag register's view-id half
        self.maintenance_samples_total = 0
        self.maintenance_instructions_total = 0
        self.view_stats: dict[int, ViewMaintenanceStats] = {}

    # -- per-unit (called by the scheduler after every dispatched unit) ----

    def observe_unit(self, execution, new_samples) -> None:
        """Score each fresh sample against scheduler ground truth.

        The scheduler knows exactly which query's unit the worker was
        running when the PMU fired; the register-decoded query id is the
        mechanism being validated (§6.3-style accuracy, per query)."""
        self.samples_total += len(new_samples)
        truth = execution.query_id
        for sample in new_samples:
            if sample.registers is None:
                continue
            self.attributed_samples += 1
            if sample.query_id == truth:
                self.matched_samples += 1

    # -- per-view maintenance (called by repro.views after each charge) ----

    def observe_view_unit(self, view_id: int, name: str, label: str,
                          new_samples, instructions: int, cycles: int,
                          loads: int = 0) -> None:
        """Fold one delta operator's metered maintenance work, plus any
        PMU samples it produced, into the view's rolling stats.

        The same accuracy bookkeeping as :meth:`observe_unit` applies: the
        view tier is the scheduler here, so ground truth is the view id it
        installed in the tag register before charging."""
        stats = self.view_stats.get(view_id)
        if stats is None:
            stats = self.view_stats[view_id] = ViewMaintenanceStats(
                name=name, view_id=view_id
            )
        stats.samples += len(new_samples)
        stats.instructions += instructions
        stats.cycles += cycles
        stats.loads += loads
        stats.operator_samples[label] += len(new_samples)
        stats.operator_instructions[label] += instructions
        self.maintenance_samples_total += len(new_samples)
        self.maintenance_instructions_total += instructions
        self.samples_total += len(new_samples)
        for sample in new_samples:
            if sample.registers is None:
                continue
            self.attributed_samples += 1
            if sample.query_id == view_id:
                self.matched_samples += 1

    def note_view_batch(self, view_id: int, name: str) -> None:
        stats = self.view_stats.get(view_id)
        if stats is None:
            stats = self.view_stats[view_id] = ViewMaintenanceStats(
                name=name, view_id=view_id
            )
        stats.batches += 1

    # -- per-query (called at completion) ----------------------------------

    def complete_query(self, execution) -> Profile | None:
        """Build the query's Profile, aggregate it, feed the PGO store."""
        from repro.pgo.fingerprint import fingerprint

        compiled = execution.compiled
        processor = SampleProcessor(compiled.program, compiled.tagging)
        attributions = []
        for worker_index, sample in execution.samples:
            attribution = processor.attribute(sample)
            if worker_index:
                attribution = dataclasses.replace(
                    attribution, worker=worker_index
                )
            attributions.append(attribution)
        attributions.sort(key=lambda a: a.sample.tsc)

        machines = [
            execution.machines[idx] for idx in sorted(execution.machines)
        ]
        from repro.engine import QueryResult

        result = QueryResult(
            columns=[name for name, _ in compiled.physical.columns],
            rows=execution.rows or [],
            cycles=execution.latency_cycles,
            instructions=execution.instructions,
        )
        profile = Profile(
            database=self.database,
            config=self.config,
            physical=compiled.physical,
            pipelines=compiled.pipelines,
            ir_module=compiled.query_ir.module,
            program=compiled.program,
            machine=machines[0] if machines else None,
            machines=machines,
            tagging=compiled.tagging,
            processor=processor,
            attributions=attributions,
            result=result,
            sql=compiled.sql,
            task_counts=execution.task_counts,
            estimates=compiled.estimates,
        )

        self.queries += 1
        self.latencies.append(execution.latency_cycles)
        key = fingerprint(compiled.sql)
        stats = self.templates.get(key)
        if stats is None:
            stats = self.templates[key] = TemplateStats(sql=compiled.sql)
        stats.queries += 1
        stats.samples += len(attributions)
        stats.instructions += execution.instructions
        stats.latencies.append(execution.latency_cycles)
        for attribution in attributions:
            weight = attribution.weight_per_task
            for task in attribution.tasks:
                stats.operator_samples[task.operator.label] += weight
        for _, sample in execution.samples:
            info = compiled.program.function_at(sample.ip)
            name = info.name if info else f"ip:{sample.ip:#x}"
            self.region_counter[name] += 1

        if self.pgo_store is not None:
            self.pgo_store.record(profile)
        return profile

    # -- snapshots ---------------------------------------------------------

    def profile_snapshot(self) -> ProfileSnapshot:
        """The public point-in-time copy of the rolling aggregate."""
        return ProfileSnapshot(
            queries=self.queries,
            samples=self.samples_total,
            attributed_samples=self.attributed_samples,
            matched_samples=self.matched_samples,
            templates={
                key: _copy_template(stats)
                for key, stats in self.templates.items()
            },
            regions=Counter(self.region_counter),
            latencies=list(self.latencies),
            maintenance_samples=self.maintenance_samples_total,
            maintenance_instructions=self.maintenance_instructions_total,
            views={
                view_id: _copy_view_stats(stats)
                for view_id, stats in self.view_stats.items()
            },
        )

    def workload_profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            queries=self.queries,
            samples=self.samples_total,
            attributed_samples=self.attributed_samples,
            matched_samples=self.matched_samples,
            templates=dict(self.templates),
            hot_regions=self.region_counter.most_common(self.top_k),
            latency_p50=percentile(self.latencies, 0.50),
            latency_p95=percentile(self.latencies, 0.95),
            latency_p99=percentile(self.latencies, 0.99),
            maintenance_samples=self.maintenance_samples_total,
            views=dict(self.view_stats),
        )

    @property
    def accuracy(self) -> float:
        if self.attributed_samples == 0:
            return 1.0
        return self.matched_samples / self.attributed_samples
