"""The concurrent query service: sessions, admission, shared workers.

``QueryService`` multiplexes many in-flight queries over a fixed pool of
simulated cores.  The host process is single-threaded — concurrency is a
*simulated-time* phenomenon, exactly like the engine's morsel-parallel
workers: the scheduler repeatedly picks the next (query, unit) pair and
the least-loaded worker, and simulated clocks interleave.

Determinism: given the same database, config, and submission sequence,
every scheduling decision is a pure function of simulated clocks and
submission order, so two runs produce bit-identical per-query counters,
rows, and sample streams.  Per-query counters are additionally
*interleaving-invariant* (see :mod:`repro.serve.execution`), which is
what the differential fuzzer's ``serve-concurrent`` oracle checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import ProfilerConfig, ProfilingMode
from repro.errors import ReproError, VMError
from repro.serve.admission import AdmissionController, QueryRequest
from repro.serve.errors import (
    CANCELLED,
    COMPILE_ERROR,
    EXEC_ERROR,
    INSTRUCTION_LIMIT,
    SESSION_CLOSED,
    TIMEOUT,
    ServiceError,
)
from repro.serve.execution import (
    CANCELLED as EXEC_CANCELLED,
    DONE,
    FAILED,
    MORSEL,
    QueryExecution,
    Unit,
)
from repro.serve.profiler import ContinuousProfiler
from repro.serve.session import Session, SessionManager
from repro.serve.workers import Worker
from repro.vm.machine import Machine
from repro.vm.pmu import Event

# the service's default sampling period: coarse enough that always-on
# profiling stays well inside the paper-style 15% throughput budget
# while a steady workload still collects hundreds of samples per second
SERVE_PERIOD_CYCLES = 100_000


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the concurrent query service."""

    workers: int = 4
    max_inflight: int = 8
    max_queue: int = 32
    morsel_size: int = 256
    profiling: bool = True
    period: int = SERVE_PERIOD_CYCLES
    event: Event = Event.CYCLES
    fast_vm: bool = True
    plan_cache_flavor: str = "serve"
    seed: int = 0
    # adaptive tiered execution (repro.vm.tiering): hot programs are
    # recompiled as profile-specialized tier-2 traces; re-tiering commits
    # at unit dispatch, i.e. morsel boundaries.  Pure wall-clock: tier
    # choice never changes rows, counters, or sample streams.
    tiering: bool = True
    # hotness threshold override for the controller; None keeps the
    # default (costs.TIER2_HOT_INSTRUCTIONS).  Tests and the fuzz oracle
    # set a floor-level value so promotion happens inside short workloads.
    tiering_hot_instructions: int | None = None


@dataclass
class ServiceResult:
    """What a client gets back for one ticket."""

    ticket: int
    query_id: int
    session: str
    sql: str
    status: str  # "ok" | "failed" | "cancelled"
    columns: list[str] = field(default_factory=list)
    rows: list[tuple] | None = None
    error: ServiceError | None = None
    # interleaving-invariant per-query counters
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    task_counts: dict[int, int] = field(default_factory=dict)
    # simulated-time metrics (deterministic, but interleaving-dependent)
    latency_cycles: int = 0
    busy_cycles: int = 0
    samples: int = 0
    # highest execution tier any of the query's machines ran at
    tier: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def error_code(self) -> str | None:
        return self.error.code if self.error is not None else None


class QueryService:
    """Admission-controlled concurrent execution over shared VM workers."""

    def __init__(self, database, config: ServiceConfig | None = None,
                 pgo_store=None):
        self.db = database
        self.config = config or ServiceConfig()
        if self.config.workers < 1:
            raise ReproError("service needs at least one worker")
        self.workers = [Worker(i) for i in range(self.config.workers)]
        self.sessions = SessionManager(self, seed=self.config.seed)
        self.admission = AdmissionController(max_queue=self.config.max_queue)
        self.pgo_store = pgo_store
        if self.config.profiling:
            self._profiler_config = ProfilerConfig(
                mode=ProfilingMode.REGISTER_TAGGING,
                event=self.config.event,
                period=self.config.period,
                count_tuples=pgo_store is not None,
            )
            self.profiler = ContinuousProfiler(
                database, self._profiler_config, pgo_store=pgo_store
            )
        else:
            self._profiler_config = None
            self.profiler = None
        if self.config.tiering and self.config.fast_vm:
            from repro.vm.tiering import TieringController

            self.tiering = TieringController(
                hot_instructions=self.config.tiering_hot_instructions
            )
        else:
            self.tiering = None
        self.inflight: dict[int, QueryExecution] = {}
        self.results: dict[int, ServiceResult] = {}
        self._order: list[ServiceResult] = []
        self._requests: dict[int, QueryRequest] = {}
        self._tickets = 0
        self._query_ids = 0
        self._step = 0
        # execution epoch: bump-allocator mark + plan-cache watermark,
        # taken at the idle->busy transition, released at quiesce
        self._epoch_mark: int | None = None
        self._cache_watermark = 0
        self.epochs = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0

    # -- client API ---------------------------------------------------------

    def session(self, name: str, seed: int | None = None) -> Session:
        return self.sessions.open(name, seed)

    def submit(
        self,
        sql: str,
        session: Session | str | None = None,
        priority: int = 0,
        timeout_cycles: int | None = None,
        max_instructions: int | None = None,
    ) -> int:
        """Queue a query; returns its ticket.

        Raises :class:`ServiceError` with code ``QUEUE_FULL`` when the
        admission queue sheds the request."""
        if session is None:
            session = self.sessions.open("default")
        elif isinstance(session, str):
            session = self.sessions.open(session)
        if session.closed:
            raise ServiceError(
                SESSION_CLOSED, f"session {session.name!r} is closed"
            )
        self._tickets += 1
        request = QueryRequest(
            ticket=self._tickets,
            sql=sql,
            session=session.name,
            priority=priority,
            timeout_cycles=timeout_cycles,
            max_instructions=max_instructions,
        )
        self.admission.offer(request)  # may shed with QUEUE_FULL
        self._requests[request.ticket] = request
        session.tickets.append(request.ticket)
        return request.ticket

    def cancel(self, ticket: int) -> bool:
        """Cancel a queued or in-flight query; False if already finished."""
        if ticket in self.results:
            return False
        if self.admission.cancel(ticket):
            request = self._requests.get(ticket)
            self._record_cancelled(request)
            return True
        for execution in self.inflight.values():
            if execution.request.ticket == ticket and not execution.done:
                execution.fail(
                    ServiceError(CANCELLED, f"query {ticket} cancelled"),
                    status=EXEC_CANCELLED,
                )
                self._finalize(execution)
                return True
        return False

    def result(self, ticket: int) -> ServiceResult | None:
        return self.results.get(ticket)

    def warm(self, sqls) -> int:
        """Pre-compile templates *outside* any execution epoch.

        Warmed plans survive epoch teardown (their compile-time memory
        sits below every epoch mark); plans compiled mid-epoch are
        transient.  Returns the number of plans compiled."""
        if self._epoch_mark is not None:
            raise ReproError("warm() must be called while the service is idle")
        before = self.db.plan_cache.misses
        for sql in sqls:
            self._compile(sql)
        return self.db.plan_cache.misses - before

    def drain(self) -> list[ServiceResult]:
        """Run until queue and in-flight set are empty; quiesce afterwards.

        Returns the results finalized during this call, in completion
        order."""
        order_before = len(self._order)
        while True:
            self._admit()
            runnable = [
                e for e in self.inflight.values() if not e.done and e.pending
            ]
            if not runnable:
                if self.admission.empty():
                    break
                continue
            execution = min(
                runnable,
                key=lambda e: (
                    -e.priority, e.last_dispatch_step, e.query_id
                ),
            )
            unit = execution.pending.pop(0)
            self._step += 1
            execution.last_dispatch_step = self._step
            self._dispatch(execution, unit)
        self._quiesce()
        return self._order[order_before:]

    def stats(self) -> dict:
        out = {
            "submitted": self._tickets,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "shed": self.admission.shed,
            "epochs": self.epochs,
            "workers": len(self.workers),
            "worker_cycles": [w.state.cycles for w in self.workers],
            "context_switches": sum(w.context_switches for w in self.workers),
            "plan_cache": self.db.plan_cache.stats(),
        }
        if self.profiler is not None:
            out["samples"] = self.profiler.samples_total
            out["tag_accuracy"] = self.profiler.accuracy
        if self.tiering is not None:
            out["tiering"] = self.tiering.stats()
        return out

    def workload_profile(self):
        if self.profiler is None:
            return None
        return self.profiler.workload_profile()

    def profile_snapshot(self):
        """Detached copy of the continuous profiler's rolling aggregate
        (:class:`repro.serve.profiler.ProfileSnapshot`), or ``None`` when
        profiling is off.  This is the supported way to read the
        profiler's numbers — the fleet merger and the tests both use it
        instead of poking :class:`ContinuousProfiler` internals."""
        if self.profiler is None:
            return None
        return self.profiler.profile_snapshot()

    # -- scheduling internals ------------------------------------------------

    def _compile(self, sql: str):
        return self.db.compiled_for(
            sql,
            profiler=self._profiler_config,
            qualify_tags=self._profiler_config is not None,
            count_tuples=(
                self._profiler_config.count_tuples
                if self._profiler_config is not None
                else False
            ),
            flavor=self.config.plan_cache_flavor,
        )

    def _ensure_epoch(self) -> None:
        if self._epoch_mark is None:
            self._epoch_mark = self.db.memory.mark()
            self._cache_watermark = self.db.plan_cache.serial
            self.epochs += 1

    def _admit(self) -> None:
        while len(self.inflight) < self.config.max_inflight:
            request = self.admission.poll()
            if request is None:
                return
            self._ensure_epoch()
            try:
                compiled = self._compile(request.sql)
            except ServiceError:
                raise
            except ReproError as exc:
                error = ServiceError(COMPILE_ERROR, str(exc))
                self._record_failed_request(request, error)
                continue
            state_bytes = compiled.query_ir.state.size_bytes
            state_addr = self.db.memory.alloc(state_bytes, "serve_state")
            self.db._zero_state(state_addr, state_bytes)
            self._query_ids += 1
            admit_tsc = min(w.state.cycles for w in self.workers)
            execution = QueryExecution(
                query_id=self._query_ids,
                request=request,
                compiled=compiled,
                state_addr=state_addr,
                admit_tsc=admit_tsc,
                morsel_size=self.config.morsel_size,
            )
            self.inflight[execution.query_id] = execution

    def _dispatch(self, execution: QueryExecution, unit: Unit) -> None:
        worker = min(self.workers, key=lambda w: (w.state.cycles, w.index))
        # lazy per-query barrier: wait (in simulated time) for the
        # query's previous phase before starting this unit
        worker.state.cycles = max(worker.state.cycles, execution.ready_tsc)
        if (
            execution.deadline_tsc is not None
            and worker.state.cycles > execution.deadline_tsc
        ):
            execution.fail(ServiceError(
                TIMEOUT,
                f"query {execution.request.ticket} exceeded "
                f"{execution.request.timeout_cycles} cycles before {unit!r}",
            ))
            self._finalize(execution)
            return

        machine = execution.machines.get(worker.index)
        if machine is None:
            pmu = (
                self._profiler_config.pmu_config()
                if self._profiler_config is not None
                else None
            )
            machine = Machine(
                execution.compiled.program,
                self.db.memory,
                pmu_config=pmu,
                kernel=execution.compiled.kernel,
                fast_vm=self.config.fast_vm,
                tiering=self.tiering,
            )
            execution.machines[worker.index] = machine
        elif self.tiering is not None:
            # unit dispatch = morsel boundary: the commit point where an
            # in-flight query picks up a promotion that landed since its
            # machine last ran (never mid-block)
            self.tiering.apply(machine)
        worker.bind(machine)
        if self._profiler_config is not None:
            # install the query-id half of the tag pair; compiled code
            # only ever rewrites the task half (qualify_tags)
            machine.set_query_tag(execution.query_id)

        state = worker.state
        start_cycles = state.cycles
        start_instructions = state.instructions
        start_loads = state.loads
        start_stores = state.stores
        sample_start = len(worker.samples.samples)
        output_start = len(machine.output)
        saved_budget = state.max_instructions
        if execution.budget_left is not None:
            state.max_instructions = state.instructions + execution.budget_left
        entry, args = execution.unit_entry(unit)
        error: ServiceError | None = None
        try:
            machine.call(entry, args)
        except VMError as exc:
            if "instruction budget" in str(exc):
                error = ServiceError(
                    INSTRUCTION_LIMIT,
                    f"query {execution.request.ticket} exceeded its "
                    f"instruction budget",
                )
            else:
                error = ServiceError(EXEC_ERROR, str(exc))
            # the aborted call leaves a dangling frame on this machine's
            # private call stack; the machine is never reused after fail
            machine.call_stack.clear()
        finally:
            state.max_instructions = saved_budget
        worker.units_run += 1

        used = state.instructions - start_instructions
        if self.tiering is not None and machine.tier >= 1:
            if self.tiering.observe(machine, used):
                self.db.plan_cache.supersede_compiled(
                    execution.compiled, tier=2
                )
        execution.instructions += used
        execution.loads += state.loads - start_loads
        execution.stores += state.stores - start_stores
        execution.busy_cycles += state.cycles - start_cycles
        if execution.budget_left is not None:
            execution.budget_left = max(0, execution.budget_left - used)
        new_samples = worker.samples.samples[sample_start:]
        for sample in new_samples:
            execution.samples.append((worker.index, sample))
        if self.profiler is not None and new_samples:
            self.profiler.observe_unit(execution, new_samples)

        if error is not None:
            execution.fail(error)
            self._finalize(execution)
            return
        if unit.kind == MORSEL:
            execution.raw_morsels.append(
                (unit.pipeline, unit.morsel, machine.output[output_start:])
            )
        end_tsc = state.cycles
        if (
            execution.deadline_tsc is not None
            and end_tsc > execution.deadline_tsc
        ):
            execution.fail(ServiceError(
                TIMEOUT,
                f"query {execution.request.ticket} exceeded "
                f"{execution.request.timeout_cycles} cycles",
            ))
            self._finalize(execution)
            return
        execution.unit_finished(unit, end_tsc, self.db)
        if execution.status == DONE:
            self._finalize(execution)

    def _finalize(self, execution: QueryExecution) -> None:
        request = execution.request
        status = {
            DONE: "ok", FAILED: "failed", EXEC_CANCELLED: "cancelled",
        }[execution.status]
        result = ServiceResult(
            ticket=request.ticket,
            query_id=execution.query_id,
            session=request.session,
            sql=request.sql,
            status=status,
            columns=[
                name for name, _ in execution.compiled.physical.columns
            ],
            rows=execution.rows,
            error=execution.error,
            instructions=execution.instructions,
            loads=execution.loads,
            stores=execution.stores,
            task_counts=dict(execution.task_counts),
            latency_cycles=execution.latency_cycles,
            busy_cycles=execution.busy_cycles,
            samples=len(execution.samples),
            tier=max(
                (m.tier for m in execution.machines.values()), default=0
            ),
        )
        self.results[request.ticket] = result
        self._order.append(result)
        self.inflight.pop(execution.query_id, None)
        if status == "ok":
            self.completed += 1
            if self.profiler is not None:
                self.profiler.complete_query(execution)
        elif status == "cancelled":
            self.cancelled += 1
        else:
            self.failed += 1

    def _record_failed_request(
        self, request: QueryRequest, error: ServiceError
    ) -> None:
        result = ServiceResult(
            ticket=request.ticket,
            query_id=0,
            session=request.session,
            sql=request.sql,
            status="failed",
            error=error,
        )
        self.results[request.ticket] = result
        self._order.append(result)
        self.failed += 1

    def _record_cancelled(self, request: QueryRequest | None) -> None:
        if request is None:
            return
        result = ServiceResult(
            ticket=request.ticket,
            query_id=0,
            session=request.session,
            sql=request.sql,
            status="cancelled",
            error=ServiceError(
                CANCELLED, f"query {request.ticket} cancelled while queued"
            ),
        )
        self.results[request.ticket] = result
        self._order.append(result)
        self.cancelled += 1

    def _quiesce(self) -> None:
        """Tear down the execution epoch once fully drained.

        Worker machines hold stacks inside epoch memory, so they are
        dropped (the PMU cursor survives in the worker); plans compiled
        mid-epoch are evicted — their compile-time allocations die with
        the epoch — while warmed plans persist."""
        if self._epoch_mark is None:
            return
        if self.inflight or not self.admission.empty():
            return
        for worker in self.workers:
            worker.unbind()
        self.db.plan_cache.evict_since(self._cache_watermark)
        self.db.memory.release(self._epoch_mark)
        self._epoch_mark = None
