"""Client sessions: named submission contexts with seeded determinism.

A session is how a client talks to the service: it names the tenant in
results and workload reports, owns a deterministic RNG (the synthetic
workload generator draws from it, so a client's query sequence depends
only on the session seed), and remembers its tickets.  Closing a session
sheds its queued work and refuses further submissions.
"""

from __future__ import annotations

import random
import zlib

from repro.serve.errors import SESSION_CLOSED, ServiceError


class Session:
    """One client's submission context."""

    def __init__(self, manager: "SessionManager", name: str, seed: int):
        self._manager = manager
        self.name = name
        self.seed = seed
        self.rng = random.Random(seed)
        self.tickets: list[int] = []
        self.closed = False

    def submit(self, sql: str, **kwargs) -> int:
        """Submit a query under this session; returns the ticket."""
        if self.closed:
            raise ServiceError(
                SESSION_CLOSED, f"session {self.name!r} is closed"
            )
        ticket = self._manager.service.submit(sql, session=self, **kwargs)
        return ticket

    def close(self) -> None:
        """Close the session: cancel queued work, refuse new submissions."""
        if self.closed:
            return
        self.closed = True
        for ticket in self.tickets:
            self._manager.service.cancel(ticket)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<Session {self.name} seed={self.seed} {state}>"


class SessionManager:
    """The service's session registry.

    Session seeds derive deterministically from the service seed and the
    session name (CRC32, not ``hash()`` — the latter is salted per
    process), so two service runs with the same seed hand every client
    the same RNG stream.
    """

    def __init__(self, service, seed: int = 0):
        self.service = service
        self.seed = seed
        self.sessions: dict[str, Session] = {}

    def open(self, name: str, seed: int | None = None) -> Session:
        existing = self.sessions.get(name)
        if existing is not None and not existing.closed:
            return existing
        if seed is None:
            seed = zlib.crc32(f"{self.seed}:{name}".encode())
        session = Session(self, name, seed)
        self.sessions[name] = session
        return session

    def close(self, name: str) -> None:
        session = self.sessions.get(name)
        if session is not None:
            session.close()

    def __len__(self) -> int:
        return sum(1 for s in self.sessions.values() if not s.closed)
