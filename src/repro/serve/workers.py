"""Shared VM workers: one simulated core serving many in-flight queries.

A :class:`Worker` owns the structures that belong to the *core* rather
than to any single query: the cycle clock and counters
(:class:`~repro.vm.machine.MachineState`), the cache hierarchy, the branch
predictor, and the PEBS sample buffer.  Each in-flight query gets its own
:class:`~repro.vm.machine.Machine` per worker (registers, stack, output
rows — the *context*), and ``bind`` splices the worker's shared core state
into whichever machine runs next.

The PMU cursor (sample countdown, jitter LCG, external-IP rotor) lives in
the machine, so ``bind`` transfers it across the context switch — the PMU
stays armed *across queries*: the event countdown never resets at a query
boundary, which is what makes the service's profiling continuous rather
than per-query.
"""

from __future__ import annotations

from repro.vm.branch import BranchPredictor
from repro.vm.cache import CacheHierarchy
from repro.vm.machine import Machine, MachineState
from repro.vm.pmu import SampleBuffer


class Worker:
    """One simulated core shared by every in-flight query."""

    def __init__(self, index: int):
        self.index = index
        self.state = MachineState()
        self.caches = CacheHierarchy()
        self.predictor = BranchPredictor()
        self.samples = SampleBuffer()
        self.current: Machine | None = None
        # the armed PMU state carried between per-query machines; None
        # until the first context switch (the first machine keeps its own
        # freshly-armed countdown)
        self._cursor: tuple[int, int, int] | None = None
        self.units_run = 0
        self.context_switches = 0

    def bind(self, machine: Machine) -> None:
        """Make ``machine`` the worker's running context.

        Splices the shared core state into the machine and hands over the
        live PMU cursor from the previously bound context."""
        if machine is self.current:
            return
        if self.current is not None:
            self._cursor = self.current.pmu_cursor()
            self.context_switches += 1
        machine.state = self.state
        machine.caches = self.caches
        machine.predictor = self.predictor
        machine.samples = self.samples
        if self._cursor is not None:
            machine.restore_pmu_cursor(self._cursor)
        self.current = machine

    def unbind(self) -> None:
        """Detach the current context, keeping the PMU cursor armed.

        Called when an execution epoch ends and its machines (whose
        stacks live in epoch memory) are dropped — the cursor survives so
        the next epoch's first sample continues the same event stream."""
        if self.current is not None:
            self._cursor = self.current.pmu_cursor()
            self.current = None

    def __repr__(self) -> str:
        return (
            f"<Worker {self.index} cycles={self.state.cycles} "
            f"units={self.units_run}>"
        )
