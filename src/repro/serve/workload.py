"""Workload input for the service: JSONL files and a synthetic generator.

A workload is a list of items ``{"sql": ..., "client": ..., "priority":
...}``.  The synthetic generator draws from a small pool of templates over
the example schema using each client session's seeded RNG, so the same
service seed always produces the same per-client query sequence — the
deterministic replay the interleaving tests and the benchmark rely on.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.serve.errors import QUEUE_FULL, ServiceError

# templates over the example schema (Figure 3 tables); {} slots are
# filled from the session RNG
SYNTHETIC_TEMPLATES = [
    "SELECT category, SUM(price) FROM sales, products "
    "WHERE sales.id = products.id GROUP BY category ORDER BY category",
    "SELECT category, COUNT(*), AVG(price * vat_factor) "
    "FROM sales, products WHERE sales.id = products.id "
    "GROUP BY category ORDER BY category",
    "SELECT SUM(price - prod_costs) FROM sales WHERE price > {price}",
    "SELECT COUNT(*) FROM sales WHERE vat_factor > 1.1 "
    "AND price < {price}",
    "SELECT id, price FROM sales WHERE price > {hi_price} "
    "ORDER BY price DESC",
]


@dataclass(frozen=True)
class WorkloadItem:
    sql: str
    client: str = "default"
    priority: int = 0


@dataclass
class WorkloadSummary:
    """What ``run_workload`` reports back."""

    results: list = field(default_factory=list)
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0

    @property
    def clean(self) -> bool:
        return self.failed == 0 and self.shed == 0


def load_workload(path) -> list[WorkloadItem]:
    """Read a JSONL workload file (one ``{"sql": ...}`` object per line)."""
    items = []
    for line_no, line in enumerate(
        pathlib.Path(path).read_text().splitlines(), 1
    ):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}:{line_no}: invalid JSON: {exc}") from exc
        if "sql" not in doc:
            raise ReproError(f"{path}:{line_no}: missing 'sql' field")
        items.append(WorkloadItem(
            sql=doc["sql"],
            client=str(doc.get("client", "default")),
            priority=int(doc.get("priority", 0)),
        ))
    return items


def synthetic_workload(
    service, queries: int = 40, clients: int = 4
) -> list[WorkloadItem]:
    """Generate a deterministic multi-client workload from the templates.

    Each client's sequence is drawn from its *session* RNG (seeded from
    the service seed and the client name), so workloads replay exactly."""
    names = [f"client-{i}" for i in range(clients)]
    sessions = {name: service.session(name) for name in names}
    items = []
    for index in range(queries):
        name = names[index % clients]
        rng = sessions[name].rng
        template = rng.choice(SYNTHETIC_TEMPLATES)
        sql = template.format(
            price=round(rng.uniform(50.0, 450.0), 2),
            hi_price=round(rng.uniform(400.0, 490.0), 2),
        )
        items.append(WorkloadItem(
            sql=sql, client=name, priority=rng.choice([0, 0, 0, 1]),
        ))
    return items


def run_workload(service, items, warm: bool = True) -> WorkloadSummary:
    """Submit a workload with backpressure and drain it to completion.

    When the admission queue sheds a submission, the runner drains the
    service once (emptying the queue) and retries; a second shed counts
    the item as lost.  ``warm=True`` pre-compiles the distinct templates
    outside any epoch so plans survive across drains."""
    summary = WorkloadSummary()
    if warm:
        for sql in dict.fromkeys(item.sql for item in items):
            try:
                service.warm([sql])
            except ReproError:
                pass  # surfaces as a COMPILE_ERROR result at execution time
    for item in items:
        session = service.session(item.client)
        try:
            session.submit(item.sql, priority=item.priority)
        except ServiceError as exc:
            if exc.code != QUEUE_FULL:
                raise
            summary.results.extend(service.drain())
            try:
                session.submit(item.sql, priority=item.priority)
            except ServiceError as retry_exc:
                if retry_exc.code != QUEUE_FULL:
                    raise
                summary.shed += 1
                continue
        summary.submitted += 1
    summary.results.extend(service.drain())
    summary.completed = sum(1 for r in summary.results if r.ok)
    summary.failed = sum(1 for r in summary.results if r.status == "failed")
    return summary
