"""SQL frontend: lexer, parser, and binder for the engine's SQL subset.

The subset covers what the adapted TPC-H suite needs (see DESIGN.md §4):
SELECT with aggregates and arithmetic, multi-table FROM with WHERE
conjunctions, BETWEEN / IN / (NOT) LIKE / CASE, GROUP BY, ORDER BY, LIMIT.
"""

from repro.sql.lexer import Token, TokenKind, tokenize
from repro.sql.parser import parse
from repro.sql.binder import Binder, BoundQuery
from repro.sql.unparse import unparse, unparse_expression

__all__ = [
    "Binder",
    "BoundQuery",
    "Token",
    "TokenKind",
    "parse",
    "tokenize",
    "unparse",
    "unparse_expression",
]
