"""Abstract syntax tree for the SQL subset (unbound, name-based)."""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    """Base class for AST nodes."""


@dataclass(frozen=True)
class Identifier(Node):
    """`column` or `alias.column`."""

    qualifier: str | None
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class NumberLit(Node):
    value: int | float


@dataclass(frozen=True)
class StringLit(Node):
    value: str


@dataclass(frozen=True)
class DateLit(Node):
    value: str  # ISO text; encoded at bind time


@dataclass(frozen=True)
class Star(Node):
    """`*`, only valid inside count(*)."""


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str  # "-" | "not"
    operand: Node


@dataclass(frozen=True)
class BinaryOp(Node):
    """Arithmetic, comparison, AND/OR — disambiguated at bind time."""

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class FuncCall(Node):
    name: str
    args: tuple[Node, ...]


@dataclass(frozen=True)
class Between(Node):
    operand: Node
    low: Node
    high: Node
    negated: bool = False


@dataclass(frozen=True)
class InList(Node):
    operand: Node
    values: tuple[Node, ...]
    negated: bool = False


@dataclass(frozen=True)
class Like(Node):
    operand: Node
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class Case(Node):
    whens: tuple[tuple[Node, Node], ...]
    default: Node | None


@dataclass(frozen=True)
class ScalarSubquery(Node):
    """`(select ...)` used as a scalar value; the engine evaluates the

    subquery first and inlines its single value as a literal."""

    subquery: "SelectStmt"

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        return self is other


@dataclass(frozen=True)
class Exists(Node):
    """`[NOT] EXISTS (subquery)` — unnested into a semi/anti join."""

    subquery: "SelectStmt"
    negated: bool = False

    def __hash__(self):  # SelectStmt is mutable; identity is fine here
        return id(self)

    def __eq__(self, other):
        return self is other


@dataclass(frozen=True)
class InSubquery(Node):
    """`expr [NOT] IN (subquery)` — unnested into a semi/anti join."""

    operand: Node
    subquery: "SelectStmt"
    negated: bool = False

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        return self is other


@dataclass(frozen=True)
class SelectItem(Node):
    expr: Node
    alias: str | None


@dataclass(frozen=True)
class TableRef(Node):
    table: str
    alias: str
    subquery: "SelectStmt | None" = None


@dataclass(frozen=True)
class OrderItem(Node):
    expr: Node
    ascending: bool


def _rewrite_ast_children(node: Node, rewrite) -> Node:
    """Rebuild ``node`` with ``rewrite`` applied to each child expression."""
    import dataclasses

    if isinstance(node, UnaryOp):
        return UnaryOp(node.op, rewrite(node.operand))
    if isinstance(node, BinaryOp):
        return BinaryOp(node.op, rewrite(node.left), rewrite(node.right))
    if isinstance(node, FuncCall):
        return FuncCall(node.name, tuple(rewrite(a) for a in node.args))
    if isinstance(node, Between):
        return Between(rewrite(node.operand), rewrite(node.low),
                       rewrite(node.high), node.negated)
    if isinstance(node, InList):
        return InList(rewrite(node.operand),
                      tuple(rewrite(v) for v in node.values), node.negated)
    if isinstance(node, Like):
        return Like(rewrite(node.operand), node.pattern, node.negated)
    if isinstance(node, Case):
        return Case(
            tuple((rewrite(c), rewrite(v)) for c, v in node.whens),
            rewrite(node.default) if node.default is not None else None,
        )
    _ = dataclasses
    return node


@dataclass
class SelectStmt(Node):
    distinct: bool = False
    items: list[SelectItem] = field(default_factory=list)
    tables: list[TableRef] = field(default_factory=list)
    where: Node | None = None
    group_by: list[Node] = field(default_factory=list)
    having: Node | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
