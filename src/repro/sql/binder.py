"""The binder: names to IUs, AST to bound expressions, query to plan.

Binding produces the dataflow graph (logical plan): scans with pushed-down
filters, a join tree ordered by the optimizer (or a hint), aggregation,
mapping, sort/limit, output.  Compile-time encoding decisions live here too:
string literals become dictionary ids, LIKE patterns become id sets, DECIMAL
coercions are inserted so integer-cents arithmetic is explicit in the plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog import Catalog
from repro.catalog.schema import DataType, encode_date
from repro.errors import SqlError
from repro.plan.cardinality import CardinalityModel
from repro.plan.expr import (
    IU,
    AggCall,
    BinaryExpr,
    CaseExpr,
    CompareExpr,
    ConstExpr,
    Expr,
    FuncExpr,
    IURef,
    InSetExpr,
    LogicalExpr,
    NotExpr,
    conjunction,
    conjuncts,
)
from repro.plan.logical import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalLimit,
    LogicalMap,
    LogicalOperator,
    LogicalOutput,
    LogicalScan,
    LogicalSemiJoin,
    LogicalSort,
)
from repro.plan.optimizer import JoinEdge, QueryGraph, Residual, optimize_join_order
from repro.sql import ast

_AGG_FUNCS = {"sum", "avg", "min", "max", "count"}

TRUE = ConstExpr(1, DataType.BOOL)
FALSE = ConstExpr(0, DataType.BOOL)


def _guarded_avg(total: Expr, count: Expr) -> Expr:
    """``sum/count`` with a count-0 guard: empty input yields 0, not a fault.

    Compiled CASE evaluates both arms eagerly, so the guard must also make
    the *division itself* safe: the divisor is clamped to 1 when the count
    is zero, and the outer CASE discards that arm's value."""
    nonzero = CompareExpr("<>", count, ConstExpr(0, DataType.INT))
    safe_count = CaseExpr(((nonzero, count),), ConstExpr(1, DataType.INT))
    return CaseExpr(
        ((nonzero, BinaryExpr("/", total, safe_count)),),
        ConstExpr(0.0, DataType.FLOAT),
    )


@dataclass(frozen=True)
class AbsentString:
    """Sentinel for a string literal not present in the dictionary.

    Carries the literal's *rank* (insertion point in the sorted dictionary)
    so range comparisons still compile to integer comparisons; equality with
    an absent string is constant-false.
    """

    rank: int


class _Relation:
    """Uniform name-resolution interface over one FROM entry.

    Either a base-table scan (columns materialize lazily as IUs) or a
    derived table — a bound subquery whose output columns are fixed IUs.
    """

    def __init__(self, alias: str, plan: LogicalOperator,
                 scan: LogicalScan | None = None,
                 columns: dict[str, IU] | None = None):
        self.alias = alias
        self.plan = plan
        self._scan = scan
        self._columns = columns
        self._all_ius = (
            None if scan is not None else set(plan.output_ius())
        )

    @classmethod
    def for_table(cls, scan: LogicalScan) -> "_Relation":
        return cls(scan.alias, scan, scan=scan)

    @classmethod
    def for_subquery(cls, alias: str, root: LogicalOutput) -> "_Relation":
        columns = dict(root.columns)
        return cls(alias, root.child, columns=columns)

    def has_column(self, name: str) -> bool:
        if self._scan is not None:
            return self._scan.table.schema.has_column(name)
        return name in self._columns

    def iu_for(self, name: str) -> IU:
        if self._scan is not None:
            return self._scan.iu_for(name)
        return self._columns[name]

    def contains(self, iu: IU) -> bool:
        if self._scan is not None:
            return iu in self._scan.column_ius.values()
        return iu in self._all_ius or iu in self._columns.values()


@dataclass
class BoundQuery:
    """The binder's result: the plan plus the graph it was built from."""

    plan: LogicalOutput
    graph: QueryGraph
    model: CardinalityModel


class Binder:
    """Binds one SELECT statement against a finalized catalog."""

    def __init__(self, catalog: Catalog):
        if not catalog.finalized:
            raise SqlError("catalog must be finalized before binding queries")
        self.catalog = catalog
        self.dictionary = catalog.dictionary

    def bind(
        self,
        stmt: ast.SelectStmt,
        join_order_hint: list[str] | None = None,
        model: CardinalityModel | None = None,
    ) -> BoundQuery:
        """Bind a statement; ``model`` overrides the cardinality model
        (profile-guided feedback injects observed cardinalities here)."""
        relations: list[_Relation] = []
        alias_index: dict[str, int] = {}
        for ref in stmt.tables:
            if ref.alias in alias_index:
                raise SqlError(f"duplicate table alias {ref.alias!r}")
            alias_index[ref.alias] = len(relations)
            if ref.subquery is not None:
                # derived table: bind the subquery in its own scope
                inner = Binder(self.catalog).bind(ref.subquery)
                relations.append(_Relation.for_subquery(ref.alias, inner.plan))
            else:
                scan = LogicalScan(self.catalog.table(ref.table), ref.alias)
                relations.append(_Relation.for_table(scan))
        self._scans = relations
        self._alias_index = alias_index
        self._inner_start = 0  # scope boundary for subquery resolution

        scalar_where, subquery_preds = _split_subquery_predicates(stmt.where)
        graph = self._build_graph(stmt, relations, scalar_where)
        model = model or CardinalityModel()
        joined = optimize_join_order(graph, model, join_order_hint)
        for predicate in subquery_preds:
            joined = self._unnest_subquery(predicate, joined, model)

        has_aggs = any(
            self._contains_agg(item.expr) for item in stmt.items
        ) or any(self._contains_agg(o.expr) for o in stmt.order_by)

        if stmt.having is not None and not (stmt.group_by or has_aggs):
            raise SqlError("HAVING requires GROUP BY or aggregates")

        if stmt.distinct:
            # SELECT DISTINCT is a group-by over the whole select list
            if has_aggs:
                raise SqlError("SELECT DISTINCT with aggregates is not supported")
            if stmt.group_by:
                raise SqlError("SELECT DISTINCT with GROUP BY is redundant")
            stmt.group_by = [item.expr for item in stmt.items]

        if stmt.group_by or has_aggs:
            plan, output_scope = self._bind_aggregation(stmt, joined)
            if stmt.having is not None:
                condition = self._bind_in_scope(stmt.having, output_scope)
                if condition.dtype is not DataType.BOOL:
                    raise SqlError("HAVING condition is not boolean")
                plan = LogicalFilter(plan, condition)
        else:
            plan, output_scope = joined, None

        plan, columns, order_keys = self._bind_outputs(stmt, plan, output_scope)
        if order_keys:
            plan = LogicalSort(plan, order_keys)
        if stmt.limit is not None:
            plan = LogicalLimit(plan, stmt.limit)
        root = LogicalOutput(plan, columns)
        return BoundQuery(root, graph, model)

    # ------------------------------------------------------------------
    # query graph construction (WHERE decomposition + pushdown)

    def _build_graph(
        self,
        stmt: ast.SelectStmt,
        from_relations: list[_Relation],
        where: ast.Node | None,
    ) -> QueryGraph:
        edges: list[JoinEdge] = []
        residuals: list[Residual] = []
        pushed: dict[int, list[Expr]] = {
            i: [] for i in range(len(from_relations))
        }

        if where is not None:
            condition = self.bind_scalar(where)
            if condition.dtype is not DataType.BOOL:
                raise SqlError("WHERE condition is not boolean")
            for conjunct in conjuncts(condition):
                rels = self._relations_of(conjunct)
                edge = self._as_join_edge(conjunct)
                if edge is not None:
                    edges.append(edge)
                elif len(rels) == 1:
                    pushed[next(iter(rels))].append(conjunct)
                elif len(rels) == 0:
                    # constant predicate: attach to the first relation
                    pushed[0].append(conjunct)
                else:
                    residuals.append(Residual(frozenset(rels), conjunct))

        relations: list[LogicalOperator] = []
        for i, relation in enumerate(from_relations):
            plan: LogicalOperator = relation.plan
            if pushed[i]:
                plan = LogicalFilter(plan, conjunction(pushed[i]))
            relations.append(plan)
        return QueryGraph(
            relations=relations,
            aliases=[r.alias for r in from_relations],
            edges=edges,
            residuals=residuals,
        )

    def _relations_of(self, expr: Expr) -> set[int]:
        rels: set[int] = set()
        for iu in expr.ius():
            for i, relation in enumerate(self._scans):
                if relation.contains(iu):
                    rels.add(i)
        return rels

    def _as_join_edge(self, expr: Expr) -> JoinEdge | None:
        if not isinstance(expr, CompareExpr) or expr.op != "=":
            return None
        left_rels = self._relations_of(expr.left)
        right_rels = self._relations_of(expr.right)
        if len(left_rels) != 1 or len(right_rels) != 1 or left_rels == right_rels:
            return None
        return JoinEdge(
            next(iter(left_rels)), next(iter(right_rels)), expr.left, expr.right
        )

    # ------------------------------------------------------------------
    # aggregation

    def _contains_agg(self, node: ast.Node) -> bool:
        if isinstance(node, ast.FuncCall) and node.name in _AGG_FUNCS:
            return True
        for child in _ast_children(node):
            if self._contains_agg(child):
                return True
        return False

    def _bind_aggregation(self, stmt, joined):
        """Build the GroupBy and the post-aggregation scope."""
        key_entries: list[tuple[ast.Node, IU, Expr]] = []
        for node in stmt.group_by:
            bound = self.bind_scalar(node)
            name = str(node) if not isinstance(node, ast.Identifier) else node.name
            key_entries.append((node, IU(name, bound.dtype), bound))

        agg_entries: list[tuple[ast.Node, Expr]] = []  # (ast agg call, output expr)
        aggregates: list[AggCall] = []

        def intern_agg(kind: str, arg: Expr | None, label: str) -> IURef:
            for existing in aggregates:
                if existing.kind == kind and existing.arg == arg:
                    return IURef(existing.output)
            if kind == "count":
                dtype = DataType.INT
            else:
                dtype = arg.dtype
            call = AggCall(kind, arg, IU(label, dtype))
            aggregates.append(call)
            return IURef(call.output)

        def bind_agg_call(node: ast.FuncCall) -> Expr:
            name = node.name
            if len(node.args) != 1:
                raise SqlError(f"{name} takes exactly one argument")
            arg_node = node.args[0]
            if name == "count":
                if isinstance(arg_node, ast.Star):
                    return intern_agg("count", None, "count_star")
                arg = self.bind_scalar(arg_node)
                return intern_agg("count", arg, f"count_{len(aggregates)}")
            arg = self.bind_scalar(arg_node)
            if name == "avg":
                # division normalizes DECIMAL operands to natural units, so
                # sum(cents)/count is already the natural-unit average
                total = intern_agg("sum", arg, f"sum_{len(aggregates)}")
                count = intern_agg("count", arg, f"count_{len(aggregates)}")
                if stmt.group_by:
                    # every group that exists holds >= 1 tuple; only the
                    # ungrouped case can divide by a zero count
                    return BinaryExpr("/", total, count)
                return _guarded_avg(total, count)
            if name in ("sum", "min", "max"):
                return intern_agg(name, arg, f"{name}_{len(aggregates)}")
            raise SqlError(f"unknown aggregate {name!r}")

        for item in stmt.items:
            for call in _find_agg_calls(item.expr):
                if not any(call == seen for seen, _ in agg_entries):
                    agg_entries.append((call, bind_agg_call(call)))
        for order in stmt.order_by:
            for call in _find_agg_calls(order.expr):
                if not any(call == seen for seen, _ in agg_entries):
                    agg_entries.append((call, bind_agg_call(call)))
        if stmt.having is not None:
            for call in _find_agg_calls(stmt.having):
                if not any(call == seen for seen, _ in agg_entries):
                    agg_entries.append((call, bind_agg_call(call)))

        groupby = LogicalGroupBy(
            joined,
            [(iu, expr) for _, iu, expr in key_entries],
            aggregates,
        )
        scope = _PostAggScope(
            keys=[(node, IURef(iu)) for node, iu, _ in key_entries],
            aggs=agg_entries,
        )
        return groupby, scope

    # ------------------------------------------------------------------
    # outputs, order by

    def _bind_outputs(self, stmt, plan, scope):
        computed: list[tuple[IU, Expr]] = []
        columns: list[tuple[str, IU]] = []
        alias_to_iu: dict[str, IU] = {}

        def as_iu(expr: Expr, name: str) -> IU:
            if isinstance(expr, IURef):
                return expr.iu
            iu = IU(name, expr.dtype)
            computed.append((iu, expr))
            return iu

        for i, item in enumerate(stmt.items):
            bound = self._bind_in_scope(item.expr, scope)
            name = item.alias or _default_name(item.expr, i)
            iu = as_iu(bound, name)
            columns.append((name, iu))
            if item.alias:
                alias_to_iu[item.alias] = iu

        order_keys: list[tuple[Expr, bool]] = []
        for order in stmt.order_by:
            node = order.expr
            if isinstance(node, ast.Identifier) and node.qualifier is None \
                    and node.name in alias_to_iu:
                key: Expr = IURef(alias_to_iu[node.name])
            else:
                bound = self._bind_in_scope(node, scope)
                # sort keys must be materializable: force them into IUs
                key = IURef(as_iu(bound, f"sortkey_{len(order_keys)}"))
            order_keys.append((key, order.ascending))

        if computed:
            plan = LogicalMap(plan, computed)
        return plan, columns, order_keys

    def _bind_in_scope(self, node: ast.Node, scope) -> Expr:
        if scope is None:
            return self.bind_scalar(node)
        # post-aggregation scope: group keys and aggregate results only
        for key_node, ref in scope.keys:
            if node == key_node:
                return ref
        for agg_node, expr in scope.aggs:
            if node == agg_node:
                return expr
        if isinstance(node, ast.Identifier):
            raise SqlError(f"column {node} is not in GROUP BY")
        if isinstance(node, (ast.NumberLit, ast.StringLit, ast.DateLit)):
            return self.bind_scalar(node)
        if isinstance(node, ast.BinaryOp):
            if node.op in ("and", "or"):
                left = self._bind_in_scope(node.left, scope)
                right = self._bind_in_scope(node.right, scope)
                for side in (left, right):
                    if side.dtype is not DataType.BOOL:
                        raise SqlError(f"{node.op.upper()} applied to non-boolean")
                return LogicalExpr(node.op, (left, right))
            if node.op in ("=", "<>", "<", "<=", ">", ">="):
                left = self._bind_in_scope(node.left, scope)
                right = self._bind_in_scope(node.right, scope)
                return self._coerced_compare(node.op, left, right)
            left = self._bind_in_scope(node.left, scope)
            right = self._bind_in_scope(node.right, scope)
            return self._combine_binary(node.op, left, right)
        if isinstance(node, ast.UnaryOp) and node.op == "not":
            operand = self._bind_in_scope(node.operand, scope)
            if operand.dtype is not DataType.BOOL:
                raise SqlError("NOT applied to non-boolean")
            return NotExpr(operand)
        if isinstance(node, ast.UnaryOp) and node.op == "-":
            operand = self._bind_in_scope(node.operand, scope)
            return BinaryExpr("-", ConstExpr(0, operand.dtype), operand)
        if isinstance(node, ast.FuncCall) and node.name not in _AGG_FUNCS:
            if len(node.args) != 1:
                raise SqlError(f"{node.name} takes one argument")
            return FuncExpr(node.name, self._bind_in_scope(node.args[0], scope))
        raise SqlError(f"cannot bind {type(node).__name__} after aggregation")

    # ------------------------------------------------------------------
    # subquery unnesting (EXISTS / NOT EXISTS / IN / NOT IN -> semi/anti join)

    def _unnest_subquery(
        self, predicate: ast.Node, outer_plan: LogicalOperator, model
    ) -> LogicalOperator:
        """Unnest one top-level subquery predicate into a semi/anti join.

        Supported: uncorrelated and equality-correlated EXISTS/IN subqueries
        (plus non-equality correlation conjuncts, which become the join's
        residual — TPC-H Q21's ``l2.l_suppkey <> l1.l_suppkey``).
        Subqueries may contain their own joins, filters, GROUP BY, and
        HAVING (Q18), but not ORDER BY / LIMIT / nested subqueries.
        """
        if isinstance(predicate, ast.Exists):
            stmt = predicate.subquery
            anti = predicate.negated
            in_operand = None
        elif isinstance(predicate, ast.InSubquery):
            stmt = predicate.subquery
            anti = predicate.negated
            in_operand = predicate.operand
        else:
            raise SqlError(f"unsupported subquery predicate {predicate!r}")
        if stmt.order_by or stmt.limit is not None:
            raise SqlError("ORDER BY / LIMIT are meaningless in EXISTS/IN subqueries")

        # the IN operand belongs to the *outer* scope: bind it before the
        # subquery's relations shadow anything
        outer_expr = self.bind_scalar(in_operand) if in_operand is not None else None

        outer_scans = self._scans
        outer_aliases = self._alias_index
        inner_scans: list[_Relation] = []
        inner_aliases: dict[str, int] = {}
        for ref in stmt.tables:
            if ref.subquery is not None:
                raise SqlError(
                    "derived tables inside EXISTS/IN subqueries are not supported"
                )
            if ref.alias in inner_aliases:
                raise SqlError(f"duplicate table alias {ref.alias!r} in subquery")
            inner_aliases[ref.alias] = len(inner_scans)
            inner_scans.append(_Relation.for_table(
                LogicalScan(self.catalog.table(ref.table), ref.alias)
            ))

        # combined resolution scope: inner scans shadow outer ones
        n_outer = len(outer_scans)
        self._scans = outer_scans + inner_scans
        self._alias_index = dict(outer_aliases)
        for alias, index in inner_aliases.items():
            self._alias_index[alias] = n_outer + index
        self._inner_start = n_outer
        try:
            return self._unnest_with_scope(
                stmt, anti, outer_expr, outer_plan, inner_scans, n_outer, model
            )
        finally:
            self._scans = outer_scans
            self._alias_index = outer_aliases
            self._inner_start = 0

    def _unnest_with_scope(
        self, stmt, anti, outer_expr, outer_plan, inner_scans, n_outer, model
    ) -> LogicalOperator:
        inner_edges: list[JoinEdge] = []
        inner_residuals: list[Residual] = []
        pushed: dict[int, list[Expr]] = {i: [] for i in range(len(inner_scans))}
        outer_keys: list[Expr] = []
        inner_keys: list[Expr] = []
        cross_residuals: list[Expr] = []

        scalar_where, nested = _split_subquery_predicates(stmt.where)
        if nested:
            raise SqlError("nested subqueries are not supported")
        if scalar_where is not None:
            condition = self.bind_scalar(scalar_where)
            if condition.dtype is not DataType.BOOL:
                raise SqlError("subquery WHERE condition is not boolean")
            for conjunct in conjuncts(condition):
                rels = self._relations_of(conjunct)
                inner_rels = {r - n_outer for r in rels if r >= n_outer}
                outer_rels = {r for r in rels if r < n_outer}
                if outer_rels and inner_rels:
                    # correlation: equality becomes a key pair, else residual
                    pair = self._correlation_key(conjunct, n_outer)
                    if pair is not None:
                        outer_keys.append(pair[0])
                        inner_keys.append(pair[1])
                    else:
                        cross_residuals.append(conjunct)
                elif inner_rels:
                    edge = self._as_join_edge(conjunct)
                    if edge is not None and edge.left_rel >= n_outer \
                            and edge.right_rel >= n_outer:
                        inner_edges.append(JoinEdge(
                            edge.left_rel - n_outer, edge.right_rel - n_outer,
                            edge.left_expr, edge.right_expr,
                        ))
                    elif len(inner_rels) == 1:
                        pushed[next(iter(inner_rels))].append(conjunct)
                    else:
                        inner_residuals.append(
                            Residual(frozenset(inner_rels), conjunct)
                        )
                else:
                    # outer-only (or constant): evaluate per probe tuple
                    cross_residuals.append(conjunct)

        relations: list[LogicalOperator] = []
        for i, relation in enumerate(inner_scans):
            plan: LogicalOperator = relation.plan
            if pushed[i]:
                plan = LogicalFilter(plan, conjunction(pushed[i]))
            relations.append(plan)
        inner_graph = QueryGraph(
            relations=relations,
            aliases=[r.alias for r in inner_scans],
            edges=inner_edges,
            residuals=inner_residuals,
        )
        inner_plan = optimize_join_order(inner_graph, model)

        # IN: the subquery's single select item is the inner key
        if outer_expr is not None and len(stmt.items) != 1:
            raise SqlError("IN subqueries must select exactly one column")

        if stmt.group_by or any(self._contains_agg(i.expr) for i in stmt.items):
            inner_plan, scope = self._bind_aggregation(stmt, inner_plan)
            if stmt.having is not None:
                having = self._bind_in_scope(stmt.having, scope)
                if having.dtype is not DataType.BOOL:
                    raise SqlError("HAVING condition is not boolean")
                inner_plan = LogicalFilter(inner_plan, having)
            if outer_expr is not None:
                inner_keys.append(self._bind_in_scope(stmt.items[0].expr, scope))
                outer_keys.append(outer_expr)
        elif outer_expr is not None:
            inner_keys.append(self.bind_scalar(stmt.items[0].expr))
            outer_keys.append(outer_expr)
        elif stmt.having is not None:
            raise SqlError("HAVING requires GROUP BY or aggregates")

        if not outer_keys:
            raise SqlError(
                "EXISTS subqueries must be correlated by at least one equality"
            )
        return LogicalSemiJoin(
            outer_plan,
            inner_plan,
            outer_keys,
            inner_keys,
            anti=anti,
            residual=conjunction(cross_residuals),
        )

    def _correlation_key(self, conjunct: Expr, n_outer: int):
        """(outer_expr, inner_expr) when the conjunct is an equality with

        one pure-outer and one pure-inner side; otherwise None."""
        if not isinstance(conjunct, CompareExpr) or conjunct.op != "=":
            return None
        left_rels = self._relations_of(conjunct.left)
        right_rels = self._relations_of(conjunct.right)
        left_inner = any(r >= n_outer for r in left_rels)
        right_inner = any(r >= n_outer for r in right_rels)
        if left_inner == right_inner or not left_rels or not right_rels:
            return None
        if left_inner:
            return conjunct.right, conjunct.left
        return conjunct.left, conjunct.right

    # ------------------------------------------------------------------
    # scalar binding in relation scope

    def resolve_column(self, node: ast.Identifier) -> IURef:
        if node.qualifier is not None:
            index = self._alias_index.get(node.qualifier)
            if index is None:
                raise SqlError(f"unknown table alias {node.qualifier!r}")
            relation = self._scans[index]
            if not relation.has_column(node.name):
                raise SqlError(f"no column {node.name!r} in {node.qualifier}")
            return IURef(relation.iu_for(node.name))
        # innermost scope first (the subquery's own relations), then outer
        boundary = getattr(self, "_inner_start", 0)
        for scope in (self._scans[boundary:], self._scans[:boundary]):
            matches = [r for r in scope if r.has_column(node.name)]
            if len(matches) > 1:
                raise SqlError(f"ambiguous column {node.name!r}")
            if matches:
                return IURef(matches[0].iu_for(node.name))
        raise SqlError(f"unknown column {node.name!r}")

    def bind_scalar(self, node: ast.Node) -> Expr:  # noqa: C901
        if isinstance(node, ast.Identifier):
            return self.resolve_column(node)
        if isinstance(node, ast.NumberLit):
            if isinstance(node.value, float):
                return ConstExpr(node.value, DataType.FLOAT)
            return ConstExpr(node.value, DataType.INT)
        if isinstance(node, ast.DateLit):
            return ConstExpr(encode_date(node.value), DataType.DATE)
        if isinstance(node, ast.StringLit):
            raise SqlError(
                f"string literal {node.value!r} outside a comparison context"
            )
        if isinstance(node, ast.UnaryOp):
            if node.op == "not":
                operand = self.bind_scalar(node.operand)
                if operand.dtype is not DataType.BOOL:
                    raise SqlError("NOT applied to non-boolean")
                return NotExpr(operand)
            operand = self.bind_scalar(node.operand)
            if isinstance(operand, ConstExpr):
                return ConstExpr(-operand.value, operand.dtype)
            return BinaryExpr("-", ConstExpr(0, operand.dtype), operand)
        if isinstance(node, ast.BinaryOp):
            if node.op in ("and", "or"):
                left = self.bind_scalar(node.left)
                right = self.bind_scalar(node.right)
                for side in (left, right):
                    if side.dtype is not DataType.BOOL:
                        raise SqlError(f"{node.op.upper()} applied to non-boolean")
                return LogicalExpr(node.op, (left, right))
            if node.op in ("=", "<>", "<", "<=", ">", ">="):
                return self._bind_comparison(node)
            left = self.bind_scalar(node.left)
            right = self.bind_scalar(node.right)
            return self._combine_binary(node.op, left, right)
        if isinstance(node, ast.Between):
            operand = self.bind_scalar(node.operand)
            low = self._bind_against(node.low, operand.dtype)
            high = self._bind_against(node.high, operand.dtype)
            low_cmp = self._coerced_compare(">=", operand, low)
            high_cmp = self._coerced_compare("<=", operand, high)
            both = LogicalExpr("and", (low_cmp, high_cmp))
            return NotExpr(both) if node.negated else both
        if isinstance(node, ast.InList):
            operand = self.bind_scalar(node.operand)
            values: set[int] = set()
            for value_node in node.values:
                bound = self._bind_against(value_node, operand.dtype)
                if not isinstance(bound, ConstExpr):
                    raise SqlError("IN lists must contain literals")
                if not isinstance(bound.value, AbsentString):
                    values.add(int(bound.value))
            membership: Expr = InSetExpr(operand, frozenset(values))
            if not values:
                membership = FALSE
            return NotExpr(membership) if node.negated else membership
        if isinstance(node, ast.Like):
            operand = self.bind_scalar(node.operand)
            if operand.dtype is not DataType.STRING:
                raise SqlError("LIKE applies to strings")
            ids = frozenset(self.dictionary.matching_ids(node.pattern))
            membership = InSetExpr(operand, ids) if ids else FALSE
            return NotExpr(membership) if node.negated else membership
        if isinstance(node, ast.Case):
            whens = []
            default: Expr | None = (
                self.bind_scalar(node.default) if node.default is not None else None
            )
            target_dtype = None
            for cond_node, value_node in node.whens:
                cond = self.bind_scalar(cond_node)
                if cond.dtype is not DataType.BOOL:
                    raise SqlError("CASE condition is not boolean")
                value = self.bind_scalar(value_node)
                if target_dtype is None:
                    target_dtype = value.dtype
                whens.append((cond, self._coerce(value, target_dtype)))
            if default is None:
                default = ConstExpr(0, target_dtype)
            else:
                default = self._coerce(default, target_dtype)
            return CaseExpr(tuple(whens), default)
        if isinstance(node, ast.ScalarSubquery):
            raise SqlError(
                "internal: scalar subquery should have been inlined by the "
                "engine (correlated scalar subqueries are not supported)"
            )
        if isinstance(node, (ast.Exists, ast.InSubquery)):
            raise SqlError(
                "subqueries are only supported as top-level WHERE conjuncts"
            )
        if isinstance(node, ast.FuncCall):
            if node.name in _AGG_FUNCS:
                raise SqlError(f"aggregate {node.name} in scalar context")
            if len(node.args) != 1:
                raise SqlError(f"{node.name} takes one argument")
            return FuncExpr(node.name, self.bind_scalar(node.args[0]))
        raise SqlError(f"cannot bind {type(node).__name__}")

    # -- coercion helpers ---------------------------------------------------

    def _bind_against(self, node: ast.Node, dtype: DataType) -> Expr:
        """Bind ``node`` knowing it will meet a value of type ``dtype``."""
        if isinstance(node, ast.StringLit):
            if dtype is not DataType.STRING:
                raise SqlError(f"string literal {node.value!r} vs {dtype.value}")
            found = self.dictionary.lookup(node.value)
            if found is None:
                return ConstExpr(
                    AbsentString(self.dictionary.rank(node.value)), DataType.STRING
                )
            return ConstExpr(found, DataType.STRING)
        bound = self.bind_scalar(node)
        try:
            return self._coerce(bound, dtype)
        except SqlError:
            # leave mixed numeric comparisons to _coerced_compare, which
            # knows how to normalize DECIMAL against non-constant FLOAT
            if bound.dtype.is_numeric and dtype.is_numeric:
                return bound
            raise

    def _coerce(self, expr: Expr, dtype: DataType) -> Expr:
        if expr.dtype is dtype:
            return expr
        if dtype is DataType.DECIMAL and expr.dtype is DataType.INT:
            if isinstance(expr, ConstExpr):
                return ConstExpr(expr.value * 100, DataType.DECIMAL)
            return FuncExpr("to_cents", expr)
        if dtype is DataType.DECIMAL and expr.dtype is DataType.FLOAT:
            if isinstance(expr, ConstExpr):
                return ConstExpr(round(expr.value * 100), DataType.DECIMAL)
        if dtype is DataType.FLOAT and expr.dtype is DataType.INT:
            if isinstance(expr, ConstExpr):
                return ConstExpr(float(expr.value), DataType.FLOAT)
            return FuncExpr("float", expr)
        if dtype is DataType.FLOAT and expr.dtype is DataType.DECIMAL:
            # natural-unit conversion: division normalizes cents to floats
            return BinaryExpr("/", expr, ConstExpr(1, DataType.INT))
        if dtype is DataType.INT and expr.dtype is DataType.FLOAT \
                and isinstance(expr, ConstExpr):
            return ConstExpr(expr.value, DataType.FLOAT)
        if {expr.dtype, dtype} <= {DataType.INT, DataType.DATE}:
            return expr  # dates are day numbers; int arithmetic is fine
        raise SqlError(f"cannot coerce {expr.dtype.value} to {dtype.value}")

    def _combine_binary(self, op: str, left: Expr, right: Expr) -> Expr:
        if op not in ("+", "-", "*", "/", "%"):
            raise SqlError(f"unexpected operator {op!r}")
        if op == "%":
            if right.dtype is not DataType.INT or left.dtype is DataType.FLOAT:
                raise SqlError("% needs an integer right operand and a "
                               "non-float left operand")
            return BinaryExpr(op, left, right)
        if op != "/":
            if left.dtype is DataType.DECIMAL and right.dtype is DataType.INT:
                right = self._coerce_for_arith(op, right)
            elif right.dtype is DataType.DECIMAL and left.dtype is DataType.INT:
                left = self._coerce_for_arith(op, left)
        return BinaryExpr(op, left, right)

    def _coerce_for_arith(self, op: str, expr: Expr) -> Expr:
        # DECIMAL * INT keeps the cents scale; DECIMAL ± INT needs cents
        if op == "*":
            return expr
        return self._coerce(expr, DataType.DECIMAL)

    def _bind_comparison(self, node: ast.BinaryOp) -> Expr:
        left = self.bind_scalar(node.left) if not isinstance(
            node.left, ast.StringLit
        ) else None
        if left is None:
            # string literal on the left: bind right first
            right = self.bind_scalar(node.right)
            left = self._bind_against(node.left, right.dtype)
        else:
            right = self._bind_against(node.right, left.dtype)
        return self._coerced_compare(node.op, left, right)

    def _coerced_compare(self, op: str, left: Expr, right: Expr) -> Expr:
        # normalize an absent-string sentinel onto the right-hand side
        if isinstance(left, ConstExpr) and isinstance(left.value, AbsentString):
            flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}
            left, right, op = right, left, flip.get(op, op)
        if isinstance(right, ConstExpr) and isinstance(right.value, AbsentString):
            rank = right.value.rank
            if op == "=":
                return FALSE
            if op == "<>":
                return TRUE
            # id(x) < rank  <=>  x < literal  (and <= since literal absent)
            if op in ("<", "<="):
                return CompareExpr("<", left, ConstExpr(rank, DataType.STRING))
            return CompareExpr(">=", left, ConstExpr(rank, DataType.STRING))
        lt, rt = left.dtype, right.dtype
        if lt is DataType.DECIMAL and rt is DataType.FLOAT \
                and not isinstance(right, ConstExpr):
            left = self._coerce(left, DataType.FLOAT)
        elif rt is DataType.DECIMAL and lt is DataType.FLOAT \
                and not isinstance(left, ConstExpr):
            right = self._coerce(right, DataType.FLOAT)
        elif lt is DataType.DECIMAL and rt in (DataType.INT, DataType.FLOAT):
            right = self._coerce(right, DataType.DECIMAL)
        elif rt is DataType.DECIMAL and lt in (DataType.INT, DataType.FLOAT):
            left = self._coerce(left, DataType.DECIMAL)
        elif lt is DataType.FLOAT and rt is DataType.INT:
            right = self._coerce(right, DataType.FLOAT)
        elif rt is DataType.FLOAT and lt is DataType.INT:
            left = self._coerce(left, DataType.FLOAT)
        return CompareExpr(op, left, right)


@dataclass
class _PostAggScope:
    keys: list[tuple[ast.Node, IURef]]
    aggs: list[tuple[ast.Node, Expr]]


def _split_subquery_predicates(
    where: ast.Node | None,
) -> tuple[ast.Node | None, list[ast.Node]]:
    """Separate top-level EXISTS/IN-subquery conjuncts from scalar ones."""
    if where is None:
        return None, []
    scalars: list[ast.Node] = []
    subqueries: list[ast.Node] = []

    def walk(node: ast.Node) -> None:
        if isinstance(node, ast.BinaryOp) and node.op == "and":
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (ast.Exists, ast.InSubquery)):
            subqueries.append(node)
        else:
            scalars.append(node)

    walk(where)
    remaining: ast.Node | None = None
    for scalar in scalars:
        remaining = scalar if remaining is None else ast.BinaryOp(
            "and", remaining, scalar
        )
    return remaining, subqueries


def _ast_children(node: ast.Node) -> list[ast.Node]:
    if isinstance(node, ast.UnaryOp):
        return [node.operand]
    if isinstance(node, ast.BinaryOp):
        return [node.left, node.right]
    if isinstance(node, ast.FuncCall):
        return list(node.args)
    if isinstance(node, ast.Between):
        return [node.operand, node.low, node.high]
    if isinstance(node, ast.InList):
        return [node.operand, *node.values]
    if isinstance(node, ast.Like):
        return [node.operand]
    if isinstance(node, ast.Case):
        out = []
        for cond, value in node.whens:
            out.extend((cond, value))
        if node.default is not None:
            out.append(node.default)
        return out
    return []


def _find_agg_calls(node: ast.Node) -> list[ast.FuncCall]:
    if isinstance(node, ast.FuncCall) and node.name in _AGG_FUNCS:
        return [node]
    out: list[ast.FuncCall] = []
    for child in _ast_children(node):
        out.extend(_find_agg_calls(child))
    return out


def _default_name(node: ast.Node, index: int) -> str:
    if isinstance(node, ast.Identifier):
        return node.name
    if isinstance(node, ast.FuncCall):
        return node.name
    return f"col{index}"
