"""SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "and", "or", "not", "in", "like", "between", "as",
    "case", "when", "then", "else", "end", "asc", "desc", "date", "exists",
    "distinct",
}


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: object
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"


def tokenize(sql: str) -> list[Token]:
    """Lex a statement; raises :class:`SqlError` with a position on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SqlError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            text = "".join(parts)
            tokens.append(Token(TokenKind.STRING, text, text, i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # '1.' followed by non-digit is number then punct
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            text = sql[i:j]
            value: object = float(text) if "." in text else int(text)
            tokens.append(Token(TokenKind.NUMBER, text, value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            text = sql[i:j]
            lowered = text.lower()
            kind = TokenKind.KEYWORD if lowered in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, lowered, lowered, i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                canonical = "<>" if op == "!=" else op
                tokens.append(Token(TokenKind.OPERATOR, canonical, canonical, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, ch, i))
            i += 1
            continue
        raise SqlError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenKind.EOF, "", None, n))
    return tokens
