"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.errors import SqlError
from repro.sql import ast
from repro.sql.lexer import Token, TokenKind, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlError(
                f"expected {word.upper()}, found {self.current.text!r}",
                self.current.position,
            )

    def accept_punct(self, ch: str) -> bool:
        if self.current.kind is TokenKind.PUNCT and self.current.text == ch:
            self.advance()
            return True
        return False

    def expect_punct(self, ch: str) -> None:
        if not self.accept_punct(ch):
            raise SqlError(
                f"expected {ch!r}, found {self.current.text!r}",
                self.current.position,
            )

    def expect_ident(self) -> str:
        token = self.current
        if token.kind is not TokenKind.IDENT:
            raise SqlError(
                f"expected identifier, found {token.text!r}", token.position
            )
        self.advance()
        return token.text

    # -- statement ------------------------------------------------------------

    def parse_statement(self) -> ast.SelectStmt:
        stmt = self.parse_select_body()
        self.accept_punct(";")
        if self.current.kind is not TokenKind.EOF:
            raise SqlError(
                f"trailing input {self.current.text!r}", self.current.position
            )
        return stmt

    def parse_select_body(self) -> ast.SelectStmt:
        self.expect_keyword("select")
        stmt = ast.SelectStmt()
        stmt.distinct = self.accept_keyword("distinct")
        stmt.items.append(self.parse_select_item())
        while self.accept_punct(","):
            stmt.items.append(self.parse_select_item())

        self.expect_keyword("from")
        stmt.tables.append(self.parse_table_ref())
        while self.accept_punct(","):
            stmt.tables.append(self.parse_table_ref())

        if self.accept_keyword("where"):
            stmt.where = self.parse_expr()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            stmt.group_by.append(self.parse_expr())
            while self.accept_punct(","):
                stmt.group_by.append(self.parse_expr())
        if self.accept_keyword("having"):
            stmt.having = self.parse_expr()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            stmt.order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                stmt.order_by.append(self.parse_order_item())
        if self.accept_keyword("limit"):
            token = self.current
            if token.kind is not TokenKind.NUMBER or not isinstance(token.value, int):
                raise SqlError("LIMIT expects an integer", token.position)
            self.advance()
            stmt.limit = token.value
        return stmt

    def parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind is TokenKind.IDENT:
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias)

    def parse_table_ref(self) -> ast.TableRef:
        if self.current.kind is TokenKind.PUNCT and self.current.text == "(" \
                and self.tokens[self.pos + 1].is_keyword("select"):
            subquery = self.parse_subquery()
            if self.accept_keyword("as"):
                alias = self.expect_ident()
            elif self.current.kind is TokenKind.IDENT:
                alias = self.expect_ident()
            else:
                raise SqlError(
                    "derived tables need an alias", self.current.position
                )
            return ast.TableRef("", alias, subquery=subquery)
        table = self.expect_ident()
        alias = table
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind is TokenKind.IDENT:
            alias = self.expect_ident()
        return ast.TableRef(table, alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expr, ascending)

    # -- expressions (precedence climbing) -------------------------------------

    def parse_expr(self) -> ast.Node:
        return self.parse_or()

    def parse_or(self) -> ast.Node:
        left = self.parse_and()
        while self.accept_keyword("or"):
            left = ast.BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Node:
        left = self.parse_not()
        while self.accept_keyword("and"):
            left = ast.BinaryOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Node:
        if self.current.is_keyword("not") and self.tokens[self.pos + 1].is_keyword("exists"):
            self.advance()
            self.advance()
            return ast.Exists(self.parse_subquery(), negated=True)
        if self.accept_keyword("not"):
            return ast.UnaryOp("not", self.parse_not())
        if self.accept_keyword("exists"):
            return ast.Exists(self.parse_subquery())
        return self.parse_predicate()

    def parse_subquery(self) -> ast.SelectStmt:
        self.expect_punct("(")
        inner = self.parse_select_body()
        self.expect_punct(")")
        return inner

    def parse_predicate(self) -> ast.Node:
        left = self.parse_additive()
        token = self.current
        if token.kind is TokenKind.OPERATOR and token.text in (
            "=", "<>", "<", "<=", ">", ">=",
        ):
            self.advance()
            return ast.BinaryOp(token.text, left, self.parse_additive())
        negated = False
        if self.current.is_keyword("not"):
            nxt = self.tokens[self.pos + 1]
            if nxt.is_keyword("in") or nxt.is_keyword("like") or nxt.is_keyword("between"):
                self.advance()
                negated = True
        if self.accept_keyword("between"):
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            return ast.Between(left, low, high, negated)
        if self.accept_keyword("in"):
            if self.tokens[self.pos + 1].is_keyword("select"):
                subquery = self.parse_subquery()
                return ast.InSubquery(left, subquery, negated)
            self.expect_punct("(")
            values = [self.parse_additive()]
            while self.accept_punct(","):
                values.append(self.parse_additive())
            self.expect_punct(")")
            return ast.InList(left, tuple(values), negated)
        if self.accept_keyword("like"):
            token = self.current
            if token.kind is not TokenKind.STRING:
                raise SqlError("LIKE expects a string pattern", token.position)
            self.advance()
            return ast.Like(left, token.value, negated)
        if negated:
            raise SqlError("dangling NOT", self.current.position)
        return left

    def parse_additive(self) -> ast.Node:
        left = self.parse_multiplicative()
        while (
            self.current.kind is TokenKind.OPERATOR
            and self.current.text in ("+", "-")
        ):
            op = self.advance().text
            left = ast.BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> ast.Node:
        left = self.parse_unary()
        while (
            self.current.kind is TokenKind.OPERATOR
            and self.current.text in ("*", "/", "%")
        ):
            op = self.advance().text
            left = ast.BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> ast.Node:
        if self.current.kind is TokenKind.OPERATOR and self.current.text == "-":
            self.advance()
            return ast.UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Node:  # noqa: C901
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.NumberLit(token.value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.StringLit(token.value)
        if token.is_keyword("date"):
            self.advance()
            text = self.current
            if text.kind is not TokenKind.STRING:
                raise SqlError("DATE expects a string literal", text.position)
            self.advance()
            return ast.DateLit(text.value)
        if token.is_keyword("case"):
            self.advance()
            whens: list[tuple[ast.Node, ast.Node]] = []
            while self.accept_keyword("when"):
                cond = self.parse_expr()
                self.expect_keyword("then")
                whens.append((cond, self.parse_expr()))
            default = None
            if self.accept_keyword("else"):
                default = self.parse_expr()
            self.expect_keyword("end")
            if not whens:
                raise SqlError("CASE needs at least one WHEN", token.position)
            return ast.Case(tuple(whens), default)
        if self.current.kind is TokenKind.PUNCT and self.current.text == "(" \
                and self.tokens[self.pos + 1].is_keyword("select"):
            return ast.ScalarSubquery(self.parse_subquery())
        if self.accept_punct("("):
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if token.kind is TokenKind.OPERATOR and token.text == "*":
            self.advance()
            return ast.Star()
        if token.kind is TokenKind.IDENT:
            name = self.expect_ident()
            if self.accept_punct("("):
                if self.accept_punct(")"):
                    raise SqlError(f"{name}() needs arguments", token.position)
                args = [self.parse_expr()]
                while self.accept_punct(","):
                    args.append(self.parse_expr())
                self.expect_punct(")")
                return ast.FuncCall(name, tuple(args))
            if self.accept_punct("."):
                column = self.expect_ident()
                return ast.Identifier(name, column)
            return ast.Identifier(None, name)
        raise SqlError(f"unexpected token {token.text!r}", token.position)


def parse(sql: str) -> ast.SelectStmt:
    """Parse one SELECT statement."""
    return _Parser(tokenize(sql)).parse_statement()


def parse_expression(text: str) -> ast.Node:
    """Parse a standalone scalar/boolean expression (DSL frontends)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    if parser.current.kind is not TokenKind.EOF:
        raise SqlError(
            f"trailing input {parser.current.text!r}", parser.current.position
        )
    return expr
