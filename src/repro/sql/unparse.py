"""AST-to-SQL rendering: the inverse of :func:`repro.sql.parse`.

The differential fuzzer's shrinker reduces queries *structurally* — it
edits the AST, renders the candidate back to text, and re-runs the oracle
on the result.  Rendering is therefore conservative: every compound
subexpression is parenthesized, so the round trip ``parse(unparse(x))``
preserves the tree shape regardless of operator precedence.
"""

from __future__ import annotations

from repro.errors import SqlError
from repro.sql import ast


def _float_text(value: float) -> str:
    # the lexer has no exponent notation; render in plain decimal
    text = repr(value)
    if "e" in text or "E" in text:
        text = f"{value:.12f}".rstrip("0")
        if text.endswith("."):
            text += "0"
    return text


def _string_text(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def _atom(node: ast.Node) -> str:
    """Render a node, parenthesized unless it is self-delimiting."""
    text = unparse_expression(node)
    if isinstance(
        node,
        (ast.Identifier, ast.NumberLit, ast.StringLit, ast.DateLit,
         ast.FuncCall, ast.Star, ast.ScalarSubquery, ast.Case),
    ):
        return text
    return f"({text})"


def unparse_expression(node: ast.Node) -> str:  # noqa: C901
    if isinstance(node, ast.Identifier):
        return str(node)
    if isinstance(node, ast.NumberLit):
        if isinstance(node.value, float):
            return _float_text(node.value)
        if node.value < 0:
            return f"({node.value})"
        return str(node.value)
    if isinstance(node, ast.StringLit):
        return _string_text(node.value)
    if isinstance(node, ast.DateLit):
        return f"date {_string_text(node.value)}"
    if isinstance(node, ast.Star):
        return "*"
    if isinstance(node, ast.UnaryOp):
        if node.op == "not":
            return f"not {_atom(node.operand)}"
        return f"-{_atom(node.operand)}"
    if isinstance(node, ast.BinaryOp):
        return f"{_atom(node.left)} {node.op} {_atom(node.right)}"
    if isinstance(node, ast.FuncCall):
        args = ", ".join(unparse_expression(a) for a in node.args)
        return f"{node.name}({args})"
    if isinstance(node, ast.Between):
        word = "not between" if node.negated else "between"
        return (
            f"{_atom(node.operand)} {word} {_atom(node.low)} "
            f"and {_atom(node.high)}"
        )
    if isinstance(node, ast.InList):
        word = "not in" if node.negated else "in"
        values = ", ".join(unparse_expression(v) for v in node.values)
        return f"{_atom(node.operand)} {word} ({values})"
    if isinstance(node, ast.Like):
        word = "not like" if node.negated else "like"
        return f"{_atom(node.operand)} {word} {_string_text(node.pattern)}"
    if isinstance(node, ast.Case):
        parts = ["case"]
        for cond, value in node.whens:
            parts.append(
                f"when {unparse_expression(cond)} "
                f"then {unparse_expression(value)}"
            )
        if node.default is not None:
            parts.append(f"else {unparse_expression(node.default)}")
        parts.append("end")
        return " ".join(parts)
    if isinstance(node, ast.ScalarSubquery):
        return f"({unparse(node.subquery)})"
    if isinstance(node, ast.Exists):
        word = "not exists" if node.negated else "exists"
        return f"{word} ({unparse(node.subquery)})"
    if isinstance(node, ast.InSubquery):
        word = "not in" if node.negated else "in"
        return f"{_atom(node.operand)} {word} ({unparse(node.subquery)})"
    raise SqlError(f"cannot unparse {type(node).__name__}")


def unparse(stmt: ast.SelectStmt) -> str:
    """Render a SELECT statement; ``parse(unparse(s))`` is shape-preserving."""
    parts = ["select"]
    if stmt.distinct:
        parts.append("distinct")
    items = []
    for item in stmt.items:
        text = unparse_expression(item.expr)
        if item.alias:
            text += f" as {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    parts.append("from")
    tables = []
    for ref in stmt.tables:
        if ref.subquery is not None:
            tables.append(f"({unparse(ref.subquery)}) as {ref.alias}")
        elif ref.alias != ref.table:
            tables.append(f"{ref.table} as {ref.alias}")
        else:
            tables.append(ref.table)
    parts.append(", ".join(tables))
    if stmt.where is not None:
        parts.append("where " + unparse_expression(stmt.where))
    if stmt.group_by:
        parts.append(
            "group by " + ", ".join(unparse_expression(e) for e in stmt.group_by)
        )
    if stmt.having is not None:
        parts.append("having " + unparse_expression(stmt.having))
    if stmt.order_by:
        keys = []
        for order in stmt.order_by:
            text = unparse_expression(order.expr)
            if not order.ascending:
                text += " desc"
            keys.append(text)
        parts.append("order by " + ", ".join(keys))
    if stmt.limit is not None:
        parts.append(f"limit {stmt.limit}")
    return " ".join(parts)
