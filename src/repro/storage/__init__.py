"""Columnar storage: sharded, segment-encoded tables with zone maps.

The subsystem owns the physical layout of every table in simulated
memory (see docs/STORAGE.md): sorted shards with a spine index, per-
segment encodings (plain / frame-of-reference / dictionary / RLE) behind
a runtime segment directory, zone maps consulted by generated scan code,
a German-string table over the sorted dictionary, and address extents
that attribute PMU samples to (table, column, shard, segment, encoding).
"""

from repro.storage.encodings import (
    Encoding,
    analyze_segments,
    bits_for_range,
    decode_segment,
    encode_segment,
    pack_words,
    run_lengths,
    unpack_word,
)
from repro.storage.german import ENTRY_BYTES, INLINE_MAX, GermanStringTable
from repro.storage.layout import (
    DIR_DATA,
    DIR_MAX,
    DIR_MIN,
    DIR_PARAM,
    DIR_STRIDE,
    ColumnStorage,
    PruneStats,
    SegmentMeta,
    ShardMeta,
    StorageConfig,
    StorageEngine,
    StorageRef,
    TableStorage,
)

__all__ = [
    "Encoding",
    "analyze_segments",
    "bits_for_range",
    "decode_segment",
    "encode_segment",
    "pack_words",
    "run_lengths",
    "unpack_word",
    "GermanStringTable",
    "ENTRY_BYTES",
    "INLINE_MAX",
    "ColumnStorage",
    "PruneStats",
    "SegmentMeta",
    "ShardMeta",
    "StorageConfig",
    "StorageEngine",
    "StorageRef",
    "TableStorage",
    "DIR_STRIDE",
    "DIR_DATA",
    "DIR_PARAM",
    "DIR_MIN",
    "DIR_MAX",
]
