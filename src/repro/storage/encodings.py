"""Segment encodings: plain, frame-of-reference bit-packing, dictionary, RLE.

Encoding *kind* is chosen once per column (so scan codegen stays
monomorphic — one decode shape per column, no per-tuple dispatch), while
the per-segment parameters (frame base, local dictionary, run arrays,
zone min/max) vary per segment and are read by generated code from the
segment directory at runtime.

Bit widths are restricted to power-of-two divisors of 64 so a packed
value is never split across words and decode lowers to shifts and masks
only — no division in the inner loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ReproError

#: legal packed widths: power-of-two divisors of the 64-bit word
PACK_BITS = (1, 2, 4, 8, 16, 32)


class Encoding(enum.IntEnum):
    """Column encoding kind (the integer value is what attribution and
    the segment directory report)."""

    PLAIN = 0
    FOR = 1  # frame-of-reference bit-packing: value = base + packed delta
    DICT = 2  # packed segment-local index into a local id dictionary
    RLE = 3  # run values + cumulative run-end offsets


def bits_for_range(span: int) -> int | None:
    """Smallest legal packed width holding values in ``[0, span]``."""
    if span < 0:
        raise ReproError(f"negative span {span}")
    for bits in PACK_BITS:
        if span < (1 << bits):
            return bits
    return None  # needs a full word: not packable


def pack_words(deltas: list[int], bits: int) -> list[int]:
    """Pack non-negative ``deltas`` of ``bits`` width each, little-endian
    within the word: value *i* sits at bit ``(i % per_word) * bits``."""
    if bits not in PACK_BITS:
        raise ReproError(f"illegal pack width {bits}")
    per_word = 64 // bits
    words = [0] * ((len(deltas) + per_word - 1) // per_word)
    for i, delta in enumerate(deltas):
        words[i // per_word] |= delta << ((i % per_word) * bits)
    return words


def unpack_word(word: int, slot: int, bits: int) -> int:
    """Host-side reference for the generated shift/mask decode."""
    return (word >> (slot * bits)) & ((1 << bits) - 1)


def run_lengths(values: list) -> list[tuple[int, int]]:
    """``(value, end_offset)`` runs; ``end_offset`` is exclusive and
    relative to the segment start, so the last end equals the row count."""
    runs: list[tuple[int, int]] = []
    for i, v in enumerate(values):
        if runs and runs[-1][0] == v:
            runs[-1] = (v, i + 1)
        else:
            runs.append((v, i + 1))
    return runs


@dataclass
class SegmentAnalysis:
    """Per-segment facts gathered in the loader's single pass."""

    row_lo: int
    row_hi: int
    min_value: int | float
    max_value: int | float
    distinct_values: frozenset
    runs: int

    @property
    def rows(self) -> int:
        return self.row_hi - self.row_lo


def analyze_segments(values: list, segment_rows: int) -> list[SegmentAnalysis]:
    """One pass over a column: zone min/max, distinct set, and run count
    per segment.  Everything the encoder, the zone maps, and the
    optimizer statistics need comes from this pass alone."""
    out: list[SegmentAnalysis] = []
    for lo in range(0, len(values), segment_rows):
        seg = values[lo : lo + segment_rows]
        runs = 1
        for a, b in zip(seg, seg[1:]):
            if a != b:
                runs += 1
        out.append(
            SegmentAnalysis(
                row_lo=lo,
                row_hi=lo + len(seg),
                min_value=min(seg),
                max_value=max(seg),
                distinct_values=frozenset(seg),
                runs=runs,
            )
        )
    return out


@dataclass
class EncodedSegment:
    """One segment's payload, ready to copy into simulated memory.

    ``data`` holds the primary words (plain values, packed deltas, packed
    local indices, or run values); ``aux`` holds the secondary array
    (local dictionary values for DICT, run-end offsets for RLE).
    ``base`` is the FOR frame (segment minimum) and doubles as the
    constant value for zero-width frames.
    """

    data: list = field(default_factory=list)
    aux: list = field(default_factory=list)
    base: int | float = 0


def encode_segment(
    kind: Encoding, values: list, analysis: SegmentAnalysis, bits: int
) -> EncodedSegment:
    if kind is Encoding.PLAIN:
        return EncodedSegment(data=list(values))
    if kind is Encoding.FOR:
        base = analysis.min_value
        if bits == 0:  # constant segment: no payload, decode is the frame
            return EncodedSegment(base=base)
        deltas = [v - base for v in values]
        return EncodedSegment(data=pack_words(deltas, bits), base=base)
    if kind is Encoding.DICT:
        local = sorted(analysis.distinct_values)
        index_of = {v: i for i, v in enumerate(local)}
        packed = pack_words([index_of[v] for v in values], bits)
        return EncodedSegment(data=packed, aux=local)
    if kind is Encoding.RLE:
        runs = run_lengths(values)
        return EncodedSegment(
            data=[v for v, _ in runs], aux=[end for _, end in runs]
        )
    raise ReproError(f"unknown encoding {kind}")


def decode_segment(
    kind: Encoding, encoded: EncodedSegment, rows: int, bits: int
) -> list:
    """Host-side reference decode (tests compare it to the raw column)."""
    if kind is Encoding.PLAIN:
        return list(encoded.data[:rows])
    if kind is Encoding.FOR:
        if bits == 0:
            return [encoded.base] * rows
        per_word = 64 // bits
        return [
            encoded.base
            + unpack_word(encoded.data[i // per_word], i % per_word, bits)
            for i in range(rows)
        ]
    if kind is Encoding.DICT:
        per_word = 64 // bits
        return [
            encoded.aux[
                unpack_word(encoded.data[i // per_word], i % per_word, bits)
            ]
            for i in range(rows)
        ]
    if kind is Encoding.RLE:
        out: list = []
        run = 0
        for i in range(rows):
            while i >= encoded.aux[run]:
                run += 1
            out.append(encoded.data[run])
        return out
    raise ReproError(f"unknown encoding {kind}")
