"""German-style short-string layout over the sorted dictionary.

Every dictionary string gets a fixed 16-byte (two-word) entry:

    word 0:  [ prefix: 4 bytes | length: 4 bytes ]   (prefix in high bits)
    word 1:  strings of <= 12 bytes: remaining bytes inline, left-aligned
             longer strings: byte pointer into the string heap

Because the prefix sits in the word as a big-endian integer, comparing
the high halves of two entry words orders the strings byte-wise without
touching either payload — the O(1) inequality fast path.  Equality of
short strings is decided entirely inside the 16 bytes; only two long
strings sharing a 12-byte prefix fall back to the heap.

Runtime comparisons in generated code still use the order-preserving
dictionary ids; this table is the physical string store those ids point
at, and it lives in simulated memory so string-storage bytes show up in
the memory map and in sample attribution like every other structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

ENTRY_BYTES = 16
#: longest string whose payload fits entirely inside the entry
INLINE_MAX = 12
_PREFIX = 4
_SUFFIX = 8


def _be_word(raw: bytes) -> int:
    return int.from_bytes(raw.ljust(8, b"\0")[:8], "big")


def entry_words(value: str, heap_offset: int | None = None) -> tuple[int, int]:
    """The two entry words for ``value``.

    ``heap_offset`` must be given (byte offset of the spilled bytes) when
    the string does not fit inline.
    """
    raw = value.encode("utf-8")
    if len(raw) >= 1 << 32:
        raise ReproError("string too long for german layout")
    word0 = (_be_word(raw[:_PREFIX]) >> 32 << 32) | len(raw)
    if len(raw) <= INLINE_MAX:
        return word0, _be_word(raw[_PREFIX : _PREFIX + _SUFFIX])
    if heap_offset is None:
        raise ReproError(f"string of {len(raw)} bytes needs a heap offset")
    return word0, heap_offset


@dataclass
class GermanStringTable:
    """The materialized entry table plus its overflow heap."""

    base: int  # byte address of entry 0
    heap_base: int  # byte address of the overflow heap
    count: int

    def entry_addr(self, string_id: int) -> int:
        return self.base + string_id * ENTRY_BYTES

    @classmethod
    def build(cls, dictionary, memory) -> "GermanStringTable":
        """Materialize every dictionary string; returns the table.

        Entries are written id-order, so ``base + id * 16`` addresses the
        entry — exactly how a column's dictionary ids would chase into
        string storage on a real engine.
        """
        values = [dictionary.value_of(i) for i in range(len(dictionary))]
        spill = [v.encode("utf-8") for v in values if len(v.encode("utf-8")) > INLINE_MAX]
        heap_bytes = sum((len(raw) + 7) & ~7 for raw in spill)
        base = memory.alloc(
            max(8, len(values) * ENTRY_BYTES), "strings.german", align=64
        )
        heap_base = memory.alloc(max(8, heap_bytes), "strings.heap", align=64)

        heap_cursor = heap_base
        for i, value in enumerate(values):
            raw = value.encode("utf-8")
            offset = None
            if len(raw) > INLINE_MAX:
                offset = heap_cursor
                for j in range(0, len(raw), 8):
                    memory.write(heap_cursor, _be_word(raw[j : j + 8]))
                    heap_cursor += 8
            w0, w1 = entry_words(value, offset)
            memory.write(base + i * ENTRY_BYTES, w0)
            memory.write(base + i * ENTRY_BYTES + 8, w1)
        return cls(base=base, heap_base=heap_base, count=len(values))

    # -- reads (host-side, over simulated memory only) --------------------

    def _entry(self, memory, string_id: int) -> tuple[int, int, int]:
        if not 0 <= string_id < self.count:
            raise ReproError(f"string id {string_id} out of range")
        addr = self.entry_addr(string_id)
        w0 = memory.read(addr)
        w1 = memory.read(addr + 8)
        return w0 >> 32, w0 & 0xFFFFFFFF, w1

    def value_of(self, memory, string_id: int) -> str:
        """Reassemble the string from the entry (and heap, if spilled)."""
        prefix, length, w1 = self._entry(memory, string_id)
        head = prefix.to_bytes(4, "big")[: min(length, _PREFIX)]
        if length <= INLINE_MAX:
            tail = w1.to_bytes(8, "big")[: max(0, length - _PREFIX)]
            return (head + tail).decode("utf-8")
        raw = bytearray()
        for j in range(0, length, 8):
            raw += memory.read(w1 + j).to_bytes(8, "big")
        return bytes(raw[:length]).decode("utf-8")

    def compare(self, memory, id_a: int, id_b: int) -> int:
        """Byte-wise string compare: negative / zero / positive.

        The fast path decides from the 16-byte entries alone; only two
        spilled strings with identical 12-byte prefixes read the heap.
        """
        pa, la, wa = self._entry(memory, id_a)
        pb, lb, wb = self._entry(memory, id_b)
        if pa != pb:  # O(1): prefixes differ
            return -1 if pa < pb else 1
        if la <= INLINE_MAX and lb <= INLINE_MAX:
            if wa != wb:
                return -1 if wa < wb else 1
            return (la > lb) - (la < lb)
        a = self.value_of(memory, id_a).encode("utf-8")
        b = self.value_of(memory, id_b).encode("utf-8")
        return (a > b) - (a < b)
