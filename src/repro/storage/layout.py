"""Physical table layout: shards, segments, zone maps, and the directory.

``StorageEngine.build`` owns the physical layout of every catalog table:

* rows are (stably) ordered by the table's declared sort key, then split
  into fixed-size **segments** (a power of two, so the segment index is a
  shift) grouped into **shards**; a **spine index** records per-shard
  min/max of the sort key for compile-time range narrowing;
* every column is stored as per-segment payloads under one column-level
  encoding kind (chosen here, from the same single analysis pass that
  also yields the optimizer's ColumnStats);
* a per-column **segment directory** lives in simulated memory — four
  words per segment: ``[data, param, min, max]`` — read by generated
  scan code for decode parameters and runtime zone-map skipping;
* every extent is registered for sample attribution, so a PMU sample's
  memory address resolves to (table, column, shard, segment, encoding).

Segment payloads start cache-line aligned (``align=64``) so the L1/L2
sets a scan touches are a function of the layout, not allocation order.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.catalog.table import ColumnStats
from repro.errors import ReproError
from repro.storage.encodings import (
    Encoding,
    EncodedSegment,
    SegmentAnalysis,
    analyze_segments,
    bits_for_range,
    encode_segment,
)
from repro.storage.german import GermanStringTable

#: segment directory entry: [data_addr, param, zone_min, zone_max]
DIR_STRIDE = 32
DIR_DATA = 0
DIR_PARAM = 8
DIR_MIN = 16
DIR_MAX = 24


@dataclass(frozen=True)
class StorageConfig:
    """Loader knobs.  ``compress=False, prune=False`` is the flat
    baseline layout the fuzz oracle and benchmarks compare against."""

    segment_rows: int = 1024  # power of two: segment index is a shift
    shard_segments: int = 32  # spine granularity
    compress: bool = True  # choose FOR/DICT/RLE where profitable
    prune: bool = True  # emit zone-map skip branches in scans
    rle_min_run: float = 4.0
    dict_max_distinct: int = 4096
    # (table, column) -> Encoding, overriding the heuristics (tests)
    force: tuple = ()

    def __post_init__(self):
        if self.segment_rows < 2 or self.segment_rows & (self.segment_rows - 1):
            raise ReproError("segment_rows must be a power of two >= 2")
        if self.shard_segments < 1:
            raise ReproError("shard_segments must be >= 1")

    @classmethod
    def plain(cls, **kw) -> "StorageConfig":
        return cls(compress=False, prune=False, **kw)

    @classmethod
    def pruned(cls, **kw) -> "StorageConfig":
        """Zone maps without compression: every byte layout matches the
        plain config, so instruction counts are directly comparable."""
        return cls(compress=False, prune=True, **kw)

    def forced(self, table: str, column: str) -> Encoding | None:
        for t, c, kind in self.force:
            if t == table and c == column:
                return kind
        return None


@dataclass(frozen=True)
class StorageRef:
    """What a memory address inside table storage means."""

    table: str
    column: str
    shard: int
    segment: int
    encoding: str
    part: str  # data | dict | runs | dir | strings | heap


@dataclass
class SegmentMeta:
    index: int
    row_lo: int
    row_hi: int
    min_value: int | float
    max_value: int | float
    data_addr: int
    param: int  # FOR frame / local-dict addr / run-ends addr

    @property
    def rows(self) -> int:
        return self.row_hi - self.row_lo


@dataclass
class ColumnStorage:
    name: str
    encoding: Encoding
    bits: int  # packed width (FOR/DICT); 0 = constant frames / unused
    dir_addr: int  # segment directory base
    segments: list[SegmentMeta]
    distinct: int  # exact, unioned over per-segment value sets
    plain_addr: int | None = None  # contiguous base when encoding is PLAIN
    data_bytes: int = 0  # payload bytes (excluding the directory)

    @property
    def plain_bytes(self) -> int:
        rows = self.segments[-1].row_hi if self.segments else 0
        return rows * 8


@dataclass
class ShardMeta:
    index: int
    row_lo: int
    row_hi: int
    key_min: int | float | None
    key_max: int | float | None


@dataclass
class PruneStats:
    """Observed zone-map effect, accumulated across runs (advisory:
    segments straddling morsel boundaries are considered once per
    morsel, like the generated code does)."""

    considered: int = 0
    skipped: int = 0

    @property
    def skip_share(self) -> float:
        return self.skipped / self.considered if self.considered else 0.0


class TableStorage:
    """One table's physical layout."""

    def __init__(
        self,
        name: str,
        row_count: int,
        config: StorageConfig,
        sort_key: str | None,
    ):
        self.name = name
        self.row_count = row_count
        self.config = config
        self.sort_key = sort_key
        self.columns: list[ColumnStorage] = []
        self.shards: list[ShardMeta] = []

    @property
    def segment_count(self) -> int:
        seg = self.config.segment_rows
        return (self.row_count + seg - 1) // seg

    def column(self, index: int) -> ColumnStorage:
        return self.columns[index]

    def shard_of_segment(self, segment: int) -> int:
        return segment // self.config.shard_segments

    def prune_range(self, column_name: str, lo, hi) -> tuple[int, int]:
        """Compile-time spine consultation: the smallest contiguous row
        range that can satisfy ``lo <= key <= hi`` (either bound may be
        None).  Only the sort key is clustered, so only it narrows."""
        if column_name != self.sort_key or not self.shards:
            return 0, self.row_count
        first, last = 0, len(self.shards) - 1
        if lo is not None:
            while first <= last and self.shards[first].key_max < lo:
                first += 1
        if hi is not None:
            while last >= first and self.shards[last].key_min > hi:
                last -= 1
        if first > last:
            return 0, 0
        return self.shards[first].row_lo, self.shards[last].row_hi


class StorageEngine:
    """All tables' layouts plus the string store and observed statistics."""

    def __init__(self, config: StorageConfig):
        self.config = config
        self.tables: dict[str, TableStorage] = {}
        self.german: GermanStringTable | None = None
        self.prune_stats: dict[tuple[str, int], PruneStats] = {}
        self._extent_starts: list[int] = []
        self._extents: list[tuple[int, int, StorageRef]] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, catalog, memory, config: StorageConfig) -> "StorageEngine":
        engine = cls(config)
        for table in catalog.tables.values():
            engine._build_table(table, memory)
        engine.german = GermanStringTable.build(catalog.dictionary, memory)
        engine._register(
            engine.german.base,
            max(8, engine.german.count * 16),
            StorageRef("", "", -1, -1, "german", "strings"),
        )
        engine._finish_extents()
        return engine

    def table(self, name: str) -> TableStorage | None:
        return self.tables.get(name)

    def _build_table(self, table, memory) -> None:
        config = self.config
        self._sort_rows(table)
        storage = TableStorage(
            table.name, table.row_count, config, getattr(table, "sort_key", None)
        )
        self.tables[table.name] = storage

        for index, column_def in enumerate(table.schema):
            values = table.columns[index]
            analyses = analyze_segments(values, config.segment_rows)
            kind, bits = self._choose(table.name, column_def, analyses)
            column = self._materialize(
                memory, table.name, column_def.name, values, analyses,
                kind, bits, storage,
            )
            storage.columns.append(column)
            # the loader pass *is* the statistics pass: zone maps give
            # min/max, the per-segment value sets union to exact distinct
            if analyses:
                stats = ColumnStats(
                    min_value=min(a.min_value for a in analyses),
                    max_value=max(a.max_value for a in analyses),
                    distinct=column.distinct,
                )
            else:
                stats = ColumnStats(None, None, 0)
            table._stats[index] = stats

        self._build_spine(table, storage)

    def _sort_rows(self, table) -> None:
        """Stable-sort the table by its declared sort key.

        The loaders declare keys matching generation order (TPC-H tables
        arrive clustered by primary key), so this is normally the
        identity permutation; when it is not, *all* representations —
        ``Table.columns`` included, which the reference interpreter
        reads — see the same row order, keeping every oracle honest.
        """
        key = getattr(table, "sort_key", None)
        if key is None or table.row_count == 0:
            return
        column = table.column_named(key)
        if all(a <= b for a, b in zip(column, column[1:])):
            return  # already clustered: keep the generation order intact
        order = sorted(range(len(column)), key=column.__getitem__)
        for i, values in enumerate(table.columns):
            table.columns[i] = [values[j] for j in order]

    def _choose(
        self, table_name: str, column_def, analyses: list[SegmentAnalysis]
    ) -> tuple[Encoding, int]:
        """Pick the column's encoding kind from the segment analyses."""
        from repro.catalog.schema import DataType

        config = self.config
        forced = config.forced(table_name, column_def.name)
        rows = sum(a.rows for a in analyses)
        if not rows:
            return Encoding.PLAIN, 0
        if forced is None and (
            not config.compress or column_def.dtype is DataType.FLOAT
        ):
            return Encoding.PLAIN, 0

        runs = sum(a.runs for a in analyses)
        spans = [a.max_value - a.min_value for a in analyses]
        for_bits = 0 if max(spans) == 0 else bits_for_range(max(spans))
        max_distinct = max(len(a.distinct_values) for a in analyses)
        dict_bits = bits_for_range(max_distinct - 1) if max_distinct > 1 else 1

        if forced is not None:
            kind = forced
        elif rows / runs >= config.rle_min_run:
            kind = Encoding.RLE
        elif (
            column_def.dtype is DataType.STRING
            and max_distinct <= config.dict_max_distinct
            and dict_bits is not None
            and dict_bits <= 16
            and (for_bits is None or dict_bits < for_bits)
        ):
            kind = Encoding.DICT
        elif for_bits is not None and for_bits <= 32:
            kind = Encoding.FOR
        else:
            kind = Encoding.PLAIN

        if kind is Encoding.FOR:
            if for_bits is None:
                return Encoding.PLAIN, 0
            return kind, for_bits
        if kind is Encoding.DICT:
            if dict_bits is None:
                return Encoding.PLAIN, 0
            return kind, dict_bits
        return kind, 0

    def _materialize(
        self, memory, table_name, column_name, values, analyses,
        kind: Encoding, bits: int, storage: TableStorage,
    ) -> ColumnStorage:
        """Encode every segment and copy payloads + directory into
        simulated memory."""
        label = f"{table_name}.{column_name}"
        encoded: list[EncodedSegment] = [
            encode_segment(kind, values[a.row_lo : a.row_hi], a, bits)
            for a in analyses
        ]

        def aligned_words(n: int) -> int:
            return (n + 7) & ~7  # cache line = 8 words

        distinct: set = set()
        for a in analyses:
            distinct |= a.distinct_values

        plain_addr = None
        if kind is Encoding.PLAIN:
            # one contiguous array: flat column addressing still works,
            # and 8KiB segments stay cache-line aligned automatically
            data_addr = memory.alloc(max(8, len(values) * 8), label, align=64)
            memory.words[data_addr // 8 : data_addr // 8 + len(values)] = list(
                values
            )
            plain_addr = data_addr
            data_offsets = [a.row_lo * 8 for a in analyses]
            param_values = [0] * len(analyses)
            data_bytes = len(values) * 8
        else:
            data_words = [aligned_words(len(e.data)) for e in encoded]
            data_addr = memory.alloc(
                max(8, sum(data_words) * 8), f"{label}.seg", align=64
            )
            data_offsets = []
            cursor = 0
            for e, words in zip(encoded, data_words):
                data_offsets.append(cursor * 8)
                base = data_addr // 8 + cursor
                memory.words[base : base + len(e.data)] = list(e.data)
                cursor += words
            data_bytes = cursor * 8

            if kind is Encoding.FOR:
                param_values = [e.base for e in encoded]
            else:
                aux_words = [aligned_words(len(e.aux)) for e in encoded]
                part = "dict" if kind is Encoding.DICT else "runs"
                aux_addr = memory.alloc(
                    max(8, sum(aux_words) * 8), f"{label}.{part}", align=64
                )
                param_values = []
                cursor = 0
                for e, words in zip(encoded, aux_words):
                    param_values.append(aux_addr + cursor * 8)
                    base = aux_addr // 8 + cursor
                    memory.words[base : base + len(e.aux)] = list(e.aux)
                    cursor += words
                data_bytes += cursor * 8
                self._register_segments(
                    aux_addr,
                    [w * 8 for w in aux_words],
                    table_name, column_name, kind, part, storage,
                )

        dir_addr = memory.alloc(
            max(8, len(analyses) * DIR_STRIDE), f"{label}.dir", align=64
        )
        segments: list[SegmentMeta] = []
        for i, (a, e) in enumerate(zip(analyses, encoded)):
            seg_data = data_addr + data_offsets[i]
            memory.write(dir_addr + i * DIR_STRIDE + DIR_DATA, seg_data)
            memory.write(dir_addr + i * DIR_STRIDE + DIR_PARAM, param_values[i])
            memory.write(dir_addr + i * DIR_STRIDE + DIR_MIN, a.min_value)
            memory.write(dir_addr + i * DIR_STRIDE + DIR_MAX, a.max_value)
            segments.append(
                SegmentMeta(
                    index=i, row_lo=a.row_lo, row_hi=a.row_hi,
                    min_value=a.min_value, max_value=a.max_value,
                    data_addr=seg_data, param=param_values[i],
                )
            )

        if kind is Encoding.PLAIN:
            sizes = [a.rows * 8 for a in analyses]
        else:
            sizes = [aligned_words(len(e.data)) * 8 for e in encoded]
        self._register_segments(
            data_addr, sizes, table_name, column_name, kind, "data", storage
        )
        self._register(
            dir_addr,
            max(8, len(analyses) * DIR_STRIDE),
            StorageRef(table_name, column_name, -1, -1, kind.name.lower(), "dir"),
        )
        return ColumnStorage(
            name=column_name, encoding=kind, bits=bits, dir_addr=dir_addr,
            segments=segments, distinct=len(distinct),
            plain_addr=plain_addr, data_bytes=data_bytes,
        )

    def _build_spine(self, table, storage: TableStorage) -> None:
        config = storage.config
        key_col = None
        if storage.sort_key is not None:
            key_col = table.column_named(storage.sort_key)
        rows_per_shard = config.segment_rows * config.shard_segments
        for i, lo in enumerate(range(0, storage.row_count, rows_per_shard)):
            hi = min(lo + rows_per_shard, storage.row_count)
            storage.shards.append(
                ShardMeta(
                    index=i, row_lo=lo, row_hi=hi,
                    # rows are clustered by the key: min/max sit at the ends
                    key_min=key_col[lo] if key_col else None,
                    key_max=key_col[hi - 1] if key_col else None,
                )
            )

    # -- attribution ------------------------------------------------------

    def _register(self, base: int, size: int, ref: StorageRef) -> None:
        self._extents.append((base, base + size, ref))

    def _register_segments(
        self, base, sizes, table_name, column_name, kind, part, storage
    ) -> None:
        cursor = base
        for i, size in enumerate(sizes):
            self._register(
                cursor, size,
                StorageRef(
                    table_name, column_name, storage.shard_of_segment(i), i,
                    kind.name.lower(), part,
                ),
            )
            cursor += size

    def _finish_extents(self) -> None:
        self._extents.sort(key=lambda e: e[0])
        self._extent_starts = [lo for lo, _, _ in self._extents]

    def resolve(self, addr: int) -> StorageRef | None:
        """Attribute a sampled memory address to its storage structure."""
        i = bisect.bisect_right(self._extent_starts, addr) - 1
        if i < 0:
            return None
        lo, hi, ref = self._extents[i]
        return ref if lo <= addr < hi else None

    # -- observed statistics ----------------------------------------------

    def note_pruning(
        self, table_name: str, column_index: int, considered: int, skipped: int
    ) -> None:
        stats = self.prune_stats.setdefault(
            (table_name, column_index), PruneStats()
        )
        stats.considered += considered
        stats.skipped += skipped

    def encoding_advice(self) -> list[str]:
        """Loader feedback from observed pruning: which zone maps pay."""
        advice = []
        for (table_name, index), stats in sorted(self.prune_stats.items()):
            storage = self.tables[table_name]
            column = storage.columns[index]
            if stats.considered == 0:
                continue
            if stats.skip_share == 0.0:
                advice.append(
                    f"{table_name}.{column.name}: zone maps never pruned "
                    f"({stats.considered} segments considered) — candidate "
                    "for re-clustering or dropping the check"
                )
            else:
                advice.append(
                    f"{table_name}.{column.name}: zone maps pruned "
                    f"{stats.skipped}/{stats.considered} segments "
                    f"({stats.skip_share:.0%}) — keep {column.encoding.name} "
                    "and the skip branch"
                )
        return advice

    # -- reporting --------------------------------------------------------

    def summary(self) -> str:
        """Per-table shard/segment/encoding/zone-map summary (the
        ``python -m repro storage`` CLI)."""
        lines = []
        for name, storage in self.tables.items():
            lines.append(
                f"{name}: {storage.row_count} rows, "
                f"{len(storage.shards)} shard(s), "
                f"{storage.segment_count} segment(s) of "
                f"{storage.config.segment_rows} rows"
                + (f", sorted by {storage.sort_key}" if storage.sort_key else "")
            )
            for column in storage.columns:
                plain = column.plain_bytes
                packed = column.data_bytes
                ratio = plain / packed if packed else 1.0
                zones = ""
                if column.segments:
                    lo = min(s.min_value for s in column.segments)
                    hi = max(s.max_value for s in column.segments)
                    zones = f", zones [{lo} .. {hi}]"
                detail = f"bits={column.bits}, " if column.bits else ""
                lines.append(
                    f"  {column.name}: {column.encoding.name.lower()} "
                    f"({detail}{packed} B vs {plain} B plain, "
                    f"{ratio:.1f}x), distinct={column.distinct}{zones}"
                )
            for (t, index), stats in sorted(self.prune_stats.items()):
                if t == name and stats.considered:
                    column = storage.columns[index]
                    lines.append(
                        f"  [observed] {column.name}: skipped "
                        f"{stats.skipped}/{stats.considered} segments "
                        f"({stats.skip_share:.0%})"
                    )
        if self.german is not None:
            lines.append(
                f"strings: {self.german.count} german entries "
                f"({self.german.count * 16} B) + overflow heap"
            )
        return "\n".join(lines)
