"""A second dataflow frontend on the same compilation + profiling stack.

The paper's Figure 1 places the dataflow graph *above* the relational
layers and argues Tailored Profiling works for any system that lowers such
a graph to machine code (§4.2, §6.4 "Portability").  This package is that
claim exercised in code: a streaming-flavoured dataflow DSL —
source → where → derive → tumbling windows → windowed aggregation → sink —
with its *own operator vocabulary*, lowered through the very same
pipelines/IR/backend, profiled by the very same Tagging Dictionary.
Profiling reports come out speaking the DSL's language ("source
shipments", "window-agg#7"), not SQL's.
"""

from repro.streaming.flow import EventFlow

__all__ = ["EventFlow"]
