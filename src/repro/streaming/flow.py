"""The EventFlow DSL: chainable dataflow stages over one event table.

Stages build a logical plan (the dataflow graph); ``run``/``profile`` lower
it through the shared stack.  Every physical operator gets a DSL-flavoured
label so all profiling reports — annotated plan, pipelines, timelines,
exports — speak the DSL's vocabulary (the whole point of abstraction-
appropriate profiling).

Example::

    flow = (EventFlow(db, "lineitem", label="shipments")
            .where("l_quantity > 10")
            .derive(revenue="l_extendedprice * (1 - l_discount)")
            .tumbling_window("l_shipdate", days=30)
            .aggregate(by=["window_start", "l_returnflag"],
                       totals={"revenue": "sum(revenue)", "n": "count(*)"})
            .order_by("window_start", "l_returnflag"))
    result = flow.run()
    profile = flow.profile()
"""

from __future__ import annotations

from repro.catalog.schema import DataType
from repro.errors import SqlError
from repro.plan.cardinality import CardinalityModel
from repro.plan.expr import IU, AggCall, BinaryExpr, ConstExpr, Expr, IURef
from repro.plan.logical import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalLimit,
    LogicalMap,
    LogicalOperator,
    LogicalOutput,
    LogicalScan,
    LogicalSort,
)
from repro.plan.physical import (
    PhysicalGroupBy,
    PhysicalLimit,
    PhysicalMap,
    PhysicalOutput,
    PhysicalScan,
    PhysicalSelect,
    PhysicalSort,
    plan_physical,
)
from repro.sql import ast
from repro.sql.binder import Binder, _Relation
from repro.sql.parser import parse_expression

_AGG_FUNCS = {"sum", "min", "max", "count", "avg"}


class _FlowBinder(Binder):
    """Expression binder for one flow: the source scan plus derived names."""

    def __init__(self, catalog, scan: LogicalScan, derived: dict[str, IU]):
        super().__init__(catalog)
        self._scans = [_Relation.for_table(scan)]
        self._alias_index = {scan.alias: 0}
        self._inner_start = 0
        self._derived = derived

    def resolve_column(self, node: ast.Identifier):
        if node.qualifier is None and node.name in self._derived:
            return IURef(self._derived[node.name])
        return super().resolve_column(node)


class _ScopeBinder(Binder):
    """Post-aggregation binder: only the aggregate scope's names resolve
    (per-event columns are gone once the flow has aggregated)."""

    def __init__(self, catalog, scope: dict[str, IU]):
        super().__init__(catalog)
        self._scans = []
        self._alias_index = {}
        self._inner_start = 0
        self._scope = scope

    def resolve_column(self, node: ast.Identifier):
        if node.qualifier is None and node.name in self._scope:
            return IURef(self._scope[node.name])
        raise SqlError(
            f"unknown column {node.name!r} after aggregate(); available: "
            + ", ".join(sorted(self._scope))
        )


class EventFlow:
    """A chainable dataflow over one event table.

    Stage methods return ``self`` for chaining; each appends a logical
    operator and remembers a DSL label for the physical operator it will
    become.
    """

    def __init__(self, database, table: str, label: str | None = None):
        self._db = database
        self._scan = LogicalScan(database.catalog.table(table), table)
        self._plan: LogicalOperator = self._scan
        self._derived: dict[str, IU] = {}
        self._binder = _FlowBinder(database.catalog, self._scan, self._derived)
        self._labels: dict[int, str] = {
            self._scan.op_id: f"source {label or table}"
        }
        self._stage_counter = 0
        self._agg_scope: dict[str, IU] | None = None
        self._output_columns: list[tuple[str, IU]] | None = None
        self._sealed_root: LogicalOutput | None = None

    # -- internals -----------------------------------------------------------

    def _next_stage(self) -> int:
        self._stage_counter += 1
        return self._stage_counter

    def _bind(self, text: str) -> Expr:
        return self._binder.bind_scalar(parse_expression(text))

    def _name_scope(self) -> dict[str, IU]:
        if self._agg_scope is not None:
            return self._agg_scope
        return dict(self._derived)

    def _resolve_name(self, name: str) -> IU:
        scope = self._name_scope()
        if name in scope:
            return scope[name]
        if self._agg_scope is None and self._scan.table.schema.has_column(name):
            return self._scan.iu_for(name)
        raise SqlError(f"unknown column {name!r} at this stage of the flow")

    def _require_streaming_side(self) -> None:
        if self._sealed_root is not None:
            raise SqlError("the flow is already sealed; create a new one")

    # -- stages ---------------------------------------------------------------

    def where(self, condition: str) -> "EventFlow":
        """Filter events by a boolean expression."""
        self._require_streaming_side()
        if self._agg_scope is not None:
            raise SqlError("where() must come before aggregate()")
        bound = self._bind(condition)
        if bound.dtype is not DataType.BOOL:
            raise SqlError("where() needs a boolean expression")
        self._plan = LogicalFilter(self._plan, bound)
        self._labels[self._plan.op_id] = f"where#{self._next_stage()}"
        return self

    def derive(self, **columns: str) -> "EventFlow":
        """Compute new per-event columns from expressions."""
        self._require_streaming_side()
        if self._agg_scope is not None:
            raise SqlError("derive() must come before aggregate()")
        computed = []
        for name, text in columns.items():
            if name in self._derived:
                raise SqlError(f"column {name!r} derived twice")
            bound = self._bind(text)
            iu = IU(name, bound.dtype)
            computed.append((iu, bound))
            self._derived[name] = iu
        self._plan = LogicalMap(self._plan, computed)
        self._labels[self._plan.op_id] = f"derive#{self._next_stage()}"
        return self

    def tumbling_window(self, time_column: str, days: int) -> "EventFlow":
        """Assign each event to a tumbling event-time window.

        Adds a ``window_start`` column: the first day of the event's
        ``days``-wide window (windows are aligned to the day-number epoch).
        """
        self._require_streaming_side()
        if days <= 0:
            raise SqlError("window width must be positive")
        if "window_start" in self._derived:
            raise SqlError("the flow already has windows assigned")
        ts = self._bind(time_column)
        if ts.dtype is not DataType.DATE:
            raise SqlError("tumbling_window() needs a DATE column")
        width = ConstExpr(days, DataType.INT)
        window = BinaryExpr("-", ts, BinaryExpr("%", ts, width))
        iu = IU("window_start", DataType.DATE)
        self._plan = LogicalMap(self._plan, [(iu, window)])
        self._derived["window_start"] = iu
        self._labels[self._plan.op_id] = f"window[{days}d]#{self._next_stage()}"
        return self

    def aggregate(self, by: list[str], totals: dict[str, str]) -> "EventFlow":
        """Windowed/keyed aggregation; ends the per-event part of the flow."""
        self._require_streaming_side()
        if self._agg_scope is not None:
            raise SqlError("aggregate() may only appear once")
        keys = []
        scope: dict[str, IU] = {}
        for name in by:
            iu = self._resolve_name(name)
            key_iu = IU(name, iu.dtype)
            keys.append((key_iu, IURef(iu)))
            scope[name] = key_iu

        aggregates: list[AggCall] = []
        post_map: list[tuple[IU, Expr]] = []

        for name, text in totals.items():
            node = parse_expression(text)
            if not isinstance(node, ast.FuncCall) or node.name not in _AGG_FUNCS:
                raise SqlError(f"totals[{name!r}] must be an aggregate call")
            if len(node.args) != 1:
                raise SqlError(f"{node.name} takes exactly one argument")
            arg_node = node.args[0]
            if node.name == "count" and isinstance(arg_node, ast.Star):
                call = AggCall("count", None, IU(name, DataType.INT))
                aggregates.append(call)
                scope[name] = call.output
                continue
            arg = self._binder.bind_scalar(arg_node)
            if node.name == "avg":
                total = AggCall("sum", arg, IU(f"{name}_sum", arg.dtype))
                count = AggCall("count", arg, IU(f"{name}_n", DataType.INT))
                aggregates.extend((total, count))
                if keys:
                    # grouped: every emitted group has a count >= 1
                    ratio = BinaryExpr(
                        "/", IURef(total.output), IURef(count.output)
                    )
                else:
                    from repro.sql.binder import _guarded_avg

                    ratio = _guarded_avg(
                        IURef(total.output), IURef(count.output)
                    )
                out = IU(name, DataType.FLOAT)
                post_map.append((out, ratio))
                scope[name] = out
                continue
            kind = node.name
            call = AggCall(kind, arg,
                           IU(name, DataType.INT if kind == "count" else arg.dtype))
            aggregates.append(call)
            scope[name] = call.output

        self._plan = LogicalGroupBy(self._plan, keys, aggregates)
        self._labels[self._plan.op_id] = f"window-agg#{self._next_stage()}"
        if post_map:
            self._plan = LogicalMap(self._plan, post_map)
            self._labels[self._plan.op_id] = f"finalize#{self._next_stage()}"
        self._agg_scope = scope
        return self

    def having(self, condition: str) -> "EventFlow":
        """Filter aggregated groups by a boolean expression.

        Only names from the aggregate scope (group keys and totals) are
        visible; per-event columns are gone once the flow has aggregated.
        """
        self._require_streaming_side()
        if self._agg_scope is None:
            raise SqlError("having() requires aggregate() first")
        binder = _ScopeBinder(self._db.catalog, self._agg_scope)
        bound = binder.bind_scalar(parse_expression(condition))
        if bound.dtype is not DataType.BOOL:
            raise SqlError("having() needs a boolean expression")
        self._plan = LogicalFilter(self._plan, bound)
        self._labels[self._plan.op_id] = f"having#{self._next_stage()}"
        return self

    def order_by(self, *names: str, descending: bool = False) -> "EventFlow":
        self._require_streaming_side()
        keys = [(IURef(self._resolve_name(n)), not descending) for n in names]
        self._plan = LogicalSort(self._plan, keys)
        self._labels[self._plan.op_id] = f"order#{self._next_stage()}"
        return self

    def limit(self, count: int) -> "EventFlow":
        self._require_streaming_side()
        self._plan = LogicalLimit(self._plan, count)
        self._labels[self._plan.op_id] = f"take[{count}]#{self._next_stage()}"
        return self

    def select(self, *names: str) -> "EventFlow":
        """Choose the sink's columns (defaults to the whole current scope)."""
        self._require_streaming_side()
        self._output_columns = [(n, self._resolve_name(n)) for n in names]
        return self

    # -- execution ------------------------------------------------------------

    def _seal(self) -> LogicalOutput:
        if self._sealed_root is not None:
            return self._sealed_root
        columns = self._output_columns
        if columns is None:
            scope = self._name_scope()
            if not scope:
                raise SqlError("select() is required when nothing is derived")
            columns = list(scope.items())
        root = LogicalOutput(self._plan, columns)
        self._labels[root.op_id] = "sink"
        self._sealed_root = root
        return root

    def _lower(self):
        root = self._seal()
        model = CardinalityModel()
        physical = plan_physical(root, model)
        for op in physical.walk():
            label = self._labels.get(op.logical_id)
            if label is not None:
                op.label_override = label
        bound = _FlowPlan(root, model)
        return bound, physical

    def explain(self) -> str:
        from repro.plan.physical import explain_physical

        _, physical = self._lower()
        return explain_physical(physical)

    def run(self, workers: int = 1):
        bound, physical = self._lower()
        return self._db.execute_plan(bound, physical, workers=workers)

    def run_interpreted(self):
        """Reference-interpreter execution (the testing oracle)."""
        from repro.plan.interpret import Interpreter

        _, physical = self._lower()
        raw = Interpreter().run(physical)
        rows = [self._db._decode_row(r, physical.columns) for r in raw]
        return rows

    def profile(self, config=None, workers: int = 1, repeats: int = 1):
        bound, physical = self._lower()
        return self._db.profile_plan(
            bound, physical, config=config, workers=workers, repeats=repeats
        )


class _FlowPlan:
    """The ``bound``-shaped object the engine's plan entry points expect."""

    def __init__(self, plan: LogicalOutput, model: CardinalityModel):
        self.plan = plan
        self.model = model
