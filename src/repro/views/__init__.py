"""repro.views: incremental materialized views (a DBSP-style serving tier).

Standing queries — SQL or EventFlow — compile to delta circuits that are
maintained incrementally from Z-set (row, ±weight) batches and pushed to
session subscribers; maintenance cost is charged to the serve tier's VM
workers under per-view tags.  See docs/VIEWS.md.
"""

from repro.errors import ViewError
from repro.views.circuit import Circuit, CostMeter, TopKState, build_circuit
from repro.views.service import (
    VIEW_QUERY_ID_BASE,
    MaterializedView,
    Subscription,
    ViewService,
    ViewUpdate,
)
from repro.views.zset import ZSet

__all__ = [
    "Circuit",
    "CostMeter",
    "MaterializedView",
    "Subscription",
    "TopKState",
    "VIEW_QUERY_ID_BASE",
    "ViewError",
    "ViewService",
    "ViewUpdate",
    "ZSet",
    "build_circuit",
]
