"""Delta circuits: DBSP-style incremental operators over logical plans.

``build_circuit`` compiles a bound logical plan (the same trees the SQL
binder and the EventFlow DSL produce) into a tree of *delta operators*.
Each operator consumes its children's delta Z-sets for one batch and
produces its own output delta, maintaining whatever internal state the
incremental rule needs:

- **linear** operators (filter, map, projection) pass deltas through
  unchanged in shape: ``ΔQ(I) = Q(ΔI)``;
- **joins** use the bilinear chain rule ``Δ(A⋈B) = ΔA⋈B + A⋈ΔB + ΔA⋈ΔB``,
  implemented as ``A_old⋈ΔB`` then ``ΔA⋈B_new`` over maintained key
  indexes (the two forms are equal);
- **group-by** keeps mergeable per-group partials — weighted COUNT,
  weighted SUM, and value→weight counters for MIN/MAX so retractions can
  resurface the runner-up — and emits retract/insert pairs when a group's
  output row changes, deleting groups whose weight reaches zero;
- **ORDER BY/LIMIT** is handled above the circuit by :class:`TopKState`,
  a maintained top-K that refills from the full state Z-set whenever a
  retraction touches the visible window.

Every operator charges its work to a :class:`CostMeter` in simulated
instructions/loads; the serve tier replays those charges onto real VM
workers (``Machine.advance_external``) so maintenance cost shows up in
the PMU sample stream under the view's tag.
"""

from __future__ import annotations

import heapq
from bisect import insort

from repro.catalog.schema import DataType
from repro.errors import ViewError
from repro.plan.expr import AggCall, Expr, IU
from repro.plan.interpret import evaluate
from repro.plan.logical import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalMap,
    LogicalOperator,
    LogicalOutput,
    LogicalScan,
    LogicalSemiJoin,
    LogicalSort,
)
from repro.views.zset import ZSet

# -- the maintenance cost model ----------------------------------------------
# Simulated instructions charged per unit of work.  These are the same
# order of magnitude as the compiled engine's per-row costs so the
# incremental-vs-reexecute ratio in BENCH_views.json reflects work
# actually avoided, not a biased meter.
COST_BATCH = 32  # fixed dispatch cost per operator per non-empty batch
COST_INPUT_ROW = 12  # project a table delta row into the scan layout
COST_FILTER_ROW = 18  # evaluate one predicate
COST_MAP_ROW = 14  # per row, plus COST_MAP_EXPR per computed column
COST_MAP_EXPR = 10
COST_JOIN_PROBE = 28  # hash the key and probe/update one index
COST_JOIN_EMIT = 20  # materialize one joined row
COST_SEMI_PROBE = 30
COST_GROUP_UPDATE = 36  # fold one delta row into group partials
COST_GROUP_AGG = 10  # per aggregate slot folded
COST_GROUP_EMIT = 24  # re-emit one changed group
COST_TOPK_ROW = 22  # sift one delta row against the window
COST_TOPK_REFILL = 6  # per state row scanned during a refill


class CostMeter:
    """Per-operator instruction/load tally for one maintenance batch."""

    def __init__(self):
        self.instructions: dict[int, int] = {}
        self.loads: dict[int, int] = {}

    def charge(self, node: "DeltaOperator", instructions: int,
               loads: int = 0) -> None:
        if instructions:
            self.instructions[node.node_id] = (
                self.instructions.get(node.node_id, 0) + instructions
            )
        if loads:
            self.loads[node.node_id] = self.loads.get(node.node_id, 0) + loads

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions.values())

    @property
    def total_loads(self) -> int:
        return sum(self.loads.values())


def _env(layout_ids: list[int], row: tuple) -> dict[int, object]:
    return dict(zip(layout_ids, row))


class DeltaOperator:
    """One node of a delta circuit."""

    kind = "delta"

    def __init__(self, node_id: int, label: str, layout: list[IU]):
        self.node_id = node_id
        self.label = label
        self.layout = layout
        self.layout_ids = [iu.id for iu in layout]

    def process(self, meter: CostMeter) -> ZSet:
        raise NotImplementedError


class DeltaInput(DeltaOperator):
    """Projects full-table delta rows into the scan's referenced columns."""

    kind = "input"

    def __init__(self, node_id: int, label: str, scan: LogicalScan):
        super().__init__(node_id, label, scan.output_ius())
        self.table = scan.table.name
        schema = scan.table.schema
        self.positions = [
            schema.index_of(scan.column_of(iu)) for iu in scan.output_ius()
        ]
        self.pending = ZSet()

    def process(self, meter: CostMeter) -> ZSet:
        delta = ZSet()
        if not self.pending:
            return delta
        positions = self.positions
        n = 0
        for row, weight in self.pending.items():
            delta.add(tuple(row[i] for i in positions), weight)
            n += 1
        self.pending = ZSet()
        meter.charge(self, COST_BATCH + n * COST_INPUT_ROW, loads=n)
        return delta


class DeltaFilter(DeltaOperator):
    kind = "filter"

    def __init__(self, node_id: int, label: str, child: DeltaOperator,
                 condition: Expr):
        super().__init__(node_id, label, child.layout)
        self.child = child
        self.condition = condition

    def process(self, meter: CostMeter) -> ZSet:
        delta = self.child.process(meter)
        out = ZSet()
        if not delta:
            return out
        n = 0
        for row, weight in delta.items():
            n += 1
            if evaluate(self.condition, _env(self.layout_ids, row)):
                out.add(row, weight)
        meter.charge(self, COST_BATCH + n * COST_FILTER_ROW, loads=n)
        return out


class DeltaMap(DeltaOperator):
    kind = "map"

    def __init__(self, node_id: int, label: str, child: DeltaOperator,
                 computed: list[tuple[IU, Expr]]):
        super().__init__(node_id, label,
                         child.layout + [iu for iu, _ in computed])
        self.child = child
        self.computed = computed

    def process(self, meter: CostMeter) -> ZSet:
        delta = self.child.process(meter)
        out = ZSet()
        if not delta:
            return out
        child_ids = self.child.layout_ids
        n = 0
        for row, weight in delta.items():
            env = _env(child_ids, row)
            extra = tuple(evaluate(expr, env) for _, expr in self.computed)
            out.add(row + extra, weight)
            n += 1
        per_row = COST_MAP_ROW + COST_MAP_EXPR * len(self.computed)
        meter.charge(self, COST_BATCH + n * per_row, loads=n)
        return out


class DeltaJoin(DeltaOperator):
    """Inner equi-join maintained by the bilinear chain rule."""

    kind = "join"

    def __init__(self, node_id: int, label: str, left: DeltaOperator,
                 right: DeltaOperator, node: LogicalJoin):
        super().__init__(node_id, label, left.layout + right.layout)
        self.left = left
        self.right = right
        self.left_keys = node.left_keys
        self.right_keys = node.right_keys
        self.residual = node.residual
        # key -> {row: weight}; rows are stored in child layout
        self.left_index: dict[tuple, dict[tuple, int]] = {}
        self.right_index: dict[tuple, dict[tuple, int]] = {}

    def _update(self, index: dict, key: tuple, row: tuple,
                weight: int) -> None:
        bucket = index.setdefault(key, {})
        total = bucket.get(row, 0) + weight
        if total == 0:
            del bucket[row]
            if not bucket:
                del index[key]
        else:
            bucket[row] = total

    def _emit(self, out: ZSet, left_row: tuple, right_row: tuple,
              weight: int) -> bool:
        row = left_row + right_row
        if self.residual is not None:
            if not evaluate(self.residual, _env(self.layout_ids, row)):
                return False
        out.add(row, weight)
        return True

    def process(self, meter: CostMeter) -> ZSet:
        dl = self.left.process(meter)
        dr = self.right.process(meter)
        out = ZSet()
        if not dl and not dr:
            return out
        left_ids = self.left.layout_ids
        right_ids = self.right.layout_ids
        probes = emits = 0
        # Δ(A⋈B) = A_old⋈ΔB, then ΔA⋈B_new — together they cover
        # ΔA⋈B + A⋈ΔB + ΔA⋈ΔB exactly once.
        for rrow, rweight in dr.items():
            renv = _env(right_ids, rrow)
            key = tuple(evaluate(k, renv) for k in self.right_keys)
            probes += 1
            for lrow, lweight in self.left_index.get(key, {}).items():
                emits += 1
                self._emit(out, lrow, rrow, lweight * rweight)
        for rrow, rweight in dr.items():
            renv = _env(right_ids, rrow)
            key = tuple(evaluate(k, renv) for k in self.right_keys)
            self._update(self.right_index, key, rrow, rweight)
        for lrow, lweight in dl.items():
            lenv = _env(left_ids, lrow)
            key = tuple(evaluate(k, lenv) for k in self.left_keys)
            probes += 1
            for rrow, rweight in self.right_index.get(key, {}).items():
                emits += 1
                self._emit(out, lrow, rrow, lweight * rweight)
            self._update(self.left_index, key, lrow, lweight)
        meter.charge(
            self,
            COST_BATCH + probes * COST_JOIN_PROBE + emits * COST_JOIN_EMIT,
            loads=probes + emits,
        )
        return out


class DeltaSemiJoin(DeltaOperator):
    """Semi/anti join maintained via per-left-row match counts.

    The right side of a semi-join stays a non-negative Z-set (it derives
    from base tables), so a left row is *matched* exactly when its summed
    matching right weight is positive; output flips on 0-crossings.
    """

    kind = "semijoin"

    def __init__(self, node_id: int, label: str, left: DeltaOperator,
                 right: DeltaOperator, node: LogicalSemiJoin):
        super().__init__(node_id, label, left.layout)
        self.left = left
        self.right = right
        self.left_keys = node.left_keys
        self.right_keys = node.right_keys
        self.anti = node.anti
        self.residual = node.residual
        self.left_weights: dict[tuple, int] = {}
        self.left_matches: dict[tuple, int] = {}
        self.left_by_key: dict[tuple, set[tuple]] = {}
        self.right_index: dict[tuple, dict[tuple, int]] = {}

    def _matches(self, left_row: tuple, right_row: tuple) -> bool:
        if self.residual is None:
            return True
        env = _env(self.left.layout_ids, left_row)
        env.update(_env(self.right.layout_ids, right_row))
        return bool(evaluate(self.residual, env))

    def _emitted(self, matched_weight: int) -> bool:
        alive = matched_weight > 0
        return alive != self.anti

    def process(self, meter: CostMeter) -> ZSet:
        dl = self.left.process(meter)
        dr = self.right.process(meter)
        out = ZSet()
        if not dl and not dr:
            return out
        left_ids = self.left.layout_ids
        right_ids = self.right.layout_ids
        probes = 0
        # 1. fold the right delta into the index and flip existing left
        #    rows whose match count crosses zero
        for rrow, rweight in dr.items():
            renv = _env(right_ids, rrow)
            key = tuple(evaluate(k, renv) for k in self.right_keys)
            probes += 1
            bucket = self.right_index.setdefault(key, {})
            total = bucket.get(rrow, 0) + rweight
            if total == 0:
                del bucket[rrow]
                if not bucket:
                    del self.right_index[key]
            else:
                bucket[rrow] = total
            for lrow in self.left_by_key.get(key, ()):  # existing left rows
                if not self._matches(lrow, rrow):
                    continue
                probes += 1
                before = self.left_matches.get(lrow, 0)
                after = before + rweight
                self.left_matches[lrow] = after
                was = self._emitted(before)
                now = self._emitted(after)
                if was != now:
                    weight = self.left_weights.get(lrow, 0)
                    out.add(lrow, weight if now else -weight)
        # 2. fold the left delta against the *new* right state
        for lrow, lweight in dl.items():
            lenv = _env(left_ids, lrow)
            key = tuple(evaluate(k, lenv) for k in self.left_keys)
            probes += 1
            known = lrow in self.left_weights
            if not known:
                matched = 0
                for rrow, rweight in self.right_index.get(key, {}).items():
                    probes += 1
                    if self._matches(lrow, rrow):
                        matched += rweight
                self.left_matches[lrow] = matched
                self.left_by_key.setdefault(key, set()).add(lrow)
            total = self.left_weights.get(lrow, 0) + lweight
            if self._emitted(self.left_matches.get(lrow, 0)):
                out.add(lrow, lweight)
            if total == 0:
                self.left_weights.pop(lrow, None)
                self.left_matches.pop(lrow, None)
                bucket = self.left_by_key.get(key)
                if bucket is not None:
                    bucket.discard(lrow)
                    if not bucket:
                        del self.left_by_key[key]
            else:
                self.left_weights[lrow] = total
        meter.charge(self, COST_BATCH + probes * COST_SEMI_PROBE,
                     loads=probes)
        return out


class _GroupState:
    __slots__ = ("weight", "slots")

    def __init__(self, aggregates: list[AggCall]):
        self.weight = 0
        # count/sum -> running weighted total; min/max -> value→weight map
        self.slots: list = [
            {} if agg.kind in ("min", "max") else 0 for agg in aggregates
        ]


class DeltaGroupBy(DeltaOperator):
    """Incremental hash aggregation with retraction support.

    Matches the reference interpreter exactly: COUNT counts rows, a
    keyless aggregate over an empty input emits one all-zeros row, MIN/MAX
    of an empty-but-alive group decode as 0, and every live group carries
    output weight 1.
    """

    kind = "groupby"

    def __init__(self, node_id: int, label: str, child: DeltaOperator,
                 node: LogicalGroupBy):
        super().__init__(node_id, label, node.output_ius())
        self.child = child
        self.keys = node.keys
        self.aggregates = node.aggregates
        self.groups: dict[tuple, _GroupState] = {}
        self.emitted: dict[tuple, tuple] = {}
        self._primed = bool(self.keys)  # keyless views emit zeros up front

    def _zeros_row(self) -> tuple:
        return tuple(0 for _ in self.aggregates)

    def _output_row(self, key: tuple, state: _GroupState) -> tuple | None:
        if state.weight <= 0:
            # a dead group vanishes — except the keyless aggregate, which
            # degenerates to one all-zeros row (interpreter semantics)
            return self._zeros_row() if not self.keys else None
        values = []
        for agg, slot in zip(self.aggregates, state.slots):
            if agg.kind in ("count", "sum"):
                values.append(slot)
            else:
                live = [v for v, w in slot.items() if w > 0]
                if not live:
                    values.append(0)
                elif agg.kind == "min":
                    values.append(min(live))
                else:
                    values.append(max(live))
        return key + tuple(values)

    def process(self, meter: CostMeter) -> ZSet:
        delta = self.child.process(meter)
        out = ZSet()
        if self._primed is False:
            # first batch of a keyless view: seed the zeros row so the
            # subscriber's initial snapshot matches an empty re-execution
            self._primed = True
            self.groups[()] = _GroupState(self.aggregates)
            row = self._zeros_row()
            self.emitted[()] = row
            out.add(row, 1)
        if not delta:
            return out
        child_ids = self.child.layout_ids
        touched: set[tuple] = set()
        n = 0
        for row, weight in delta.items():
            n += 1
            env = _env(child_ids, row)
            key = tuple(evaluate(expr, env) for _, expr in self.keys)
            state = self.groups.get(key)
            if state is None:
                state = self.groups[key] = _GroupState(self.aggregates)
            touched.add(key)
            state.weight += weight
            for i, agg in enumerate(self.aggregates):
                if agg.kind == "count":
                    state.slots[i] += weight
                    continue
                value = evaluate(agg.arg, env)
                if agg.kind == "sum":
                    state.slots[i] += weight * value
                else:
                    counts = state.slots[i]
                    total = counts.get(value, 0) + weight
                    if total == 0:
                        del counts[value]
                    else:
                        counts[value] = total
        emitsteps = 0
        for key in touched:
            state = self.groups[key]
            new_row = self._output_row(key, state)
            old_row = self.emitted.get(key)
            if new_row != old_row:
                emitsteps += 1
                if old_row is not None:
                    out.add(old_row, -1)
                if new_row is not None:
                    out.add(new_row, 1)
                    self.emitted[key] = new_row
                else:
                    del self.emitted[key]
            if state.weight <= 0 and self.keys:
                del self.groups[key]
        per_row = COST_GROUP_UPDATE + COST_GROUP_AGG * len(self.aggregates)
        meter.charge(
            self,
            COST_BATCH + n * per_row + emitsteps * COST_GROUP_EMIT,
            loads=n + emitsteps,
        )
        return out


class TopKState(DeltaOperator):
    """A maintained ORDER BY … LIMIT window with refill on retraction.

    ``entries`` is the visible window: up to ``limit`` ``(sort_key, row)``
    pairs (rows repeated per weight).  Insertions sift in directly; a
    retraction that touches the window (or arrives while it is full)
    forces a refill scan over the full state Z-set, because evicted rows
    beyond the boundary are not retained.
    """

    kind = "topk"

    def __init__(self, node_id: int, label: str, layout: list[IU],
                 sort_keys: list[tuple[Expr, bool]], limit: int):
        super().__init__(node_id, label, layout)
        self.sort_keys = sort_keys
        self.limit = limit
        self.entries: list[tuple[tuple, tuple]] = []
        self.refills = 0

    def sort_key(self, row: tuple) -> tuple:
        env = _env(self.layout_ids, row)
        # all encoded values are numeric, so descending is negation —
        # the same trick PhysicalSort uses
        return tuple(
            value if ascending else -value
            for value, ascending in (
                (evaluate(expr, env), asc) for expr, asc in self.sort_keys
            )
        )

    def visible(self) -> list[tuple]:
        return [row for _, row in self.entries]

    def update(self, delta: ZSet, state: ZSet, meter: CostMeter) -> None:
        """Fold ``delta`` into the window; ``state`` is the post-delta
        full result Z-set (the refill source)."""
        if not delta:
            return
        need_refill = False
        n = 0
        for row, weight in delta.items():
            n += 1
            if need_refill:
                continue
            key = self.sort_key(row)
            if weight > 0:
                for _ in range(min(weight, self.limit)):
                    if (len(self.entries) >= self.limit
                            and (key, row) >= self.entries[-1]):
                        break
                    insort(self.entries, (key, row))
                del self.entries[self.limit:]
            else:
                was_full = len(self.entries) >= self.limit
                removed = self._remove(key, row, -weight)
                # losing a visible row while rows beyond the boundary may
                # exist means the runner-up must be rediscovered
                if removed and was_full:
                    need_refill = True
        meter.charge(self, COST_BATCH + n * COST_TOPK_ROW, loads=n)
        if need_refill:
            self.refill(state, meter)

    def _remove(self, key: tuple, row: tuple, count: int) -> int:
        removed = 0
        entry = (key, row)
        while count > 0 and entry in self.entries:
            self.entries.remove(entry)
            removed += 1
            count -= 1
        return removed

    def refill(self, state: ZSet, meter: CostMeter) -> None:
        self.refills += 1
        expanded = (
            (self.sort_key(row), row)
            for row, weight in state.items()
            for _ in range(min(weight, self.limit))
        )
        self.entries = heapq.nsmallest(self.limit, expanded)
        meter.charge(self, len(state) * COST_TOPK_REFILL, loads=len(state))


class Circuit:
    """A compiled delta circuit plus its read-side ordering spec."""

    def __init__(self, root: DeltaOperator, inputs: list[DeltaInput],
                 nodes: list[DeltaOperator],
                 sort_keys: list[tuple[Expr, bool]] | None,
                 limit: int | None, output_columns: list[tuple[str, IU]],
                 topk: TopKState | None = None):
        self.root = root
        self.inputs = inputs
        self.nodes = nodes
        self.sort_keys = sort_keys
        self.limit = limit
        self.topk = topk
        self.output_columns = output_columns
        layout_ids = root.layout_ids
        self.projection = [layout_ids.index(iu.id) for _, iu in output_columns]
        self.tables = sorted({inp.table for inp in inputs})

    def feed(self, table: str, delta: ZSet) -> bool:
        """Stage a base-table delta (full schema layout) for the next
        ``process`` call; returns whether the circuit reads the table."""
        fed = False
        for inp in self.inputs:
            if inp.table == table:
                inp.pending.merge(delta)
                fed = True
        return fed

    def process(self, meter: CostMeter) -> ZSet:
        return self.root.process(meter)


def _unsupported(node: LogicalOperator) -> ViewError:
    return ViewError(
        f"operator {type(node).__name__} is not maintainable incrementally"
    )


def build_circuit(root: LogicalOutput,
                  labels: dict[int, str] | None = None) -> Circuit:
    """Compile a bound plan into a delta circuit.

    ORDER BY/LIMIT are only supported as the outermost operators (they
    become the maintained top-K); a LIMIT without an ORDER BY is refused
    because its contents are nondeterministic under maintenance.
    """
    labels = labels or {}
    inputs: list[DeltaInput] = []
    nodes: list[DeltaOperator] = []
    counter = iter(range(1, 1 << 16))

    def label_of(node: LogicalOperator, default: str) -> str:
        return labels.get(node.op_id, default)

    def build(node: LogicalOperator) -> DeltaOperator:
        node_id = next(counter)
        if isinstance(node, LogicalScan):
            op = DeltaInput(node_id, label_of(node, f"input {node.alias}"),
                            node)
            inputs.append(op)
        elif isinstance(node, LogicalFilter):
            op = DeltaFilter(node_id, label_of(node, "filter"),
                             build(node.child), node.condition)
        elif isinstance(node, LogicalMap):
            op = DeltaMap(node_id, label_of(node, "map"),
                          build(node.child), node.computed)
        elif isinstance(node, LogicalJoin):
            op = DeltaJoin(node_id, label_of(node, "join"),
                           build(node.left), build(node.right), node)
        elif isinstance(node, LogicalSemiJoin):
            name = "antijoin" if node.anti else "semijoin"
            op = DeltaSemiJoin(node_id, label_of(node, name),
                               build(node.left), build(node.right), node)
        elif isinstance(node, LogicalGroupBy):
            op = DeltaGroupBy(node_id, label_of(node, "groupby"),
                              build(node.child), node)
        elif isinstance(node, (LogicalSort, LogicalLimit)):
            raise ViewError(
                "ORDER BY/LIMIT may only appear at the top of a view query"
            )
        else:
            raise _unsupported(node)
        nodes.append(op)
        return op

    node = root.child
    limit: int | None = None
    sort_keys: list[tuple[Expr, bool]] | None = None
    if isinstance(node, LogicalLimit):
        limit = node.count
        node = node.child
    if isinstance(node, LogicalSort):
        sort_keys = node.keys
        node = node.child
    if limit is not None and sort_keys is None:
        raise ViewError(
            "LIMIT without ORDER BY is not maintainable: the kept rows "
            "would be nondeterministic under incremental updates"
        )
    circuit_root = build(node)
    topk = None
    if limit is not None:
        topk = TopKState(next(counter), f"top-{limit}", circuit_root.layout,
                         sort_keys, limit)
        nodes.append(topk)
    return Circuit(circuit_root, inputs, nodes, sort_keys, limit,
                   root.columns, topk=topk)
