"""The reactive serving tier: materialized views over a QueryService.

Clients register standing queries — SQL text or a sealed
:class:`~repro.streaming.flow.EventFlow` — as named materialized views.
The tier compiles each into a delta circuit (:mod:`repro.views.circuit`),
applies base-table delta batches to every registered circuit, and pushes
consolidated, decoded deltas to subscribers through the serve tier's
session manager.  One circuit amortizes over arbitrarily many
subscribers: maintenance cost is paid once per batch, not per client.

Maintenance runs *on the serve tier's VM workers*: every delta operator's
metered cost is replayed onto the least-loaded worker through a
maintenance machine (``Machine.advance_external``) whose tag register
carries ``(view_id, circuit_node_id)``, so the continuous profiler's
sample stream attributes maintenance per view and per delta operator —
the fifth abstraction level (view → circuit → operator → IR → VM) —
and per-view costs land in ``profile_snapshot()`` next to query costs.

Base tables are bags: a delta that would drive any row's weight negative
is rejected atomically (no partial application), so every circuit input
stays a non-negative Z-set and MIN/MAX retraction stays well-defined.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.catalog.schema import DataType, encode_date, encode_decimal
from repro.errors import CatalogError, ReproError, ViewError
from repro.plan.interpret import evaluate
from repro.profiling.tagging import TaggingDictionary
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.views.circuit import Circuit, CostMeter, build_circuit
from repro.views.zset import ZSet
from repro.vm.isa import REG_TAG, CodeRegion, Opcode, Program
from repro.vm.machine import Machine
from repro.vm.memory import Memory

#: view ids live far above any serve query id so the tag register's
#: query half can carry either without collision
VIEW_QUERY_ID_BASE = 1 << 20

#: NOP slots per maintenance pseudo-function: the address span fake
#: sample IPs rotate through (same trick as the kernel stubs)
_FN_SLOTS = 16


@dataclass
class ViewUpdate:
    """One message on a subscription's queue.

    ``kind`` is ``"snapshot"`` (rows are the full materialized state, in
    view order) or ``"delta"`` (rows are ``(row, ±weight)`` pairs).
    Versions are contiguous per view: a subscriber that has applied the
    snapshot at version V and every delta V+1..W holds exactly the
    maintained state at version W — no gaps, no duplicates.
    """

    view: str
    version: int
    kind: str
    rows: list


@dataclass
class Subscription:
    """A session's standing interest in one view."""

    view: str
    session: object
    updates: list[ViewUpdate] = field(default_factory=list)
    active: bool = True

    def pull(self) -> list[ViewUpdate]:
        """Drain the pending update queue."""
        drained, self.updates = self.updates, []
        return drained


class MaterializedView:
    """One registered standing query and its maintained state."""

    def __init__(self, name: str, query_id: int, sql: str | None,
                 circuit: Circuit, owner: "ViewService"):
        self.name = name
        self.query_id = query_id
        self.sql = sql
        self.circuit = circuit
        self._owner = owner
        self.state = ZSet()  # full result in the circuit root's layout
        self.version = 0
        self.visible: Counter = Counter()  # decoded projected bag
        self.subscribers: list[Subscription] = []
        self.batches = 0
        self.instructions = 0
        self.cycles = 0
        self.loads = 0
        self.samples = 0

    # -- read side -----------------------------------------------------------

    def _project_decode(self, row: tuple) -> tuple:
        db = self._owner.db
        projection = self.circuit.projection
        columns = self.circuit.output_columns
        return tuple(
            db._decode_value(row[index], iu.dtype)
            for index, (_, iu) in zip(projection, columns)
        )

    def _ordered_rows(self) -> list[tuple]:
        topk = self.circuit.topk
        if topk is not None:
            return topk.visible()
        rows = list(self.state.rows())
        sort_keys = self.circuit.sort_keys
        if sort_keys:
            ids = self.circuit.root.layout_ids

            def key(row: tuple) -> tuple:
                env = dict(zip(ids, row))
                return tuple(
                    value if ascending else -value
                    for value, ascending in (
                        (evaluate(expr, env), asc) for expr, asc in sort_keys
                    )
                )

            rows.sort(key=lambda row: (key(row), row))
        return rows

    def materialize(self) -> list[tuple]:
        """The current full result: decoded, projected, in view order."""
        return [self._project_decode(row) for row in self._ordered_rows()]

    @property
    def columns(self) -> list[str]:
        return [name for name, _ in self.circuit.output_columns]


class ViewService:
    """Registers, maintains, and serves materialized views."""

    def __init__(self, service):
        self.service = service
        self.db = service.db
        self.views: dict[str, MaterializedView] = {}
        self.tags = TaggingDictionary()
        self.batches = 0
        self.maintenance_instructions = 0
        # base-table contents as Z-sets (encoded rows, full schema layout),
        # seeded lazily from the catalog, advanced by every applied delta
        self._tables: dict[str, ZSet] = {}
        # maintenance machines: one per worker index, shared by all views,
        # stacks in a private arena so the service's execution epochs
        # (mark/release over db.memory) never see maintenance allocations
        self._machines: dict[int, Machine] = {}
        self._memory = Memory(1 << 18)
        self._program = Program()
        self._functions: dict[str, object] = {}
        self._next_view = 0

    def __len__(self) -> int:
        return len(self.views)

    # -- registration --------------------------------------------------------

    def register(self, name: str, query) -> MaterializedView:
        """Register ``query`` (SQL text or an EventFlow) as view ``name``.

        The view is populated immediately: the current base-table contents
        are pushed through the fresh circuit as its first delta batch, and
        that initial load is metered as maintenance like any other batch.
        """
        if name in self.views:
            raise ViewError(f"view {name!r} is already registered")
        labels: dict[int, str] = {}
        sql: str | None = None
        if isinstance(query, str):
            sql = query
            stmt = parse(query)
            if _has_scalar_subquery(stmt):
                raise ViewError(
                    "scalar subqueries freeze a point-in-time value and "
                    "cannot be maintained incrementally"
                )
            bound = Binder(self.db.catalog).bind(stmt)
            root = bound.plan
        else:
            root = query._seal()
            labels = query._labels
        circuit = build_circuit(root, labels)
        self._next_view += 1
        view = MaterializedView(
            name, VIEW_QUERY_ID_BASE + self._next_view, sql, circuit, self
        )
        self.views[name] = view
        self.tags.register_view(
            view.query_id, name,
            {node.node_id: node.label for node in circuit.nodes},
        )
        # initial load: current table contents as the first delta
        initial = {
            table: self._table_zset(table).copy() for table in circuit.tables
        }
        self._maintain(view, initial, force=True)
        return view

    def view(self, name: str) -> MaterializedView:
        view = self.views.get(name)
        if view is None:
            raise ViewError(f"no view named {name!r}")
        return view

    def unregister(self, name: str) -> None:
        view = self.view(name)
        for subscription in view.subscribers:
            subscription.active = False
        del self.views[name]

    # -- subscriptions -------------------------------------------------------

    def subscribe(self, name: str, session) -> Subscription:
        """Attach ``session`` to a view; the first queued update is a
        consistent snapshot at the view's current version, and every
        subsequent batch enqueues the delta with the next version."""
        view = self.view(name)
        if isinstance(session, str):
            session = self.service.sessions.open(session)
        if session.closed:
            raise ViewError(
                f"session {session.name!r} is closed; reopen it to subscribe"
            )
        subscription = Subscription(view.name, session)
        subscription.updates.append(
            ViewUpdate(view.name, view.version, "snapshot", view.materialize())
        )
        view.subscribers.append(subscription)
        return subscription

    def _push(self, view: MaterializedView, update: ViewUpdate) -> None:
        live = []
        manager = self.service.sessions
        for subscription in view.subscribers:
            session = subscription.session
            # a closed session — or one superseded by a reopen — stops
            # receiving; the reopened session must resubscribe and gets a
            # fresh snapshot (no gap, no duplicate)
            if session.closed or manager.sessions.get(session.name) is not session:
                subscription.active = False
                continue
            subscription.updates.append(update)
            live.append(subscription)
        view.subscribers = live

    # -- delta application ---------------------------------------------------

    def apply(self, deltas: dict[str, list]) -> int:
        """Apply one batch of base-table deltas to every registered view.

        ``deltas`` maps table name to a list of ``(row, weight)`` pairs
        with decoded values (strings as text, dates as ISO text, decimals
        as floats) in schema column order.  Returns the batch number.

        Validation is atomic: if any row of any table would end up with
        negative weight, the whole batch is rejected and no view moves.
        """
        encoded: dict[str, ZSet] = {}
        for table_name, changes in deltas.items():
            try:
                table = self.db.catalog.table(table_name)
            except CatalogError as exc:
                raise ViewError(str(exc)) from exc
            zset = ZSet()
            for row, weight in changes:
                if not isinstance(weight, int) or weight == 0:
                    raise ViewError(
                        f"delta weight must be a non-zero int, got {weight!r}"
                    )
                zset.add(self._encode_row(table, row), weight)
            encoded[table_name] = zset
        for table_name, zset in encoded.items():
            base = self._table_zset(table_name)
            for row, weight in zset.items():
                if base.weight(row) + weight < 0:
                    raise ViewError(
                        f"delta drives a {table_name} row below weight zero "
                        f"(base tables are bags): {row!r}"
                    )
        for table_name, zset in encoded.items():
            self._table_zset(table_name).merge(zset)
        self.batches += 1
        for view in self.views.values():
            self._maintain(view, encoded)
        return self.batches

    def _maintain(self, view: MaterializedView,
                  encoded: dict[str, ZSet], force: bool = False) -> None:
        fed = False
        for table_name, zset in encoded.items():
            if view.circuit.feed(table_name, zset):
                fed = True
        meter = CostMeter()
        delta_out = view.circuit.process(meter) if (fed or force) else ZSet()
        view.state.merge(delta_out)
        topk = view.circuit.topk
        if topk is not None:
            old_bag = Counter(
                view._project_decode(row) for row in topk.visible()
            )
            topk.update(delta_out, view.state, meter)
            new_bag = Counter(
                view._project_decode(row) for row in topk.visible()
            )
            change = Counter(new_bag)
            change.subtract(old_bag)
            sub_delta = [
                (row, weight) for row, weight in change.items() if weight
            ]
            view.visible = new_bag
        else:
            change = Counter()
            for row, weight in delta_out.items():
                change[view._project_decode(row)] += weight
            sub_delta = [
                (row, weight) for row, weight in change.items() if weight
            ]
            view.visible.update(change)
            view.visible = +view.visible
        view.version += 1
        view.batches += 1
        self._charge(view, meter)
        self._push(
            view, ViewUpdate(view.name, view.version, "delta", sub_delta)
        )

    # -- worker charging -----------------------------------------------------

    def _function(self, kind: str):
        info = self._functions.get(kind)
        if info is None:
            body = [(Opcode.NOP, 0, 0, 0)] * _FN_SLOTS
            info = self._program.append_function(
                f"ivm.{kind}", body, CodeRegion.RUNTIME
            )
            self._functions[kind] = info
        return info

    def _machine_for(self, worker) -> Machine:
        machine = self._machines.get(worker.index)
        if machine is None:
            config = self.service._profiler_config
            machine = Machine(
                self._program,
                self._memory,
                pmu_config=config.pmu_config() if config is not None else None,
                fast_vm=False,
            )
            self._machines[worker.index] = machine
        return machine

    def _charge(self, view: MaterializedView, meter: CostMeter) -> None:
        """Replay the metered maintenance cost onto real VM workers.

        Each circuit node's work goes to the currently least-loaded
        worker (the same policy the serve scheduler uses for query units)
        with the tag register carrying (view_id, node_id), so PMU samples
        taken during the charge attribute to the view and operator."""
        service = self.service
        profiler = service.profiler
        node_by_id = {node.node_id: node for node in view.circuit.nodes}
        for node_id in sorted(meter.instructions):
            node = node_by_id[node_id]
            instructions = meter.instructions[node_id]
            loads = meter.loads.get(node_id, 0)
            cycles = instructions  # the maintenance cost model is CPI 1
            worker = min(
                service.workers, key=lambda w: (w.state.cycles, w.index)
            )
            machine = self._machine_for(worker)
            worker.bind(machine)
            machine.regs[REG_TAG] = TaggingDictionary.encode_tag(
                view.query_id, node.node_id
            )
            sample_start = len(worker.samples.samples)
            machine.advance_external(
                self._function(node.kind), cycles, instructions, loads=loads
            )
            new_samples = worker.samples.samples[sample_start:]
            view.instructions += instructions
            view.cycles += cycles
            view.loads += loads
            view.samples += len(new_samples)
            self.maintenance_instructions += instructions
            if profiler is not None:
                profiler.observe_view_unit(
                    view.query_id, view.name, node.label,
                    new_samples, instructions, cycles, loads=loads,
                )
        if profiler is not None:
            profiler.note_view_batch(view.query_id, view.name)

    # -- encoding ------------------------------------------------------------

    def _table_zset(self, name: str) -> ZSet:
        zset = self._tables.get(name)
        if zset is None:
            table = self.db.catalog.table(name)
            zset = ZSet()
            for row in zip(*table.columns):
                zset.add(row, 1)
            self._tables[name] = zset
        return zset

    def _encode_row(self, table, row) -> tuple:
        schema = table.schema
        if len(row) != len(schema):
            raise ViewError(
                f"{table.name}: delta row has {len(row)} values, "
                f"schema has {len(schema)}"
            )
        out = []
        for value, column in zip(row, schema.columns):
            dtype = column.dtype
            try:
                if dtype is DataType.STRING:
                    # the dictionary is frozen at finalize; deltas may only
                    # use strings the database has seen
                    out.append(self.db.catalog.dictionary.id_of(value))
                elif dtype is DataType.DATE:
                    out.append(
                        value if isinstance(value, int) else encode_date(value)
                    )
                elif dtype is DataType.DECIMAL:
                    out.append(encode_decimal(value))
                elif dtype is DataType.BOOL:
                    out.append(int(bool(value)))
                else:
                    if not isinstance(value, int) or isinstance(value, bool):
                        raise ViewError(
                            f"{table.name}.{column.name} expects an int, "
                            f"got {value!r}"
                        )
                    out.append(value)
            except (CatalogError, ReproError) as exc:
                if isinstance(exc, ViewError):
                    raise
                raise ViewError(
                    f"cannot encode {table.name}.{column.name}={value!r}: "
                    f"{exc}"
                ) from exc
        return tuple(out)

    # -- reporting -----------------------------------------------------------

    def maintenance_report(self) -> str:
        """Per-view maintenance cost, resolved through the view dimension
        of the tagging dictionary."""
        lines = [
            "view maintenance",
            f"  batches applied     {self.batches}",
            f"  views registered    {len(self.views)}",
            f"  total instructions  {self.maintenance_instructions}",
        ]
        for view in sorted(
            self.views.values(), key=lambda v: -v.instructions
        ):
            lines.append(
                f"  view {view.name} (id {view.query_id})  "
                f"v{view.version}, {len(view.state)} rows, "
                f"{view.instructions} instructions, {view.samples} samples"
            )
            operators = self.tags.view_operators.get(view.query_id, {})
            profiler = self.service.profiler
            stats = (
                profiler.view_stats.get(view.query_id)
                if profiler is not None else None
            )
            if stats is not None:
                for label, count in stats.operator_instructions.most_common():
                    lines.append(f"    {count:8d}  {label}")
            else:
                for node_id, label in sorted(operators.items()):
                    lines.append(f"    node {node_id:3d}  {label}")
        return "\n".join(lines)


def _has_scalar_subquery(node) -> bool:
    """AST walk for ``(select ...)`` used as a scalar value — EXISTS/IN
    subqueries are fine (the binder unnests them to semi-joins)."""
    import dataclasses as _dc

    if isinstance(node, ast.ScalarSubquery):
        return True
    if isinstance(node, (list, tuple)):
        return any(_has_scalar_subquery(item) for item in node)
    if _dc.is_dataclass(node) and not isinstance(node, type):
        return any(
            _has_scalar_subquery(getattr(node, f.name))
            for f in _dc.fields(node)
        )
    return False
