"""Z-sets: the weighted-bag algebra incremental view maintenance runs on.

A Z-set maps rows (tuples in some fixed column layout) to signed integer
weights.  A database table is a Z-set whose weights are all positive; a
*delta* is a Z-set whose positive entries are insertions and negative
entries retractions.  Applying a delta is plain addition, and every
DBSP-style maintenance rule in :mod:`repro.views.circuit` is phrased as
Z-set arithmetic, so consolidation (dropping zero-weight entries) is the
only normalization the tier ever needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class ZSet:
    """A mapping from row tuples to non-zero signed weights."""

    __slots__ = ("_weights",)

    def __init__(self, entries: Iterable[tuple[tuple, int]] = ()):
        self._weights: dict[tuple, int] = {}
        for row, weight in entries:
            self.add(row, weight)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Iterable[tuple]) -> "ZSet":
        zset = cls()
        for row in rows:
            zset.add(row, 1)
        return zset

    def add(self, row: tuple, weight: int) -> None:
        """Accumulate ``weight`` for ``row``; zero entries consolidate away."""
        if weight == 0:
            return
        total = self._weights.get(row, 0) + weight
        if total == 0:
            self._weights.pop(row, None)
        else:
            self._weights[row] = total

    def merge(self, other: "ZSet") -> None:
        for row, weight in other.items():
            self.add(row, weight)

    # -- inspection ----------------------------------------------------------

    def items(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._weights.items())

    def weight(self, row: tuple) -> int:
        return self._weights.get(row, 0)

    def rows(self) -> Iterator[tuple]:
        """Every row expanded by its weight (bag semantics).

        Raises if any weight is negative: expanding a mixed delta into a
        bag is a bug, not a representable state.
        """
        for row, weight in self._weights.items():
            if weight < 0:
                raise ValueError(f"negative weight {weight} for {row!r}")
            for _ in range(weight):
                yield row

    def __len__(self) -> int:
        """Distinct rows (not the bag cardinality)."""
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ZSet):
            return NotImplemented
        return self._weights == other._weights

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{row!r}:{weight:+d}" for row, weight in self._weights.items()
        )
        return f"ZSet({{{entries}}})"

    @property
    def positive(self) -> bool:
        return all(weight > 0 for weight in self._weights.values())

    def copy(self) -> "ZSet":
        zset = ZSet()
        zset._weights = dict(self._weights)
        return zset
