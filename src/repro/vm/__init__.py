"""Simulated execution substrate: a cycle-accounted register machine.

This package stands in for the real x86 CPU + Linux perf/PEBS stack the paper
profiles on.  It provides:

- :mod:`repro.vm.memory` — flat 64-bit-word memory with a bump allocator,
- :mod:`repro.vm.isa` — the native instruction set the backend targets,
- :mod:`repro.vm.cache` — a set-associative cache hierarchy for load costs,
- :mod:`repro.vm.branch` — a 2-bit branch predictor,
- :mod:`repro.vm.machine` — the interpreter with cycle accounting,
- :mod:`repro.vm.translate` — basic-block translation for the fast engine,
- :mod:`repro.vm.tiering` — profile-driven tier-2 trace specialization,
- :mod:`repro.vm.pmu` — the PEBS-like sampling unit,
- :mod:`repro.vm.kernel` — "syscalls" executing in a kernel code region,
- :mod:`repro.vm.costs` — every calibration constant in one place.
"""

from repro.vm.isa import CodeRegion, FunctionInfo, Opcode, Program
from repro.vm.kernel import Kernel
from repro.vm.machine import Machine, MachineState
from repro.vm.memory import Memory
from repro.vm.pmu import Event, PmuConfig, Sample, SampleBuffer
from repro.vm.tiering import TieringController
from repro.vm.translate import Translation, translate_program, translation_for

__all__ = [
    "TieringController",
    "CodeRegion",
    "Event",
    "FunctionInfo",
    "Kernel",
    "Machine",
    "MachineState",
    "Memory",
    "Opcode",
    "PmuConfig",
    "Program",
    "Sample",
    "SampleBuffer",
    "Translation",
    "translate_program",
    "translation_for",
]
