"""A per-IP 2-bit saturating-counter branch predictor.

Conditional branch cost depends on predictability; this is the mechanism
behind the paper's optimizer-developer use case (Fig. 10/11), where a plan
whose probe filter flips from always-match to never-match mid-scan wins over
one with a data-dependent branch.
"""

from __future__ import annotations


class BranchPredictor:
    """2-bit counters: 0,1 predict not-taken; 2,3 predict taken."""

    def __init__(self):
        self.counters: dict[int, int] = {}
        self.branches = 0
        self.mispredicts = 0

    def record(self, ip: int, taken: bool) -> bool:
        """Record the outcome of the branch at ``ip``; return True on miss."""
        self.branches += 1
        counter = self.counters.get(ip, 1)
        predicted_taken = counter >= 2
        if taken:
            if counter < 3:
                self.counters[ip] = counter + 1
        else:
            if counter > 0:
                self.counters[ip] = counter - 1
        miss = predicted_taken != taken
        if miss:
            self.mispredicts += 1
        return miss
