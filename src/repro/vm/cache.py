"""Set-associative cache hierarchy used to cost memory accesses.

Two inclusive levels with LRU replacement.  The interpreter calls
:meth:`CacheHierarchy.access` for every load and store; the return value is
the load latency in cycles, and miss counters feed the PMU's cache events.
"""

from __future__ import annotations

from repro.vm import costs


class CacheLevel:
    """One set-associative, LRU cache level tracking tags only."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = costs.CACHE_LINE):
        self.line_bits = line_bytes.bit_length() - 1
        nsets = size_bytes // (line_bytes * ways)
        if nsets & (nsets - 1):
            raise ValueError("number of sets must be a power of two")
        self.set_mask = nsets - 1
        self.ways = ways
        self.sets: list[list[int]] = [[] for _ in range(nsets)]

    def access(self, line: int) -> bool:
        """Touch ``line``; return True on hit.  Misses allocate the line."""
        tags = self.sets[line & self.set_mask]
        if line in tags:
            if tags[0] != line:
                tags.remove(line)
                tags.insert(0, line)
            return True
        tags.insert(0, line)
        if len(tags) > self.ways:
            tags.pop()
        return False

    def flush(self) -> None:
        for tags in self.sets:
            tags.clear()


class CacheHierarchy:
    """L1 + L2 with miss counting; returns per-access latency."""

    def __init__(self):
        self.l1 = CacheLevel(costs.L1_SIZE, costs.L1_WAYS)
        self.l2 = CacheLevel(costs.L2_SIZE, costs.L2_WAYS)
        self.accesses = 0
        self.l1_misses = 0
        self.l2_misses = 0
        self._line_bits = self.l1.line_bits

    def access(self, addr: int) -> int:
        """Access byte address ``addr``; return latency in cycles."""
        self.accesses += 1
        line = addr >> self._line_bits
        if self.l1.access(line):
            return costs.LAT_L1
        self.l1_misses += 1
        if self.l2.access(line):
            return costs.LAT_L2
        self.l2_misses += 1
        return costs.LAT_MEM

    def access_uncounted(self, addr: int) -> int:
        """:meth:`access` without the ``accesses`` bump.

        The fast VM inlines the L1 MRU-hit path into translated blocks and
        batches the ``accesses`` counter per block; only non-MRU accesses
        come through here, so the bump must not be repeated.
        """
        line = addr >> self._line_bits
        if self.l1.access(line):
            return costs.LAT_L1
        self.l1_misses += 1
        if self.l2.access(line):
            return costs.LAT_L2
        self.l2_misses += 1
        return costs.LAT_MEM

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
