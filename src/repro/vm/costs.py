"""Every calibration constant of the simulated machine, in one place.

The paper's evaluation numbers (35 % sampling overhead at one sample per
5000 events, +3 % for register payloads, 529 % for call-stack sampling,
2.8 % for reserving a tag register) come from real Skylake-X hardware.  Our
substitute machine reproduces the *mechanisms* — per-sample record cost,
payload-dependent cost, interrupt-driven stack walks, register-pressure
spills — and these constants calibrate the mechanisms into the paper's
regime.  They are deliberately centralized so a reader can audit what is
model and what is mechanism.
"""

from __future__ import annotations

# --- core pipeline ------------------------------------------------------

CYCLES_ALU = 1  # add/sub/logic/compare/mov
CYCLES_MUL = 3
CYCLES_DIV = 20  # sdiv/srem/fdiv — TPC-H Q1-style avg() chains hurt, as in Listing 1
CYCLES_CRC32 = 3  # x86 crc32 is 3 cycles latency
CYCLES_BRANCH = 1
CYCLES_BRANCH_MISS = 14  # mispredict penalty
CYCLES_CALL = 2
CYCLES_RET = 2
# Stores retire at a fixed cost: a store buffer absorbs the write, so the
# retiring instruction never waits for the cache hierarchy (write-allocate
# still *updates* cache state — the interpreter and the fast VM both call
# ``caches.access`` on the store path and deliberately discard the returned
# latency).  Loads, by contrast, pay the returned hit-level latency because
# the dependent instruction needs the value.  Covered by
# ``test_store_cost_is_fixed_but_allocates`` in tests/test_vm_machine.py.
CYCLES_STORE = 1

# --- memory hierarchy ---------------------------------------------------

CACHE_LINE = 64
L1_SIZE = 32 * 1024
L1_WAYS = 8
L2_SIZE = 1024 * 1024
L2_WAYS = 16
LAT_L1 = 3
LAT_L2 = 14
LAT_MEM = 80

# --- PEBS-like sampling unit -------------------------------------------
#
# A PEBS record write is a microcode assist; recording more state costs
# more.  Call-stack capture cannot be done by the PEBS assist — it needs an
# interrupt plus a frame walk, which is the order-of-magnitude gap the
# paper measures (529 % vs 38 %).

PEBS_RECORD_CYCLES = 1680  # base cost: IP + TSC record
PEBS_REGS_EXTRA_CYCLES = 150  # additionally latching the register file
PEBS_MEMADDR_EXTRA_CYCLES = 40  # linear-address reconstruction
INTERRUPT_CYCLES = 23000  # PMI + kernel entry/exit for call-stack mode
CALLSTACK_FRAME_CYCLES = 1200  # per frame walked and copied
PEBS_BUFFER_SAMPLES = 2048  # records before the kernel must drain
BUFFER_FLUSH_PER_SAMPLE = 90  # kernel copy-out cost per drained record

# --- kernel "syscalls" --------------------------------------------------

KERNEL_CALL_BASE = 90  # trap + dispatch
KERNEL_ALLOC_PER_KB = 4  # page-zeroing style per-KiB cost
KERNEL_SORT_PER_ELEM = 9  # comparison sort amortized per n*log(n) step
KERNEL_OUTPUT_PER_VALUE = 5  # copying a result value to the client

# --- fast VM (template-translated basic blocks) --------------------------
#
# The translated engine retires whole basic blocks at a time and pays the
# PMU countdown in block-sized chunks; a block only runs fast when the
# countdown exceeds the block's worst-case event bound, otherwise the
# interpreter finishes the sampling window exactly.  Below this period the
# bounds reject nearly every block and the per-block checks are pure
# overhead, so the fast engine disarms itself entirely.

FAST_VM_MIN_PERIOD = 128
FAST_VM_MAX_BLOCK = 48  # cap so worst-case block bounds stay << period
# With the PMU unarmed there is no countdown to protect, so unarmed
# translations may grow much longer traces — fewer driver transitions on
# hot loops (the instruction-budget check stays conservative either way)
FAST_VM_MAX_BLOCK_PLAIN = 512

# --- tiered adaptive execution (repro.vm.tiering) ------------------------
#
# Tier 2 recompiles hot programs with profile-specialized traces: deferred
# counter/register sync (flushed only at real exits and guard misses),
# branch-direction fast paths from the rolling predictor snapshot, and
# larger superblock trees.  Promotion triggers once a program has retired
# this many simulated instructions under observation; the larger tree
# limits apply only to tier-2 translations, whose compile time is paid
# exclusively for regions the profile already proved hot.

TIER2_HOT_INSTRUCTIONS = 200_000
TIER2_TREE_BUDGET = 6144
TIER2_TREE_DEPTH = 16
# A block the profile saw entered at least this often is "hot" even when
# it is not a loop head — typically one link of a per-row probe chain.
# Tier 2 grows superblock trees at hot blocks too, inlining the chain's
# continuations so one driver dispatch covers the whole per-row path.
TIER2_HOT_BLOCK_ENTRIES = 128

# --- sampling defaults (the paper's experimental setup) ------------------

DEFAULT_PERIOD_CYCLES = 5000  # one sample per 5000 cycles (0.7 MHz at 3.5 GHz)
DEFAULT_PERIOD_INSTRUCTIONS = 5000  # INST_RETIRED-style uniform sampling
DEFAULT_PERIOD_LOADS = 1000  # MEM_INST_RETIRED.ALL_LOADS every 1000 loads

# The paper samples INST_RETIRED.PREC_DIST, yet its Listing 1 shows 32 % of
# samples on a single load: on real hardware the recorded IPs are biased
# toward stalled (long-latency) instructions.  Our machine's retirement is
# idealized, so uniform instruction sampling would lose that bias — the
# engine therefore samples CPU cycles by default, which reproduces the
# stall-biased IP distribution (see DESIGN.md).
