"""The native instruction set targeted by the backend.

This is the lowest abstraction level of the stack (the paper's "machine
instructions").  It is a 16-register, 64-bit word machine.  Instructions are
stored as plain 4-tuples ``(opcode, a, b, c)`` for interpreter speed; this
module provides the symbolic layer on top: opcode constants, assembly from
labelled form, function/region bookkeeping, and a disassembler.

Register convention (enforced by the backend, not the hardware):

====  =======================================================
r0    first argument / return value
r1-5  further arguments
r13   spill/reload scratch
r14   **tag register** when Register Tagging reserves it
r15   stack pointer (spill slots grow downward)
====  =======================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import BackendError

NUM_REGS = 16
REG_ARG0 = 0
REG_RET = 0
REG_SCRATCH = 13
REG_TAG = 14
REG_SP = 15

# The tag register carries a (query-id, component-tag) pair when several
# queries share the same compiled code on the same workers (repro.serve):
# the low 32 bits hold the component tag written by ``settag`` lowering,
# the high bits hold the query id installed by the scheduler at morsel
# dispatch.  Single-query runs leave the high half zero, so the packing is
# invisible to the classic profiling path.
TAG_QUERY_SHIFT = 32
TAG_TASK_MASK = (1 << TAG_QUERY_SHIFT) - 1


class Opcode:
    """Opcode namespace; values are plain ints for dispatch speed."""

    NOP = 0
    MOV = 1  # rd <- ra
    MOVI = 2  # rd <- imm
    LOAD = 3  # rd <- mem[ra + imm]
    STORE = 4  # mem[ra + imm] <- rb
    ADD = 5
    SUB = 6
    MUL = 7
    SDIV = 8
    SREM = 9
    AND = 10
    OR = 11
    XOR = 12
    SHL = 13
    SHR = 14
    ROTR = 15
    ADDI = 16  # rd <- ra + imm
    MULI = 17
    ANDI = 18
    SHLI = 19
    SHRI = 20
    XORI = 21
    CMPEQ = 22
    CMPNE = 23
    CMPLT = 24
    CMPLE = 25
    CMPGT = 26
    CMPGE = 27
    CMPEQI = 28
    CMPNEI = 29
    CMPLTI = 30
    CMPLEI = 31
    CMPGTI = 32
    CMPGEI = 33
    FDIV = 34
    CVTIF = 35  # int -> float
    CVTFI = 36  # float -> int (truncate)
    CRC32 = 37  # rd <- crc32 mix of ra, rb
    JMP = 38  # -> imm
    BRZ = 39  # if ra == 0 -> imm
    BRNZ = 40  # if ra != 0 -> imm
    CALL = 41  # call function starting at imm
    RET = 42
    KCALL = 43  # kernel call, imm = kernel function id
    HALT = 44
    SELECT = 45  # rd <- rb if ra != 0 else rc
    MIN = 46
    MAX = 47


OPCODE_NAMES = {v: k.lower() for k, v in vars(Opcode).items() if not k.startswith("_")}

_BINOPS = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SDIV, Opcode.SREM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.ROTR,
    Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPGT,
    Opcode.CMPGE, Opcode.FDIV, Opcode.CRC32, Opcode.MIN, Opcode.MAX,
}
_BINOPS_IMM = {
    Opcode.ADDI, Opcode.MULI, Opcode.ANDI, Opcode.SHLI, Opcode.SHRI,
    Opcode.XORI, Opcode.CMPEQI, Opcode.CMPNEI, Opcode.CMPLTI, Opcode.CMPLEI,
    Opcode.CMPGTI, Opcode.CMPGEI,
}
BRANCH_OPS = {Opcode.JMP, Opcode.BRZ, Opcode.BRNZ}
COND_BRANCH_OPS = {Opcode.BRZ, Opcode.BRNZ}
# Ops after which straight-line decoding must stop: control leaves the
# block (branches, calls, returns) or re-enters the host (kernel calls).
TERMINATOR_OPS = {
    Opcode.JMP, Opcode.BRZ, Opcode.BRNZ,
    Opcode.CALL, Opcode.RET, Opcode.KCALL, Opcode.HALT,
}


def block_leaders(program: "Program") -> set[int]:
    """IPs where a basic block can begin (the translator's decode step).

    Leaders are function entries, the program entry, branch and call
    targets, and every fall-through successor of a control transfer —
    the classic two-pass basic-block decoding.  Out-of-range targets are
    dropped; executing them still faults through the interpreter path.
    """
    code = program.code
    leaders = {program.entry}
    for info in program.functions:
        leaders.add(info.start)
    for ip, ins in enumerate(code):
        op = ins[0]
        if op == Opcode.JMP:
            leaders.add(ins[1])
        elif op == Opcode.BRZ or op == Opcode.BRNZ:
            leaders.add(ins[2])
            leaders.add(ip + 1)
        elif op == Opcode.CALL:
            leaders.add(ins[1])
            leaders.add(ip + 1)
        elif op == Opcode.KCALL or op == Opcode.RET or op == Opcode.HALT:
            leaders.add(ip + 1)
    return {ip for ip in leaders if 0 <= ip < len(code)}


class CodeRegion(enum.Enum):
    """Which part of the address space an instruction lives in.

    The profiler's attribution buckets (Table 2) are defined in these terms:
    QUERY code is generated per query and covered by the Tagging Dictionary,
    RUNTIME is the pre-compiled library (shared source locations, covered via
    Register Tagging), SYSLIB is deliberately untagged (the paper's ~2 %
    unattributed system-library samples), KERNEL is the simulated OS.
    """

    QUERY = "query"
    RUNTIME = "runtime"
    SYSLIB = "syslib"
    KERNEL = "kernel"


@dataclass
class FunctionInfo:
    """Metadata for one native function in a program image."""

    name: str
    start: int
    end: int  # exclusive
    region: CodeRegion

    def contains(self, ip: int) -> bool:
        return self.start <= ip < self.end


@dataclass
class Label:
    """A symbolic branch target used before assembly."""

    name: str


@dataclass
class Program:
    """A fully assembled native program image.

    ``code`` holds instruction tuples; IPs are indices into it.  ``debug``
    maps each QUERY/RUNTIME ip to the id of the IR instruction it was
    selected from — the DWARF-equivalent the final lowering step provides.
    """

    code: list[tuple] = field(default_factory=list)
    functions: list[FunctionInfo] = field(default_factory=list)
    debug: dict[int, int] = field(default_factory=dict)
    entry: int = 0

    def function_at(self, ip: int) -> FunctionInfo | None:
        for info in self.functions:
            if info.contains(ip):
                return info
        return None

    def function_named(self, name: str) -> FunctionInfo:
        for info in self.functions:
            if info.name == name:
                return info
        raise BackendError(f"no native function named {name!r}")

    def region_at(self, ip: int) -> CodeRegion | None:
        info = self.function_at(ip)
        return info.region if info else None

    def append_function(
        self,
        name: str,
        instructions: list[tuple],
        region: CodeRegion,
        debug: dict[int, int] | None = None,
    ) -> FunctionInfo:
        """Append an already-assembled instruction list as a new function."""
        start = len(self.code)
        self.code.extend(instructions)
        info = FunctionInfo(name, start, len(self.code), region)
        self.functions.append(info)
        if debug:
            for offset, ir_id in debug.items():
                self.debug[start + offset] = ir_id
        return info

    def disassemble(self, start: int = 0, end: int | None = None) -> str:
        end = len(self.code) if end is None else end
        lines = []
        for ip in range(start, end):
            info = self.function_at(ip)
            if info and info.start == ip:
                lines.append(f"{info.name}: ; [{info.region.value}]")
            lines.append(f"  {ip:6d}  {format_instruction(self.code[ip])}")
        return "\n".join(lines)


def format_instruction(ins: tuple) -> str:
    op, a, b, c = ins
    name = OPCODE_NAMES.get(op, f"op{op}")
    if op == Opcode.NOP or op == Opcode.RET or op == Opcode.HALT:
        return name
    if op == Opcode.MOV:
        return f"{name} r{a}, r{b}"
    if op == Opcode.MOVI:
        return f"{name} r{a}, {b}"
    if op == Opcode.LOAD:
        return f"{name} r{a}, [r{b}+{c}]"
    if op == Opcode.STORE:
        return f"{name} [r{a}+{c}], r{b}"
    if op in _BINOPS:
        return f"{name} r{a}, r{b}, r{c}"
    if op in _BINOPS_IMM:
        return f"{name} r{a}, r{b}, {c}"
    if op in (Opcode.CVTIF, Opcode.CVTFI):
        return f"{name} r{a}, r{b}"
    if op == Opcode.JMP:
        return f"{name} {a}"
    if op in (Opcode.BRZ, Opcode.BRNZ):
        return f"{name} r{a}, {b}"
    if op == Opcode.CALL:
        return f"{name} {a}"
    if op == Opcode.KCALL:
        return f"{name} {a}"
    if op == Opcode.SELECT:
        return f"{name} r{a}, r{b}, r{c[0]}, r{c[1]}" if isinstance(c, tuple) else f"{name} r{a}, ..."
    return f"{name} {a}, {b}, {c}"


def assemble(items: list) -> tuple[list[tuple], dict[str, int]]:
    """Resolve :class:`Label` markers in a mixed instruction/label list.

    Returns the flat instruction list and a map from label name to offset
    (function-relative).  Branch targets given as label *names* (strings) in
    the immediate slot are patched to offsets.
    """
    offsets: dict[str, int] = {}
    flat: list = []
    for item in items:
        if isinstance(item, Label):
            if item.name in offsets:
                raise BackendError(f"duplicate label {item.name!r}")
            offsets[item.name] = len(flat)
        else:
            flat.append(item)

    resolved: list[tuple] = []
    for ins in flat:
        op, a, b, c = ins
        if op == Opcode.JMP and isinstance(a, str):
            if a not in offsets:
                raise BackendError(f"undefined label {a!r}")
            ins = (op, offsets[a], b, c)
        elif op in (Opcode.BRZ, Opcode.BRNZ) and isinstance(b, str):
            if b not in offsets:
                raise BackendError(f"undefined label {b!r}")
            ins = (op, a, offsets[b], c)
        resolved.append(ins)
    return resolved, offsets


def rebase(instructions: list[tuple], base: int) -> list[tuple]:
    """Shift function-relative branch targets to absolute IPs at ``base``."""
    out = []
    for ins in instructions:
        op, a, b, c = ins
        if op == Opcode.JMP:
            ins = (op, a + base, b, c)
        elif op in (Opcode.BRZ, Opcode.BRNZ):
            ins = (op, a, b + base, c)
        out.append(ins)
    return out
