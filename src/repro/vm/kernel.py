"""The simulated operating-system kernel.

Generated code reaches the kernel through ``KCALL`` instructions.  Kernel
work is performed natively in Python but is cycle- and event-accounted
through :meth:`Machine.advance_external`, so profiling samples can land in
the kernel's code region — the "Kernel Tasks" bucket of the paper's Table 2
(memory allocation being the canonical example).

Kernel services:

====  ============  ====================================================
id    name          semantics
====  ============  ====================================================
0     alloc         r0 = size in bytes  ->  r0 = address
1     sort          r0 = row base, r1 = row count, r2 = sort desc id
2     output_row    r0 = pointer to values, r1 = value count
====  ============  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VMError
from repro.vm import costs
from repro.vm.isa import CodeRegion, FunctionInfo, Opcode, Program

K_ALLOC = 0
K_SORT = 1
K_OUTPUT_ROW = 2

_KERNEL_FN_NAMES = {K_ALLOC: "kernel_alloc", K_SORT: "kernel_sort", K_OUTPUT_ROW: "kernel_output_row"}
_KERNEL_FN_SLOTS = 8  # fake instruction slots per kernel function


@dataclass(frozen=True)
class SortKey:
    """One key column of a sort descriptor."""

    offset_words: int
    ascending: bool = True


@dataclass(frozen=True)
class SortDescriptor:
    """Row layout and key list for a kernel sort call."""

    row_words: int
    keys: tuple[SortKey, ...]
    limit: int | None = None


def install_kernel_stubs(program: Program) -> dict[int, FunctionInfo]:
    """Append fake code ranges for kernel functions to ``program``.

    The bodies are NOPs that are never executed; they only give kernel work
    an address range for sample attribution.
    """
    infos = {}
    for kid, name in _KERNEL_FN_NAMES.items():
        body = [(Opcode.NOP, 0, 0, 0)] * _KERNEL_FN_SLOTS
        infos[kid] = program.append_function(name, body, CodeRegion.KERNEL)
    return infos


class Kernel:
    """Dispatcher for kernel calls; owns sort descriptors."""

    def __init__(self, memory, fn_infos: dict[int, FunctionInfo]):
        self.memory = memory
        self.fn_infos = fn_infos
        self.sort_descriptors: list[SortDescriptor] = []
        self.alloc_count = 0
        self.sort_count = 0

    def register_sort(self, descriptor: SortDescriptor) -> int:
        self.sort_descriptors.append(descriptor)
        return len(self.sort_descriptors) - 1

    def call(self, machine, kid: int) -> None:
        if kid == K_ALLOC:
            self._alloc(machine)
        elif kid == K_SORT:
            self._sort(machine)
        elif kid == K_OUTPUT_ROW:
            self._output_row(machine)
        else:
            raise VMError(f"unknown kernel call {kid}")

    def _alloc(self, machine) -> None:
        size = machine.regs[0]
        if size < 0:
            raise VMError(f"kernel alloc of negative size {size}")
        addr = self.memory.alloc(size, "kernel_alloc")
        machine.regs[0] = addr
        self.alloc_count += 1
        cycles = costs.KERNEL_CALL_BASE + costs.KERNEL_ALLOC_PER_KB * (size // 1024 + 1)
        machine.advance_external(self.fn_infos[K_ALLOC], cycles, cycles, 0)

    def _sort(self, machine) -> None:
        base, count, desc_id = machine.regs[0], machine.regs[1], machine.regs[2]
        try:
            desc = self.sort_descriptors[desc_id]
        except IndexError:
            raise VMError(f"unknown sort descriptor {desc_id}") from None
        words = self.memory.words
        row_words = desc.row_words
        first = base >> 3
        rows = [
            tuple(words[first + i * row_words : first + (i + 1) * row_words])
            for i in range(count)
        ]

        def sort_key(row):
            key = []
            for part in desc.keys:
                value = row[part.offset_words]
                if not part.ascending:
                    value = -value if isinstance(value, (int, float)) else value
                key.append(value)
            return tuple(key)

        rows.sort(key=sort_key)
        for i, row in enumerate(rows):
            words[first + i * row_words : first + (i + 1) * row_words] = list(row)
        self.sort_count += 1
        comparisons = max(1, count) * max(1, count.bit_length())
        cycles = costs.KERNEL_CALL_BASE + costs.KERNEL_SORT_PER_ELEM * comparisons
        loads = count * row_words
        machine.advance_external(self.fn_infos[K_SORT], cycles, cycles, loads, base)
        machine.regs[0] = count

    def _output_row(self, machine) -> None:
        ptr, nvalues = machine.regs[0], machine.regs[1]
        first = ptr >> 3
        machine.output.append(tuple(self.memory.words[first : first + nvalues]))
        cycles = costs.KERNEL_CALL_BASE + costs.KERNEL_OUTPUT_PER_VALUE * nvalues
        machine.advance_external(self.fn_infos[K_OUTPUT_ROW], cycles, cycles, nvalues, ptr)
