"""The simulated CPU: a cycle-accounted register-machine interpreter.

The machine executes :class:`~repro.vm.isa.Program` images, models the
memory hierarchy and branch prediction for costs, and drives the PEBS-like
PMU.  It is single-core, matching the paper's single-threaded evaluation
setup.

Numeric semantics: registers and memory words hold Python ints (i64) or
floats (f64).  ``MUL`` wraps to 64-bit two's-complement (hash mixing relies
on it); ``ADD``/``SUB`` do not wrap — the engine never generates code whose
sums approach 2^63.  ``SDIV``/``SREM`` truncate toward zero like C.
"""

from __future__ import annotations

import struct as _struct
import warnings

from dataclasses import dataclass

from repro.errors import VMError
from repro.vm import costs
from repro.vm.branch import BranchPredictor
from repro.vm.cache import CacheHierarchy
from repro.vm.isa import (
    NUM_REGS,
    REG_TAG,
    TAG_QUERY_SHIFT,
    TAG_TASK_MASK,
    FunctionInfo,
    Opcode,
    Program,
)
from repro.vm.memory import Memory
from repro.vm.pmu import Event, PmuConfig, Sample, SampleBuffer

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63

STACK_BYTES = 1 << 16


def _sdiv(a: int, b: int) -> int:
    """C-style signed division truncating toward zero."""
    if b == 0:
        raise ZeroDivisionError("sdiv by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def crc32_mix(a, b) -> int:
    """The CRC32 instruction's 64-bit mix (shared with constant folding).

    Float operands are hashed by their IEEE-754 bit pattern, as hardware
    hashing a spilled xmm value would see them (group-by keys can be
    floating point, e.g. ``SELECT DISTINCT price / 10.0``)."""
    if isinstance(a, float):
        a = _struct.unpack("<q", _struct.pack("<d", a))[0]
    if isinstance(b, float):
        b = _struct.unpack("<q", _struct.pack("<d", b))[0]
    a &= _MASK64
    b &= _MASK64
    z = (a ^ (b * 0x9E3779B97F4A7C15)) & _MASK64
    z ^= z >> 29
    z = (z * 0xBF58476D1CE4E5B9) & _MASK64
    return z ^ (z >> 32)


@dataclass
class MachineState:
    """Counters exposed for reports and tests."""

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    kernel_cycles: int = 0
    sampling_cycles: int = 0
    samples_taken: int = 0
    max_instructions: int = 500_000_000


class Machine:
    """Interpreter for native programs with optional PMU sampling."""

    def __init__(
        self,
        program: Program,
        memory: Memory,
        pmu_config: PmuConfig | None = None,
        kernel=None,
        fast_vm: bool = True,
        tiering=None,
    ):
        self.program = program
        self.memory = memory
        self.regs: list = [0] * NUM_REGS
        self.caches = CacheHierarchy()
        self.predictor = BranchPredictor()
        self.state = MachineState()
        self.pmu_config = pmu_config
        self.samples = SampleBuffer()
        self.call_stack: list[int] = []
        self.output: list[tuple] = []
        self.kernel = kernel
        self._countdown = pmu_config.period if pmu_config else 0
        self._jitter = 0x5DEECE66D  # deterministic LCG state
        self._external_ip_rotor = 0
        # Fast mode runs template-translated basic blocks (repro.vm.translate)
        # and falls back to the interpreter whenever a block-sized countdown
        # step could cross a sample boundary.  Below FAST_VM_MIN_PERIOD the
        # fallback would dominate, so the fast engine disarms itself and
        # every instruction runs interpreted.
        self._fast_blocks = None
        # Tiered execution bookkeeping (repro.vm.tiering): ``tier`` is the
        # machine's *effective* tier — 0 pure interpreter, 1 template
        # superblocks, 2 profile-specialized traces.  ``_tier_guard`` is
        # the test-only forced-deopt trip read by guard-hook translations.
        self.tier = 0
        self._tiering = tiering
        self._tier1_blocks = None
        self._tier_epoch = -1
        self._tier_guard = False
        self._tier2_guarded = False
        self.deopt_events: list[int] = []
        # per-block dispatch counts, filled by the tiered driver only
        self.block_entries: dict[int, int] = {}
        if fast_vm and (
            pmu_config is None or pmu_config.period >= costs.FAST_VM_MIN_PERIOD
        ):
            from repro.vm.translate import translation_for

            event = pmu_config.event if pmu_config is not None else None
            # armed translations may grow superblock trees up to this
            # worst-case event bound: 1/8 of the period keeps the driver's
            # admission check passing for ~7/8 of every sampling window
            # (larger caps inflate the per-pass bound that gates loop
            # re-entry and measure slower, not faster)
            bound_cap = (
                pmu_config.period >> 3 if pmu_config is not None else 0
            )
            self._fast_blocks = translation_for(
                program, event, bound_cap
            ).blocks
            self.tier = 1
        elif fast_vm:
            # auto-disable used to be silent: benchmarks could think they
            # measured the fast VM while every instruction interpreted
            warnings.warn(
                f"fast VM disarmed: PMU period {pmu_config.period} is below "
                f"the minimum ({costs.FAST_VM_MIN_PERIOD}); running the "
                "tier-0 interpreter",
                RuntimeWarning,
                stacklevel=2,
            )
        if tiering is not None and self._fast_blocks is not None:
            tiering.apply(self)
        stack_base = memory.alloc(STACK_BYTES, "stack")
        self.stack_base = stack_base
        self.stack_end = stack_base + STACK_BYTES
        self.regs[15] = self.stack_end  # stack grows downward

    # ------------------------------------------------------------------
    # concurrent serving (repro.serve)

    def set_query_tag(self, query_id: int) -> None:
        """Install ``query_id`` into the high half of the tag register.

        The serve scheduler calls this on every morsel dispatch — the
        context-switch half of query-qualified tagging.  Code compiled
        with ``qualify_tags`` only ever rewrites the low (task) half, so
        the pair survives any number of runtime calls."""
        current = self.regs[REG_TAG]
        task_half = current & TAG_TASK_MASK if isinstance(current, int) else 0
        self.regs[REG_TAG] = (query_id << TAG_QUERY_SHIFT) | task_half

    def pmu_cursor(self) -> tuple[int, int, int]:
        """The live sampling state: (countdown, jitter LCG, external-IP rotor).

        A serve worker transfers this between the per-query machines it
        multiplexes, so the PMU stays armed *across* queries — the event
        countdown never resets at a query boundary."""
        return (self._countdown, self._jitter, self._external_ip_rotor)

    def restore_pmu_cursor(self, cursor: tuple[int, int, int]) -> None:
        self._countdown, self._jitter, self._external_ip_rotor = cursor

    # ------------------------------------------------------------------
    # tiered execution (repro.vm.tiering)

    def install_tier2(self, blocks, guarded: bool = False) -> None:
        """Switch to a tier-2 block map, keeping tier 1 for deopt.

        Called by the tiering controller at commit points only — machine
        construction and morsel/unit boundaries — never mid-run, so the
        simulated state is always at a block boundary when the map swaps.
        ``guarded`` marks maps compiled with the forced-deopt guard hook;
        only those can demote mid-call, so only those need the
        re-reading tiered driver after promotion.
        """
        if self._fast_blocks is None or self.tier >= 2:
            return
        self._tier2_guarded = guarded
        self._tier1_blocks = self._fast_blocks
        self._fast_blocks = blocks
        self.tier = 2

    def _tier_deopt(self, ip: int) -> None:
        """Guard-miss landing pad, called from tier-2 code *after* the
        full deferred flush: by the time we get here registers, counters,
        predictor state and the PMU countdown are already exact.  Demotes
        the machine to its tier-1 map so the driver re-dispatches ``ip``
        unspecialized."""
        self._tier_guard = False
        self.deopt_events.append(ip)
        if self._tier1_blocks is not None:
            self._fast_blocks = self._tier1_blocks
            self.tier = 1
        if self._tiering is not None:
            self._tiering.note_deopt(self.program, ip)

    # ------------------------------------------------------------------
    # sampling

    def _take_sample(
        self, ip: int, memaddr: int | None, branch: bool | None = None
    ) -> None:
        config = self.pmu_config
        depth = len(self.call_stack)
        sample = Sample(
            ip=ip,
            tsc=self.state.cycles,
            registers=tuple(self.regs) if config.record_registers else None,
            callstack=(
                tuple(ret - 1 for ret in self.call_stack if ret >= 0)
                if config.record_callstack
                else None
            ),
            memaddr=memaddr if config.record_memaddr else None,
            branch_taken=branch,
        )
        cost = config.sample_cost(depth)
        cost += self.samples.record(sample)
        self.state.cycles += cost
        self.state.sampling_cycles += cost
        self.state.samples_taken += 1
        self._reset_countdown(config)

    def _reset_countdown(self, config) -> None:
        """Re-arm the sampling counter with a small deterministic jitter.

        A fixed period aliases with loop bodies whose event count divides it
        — every sample then hits the same instruction (the aliasing effect
        §4.1 warns about).  Hardware/perf avoid this by randomizing the
        period; we use a tiny LCG so runs stay reproducible."""
        period = config.period
        if period >= 16:
            self._jitter = (self._jitter * 1103515245 + 12345) & 0x7FFFFFFF
            spread = period >> 3
            self._countdown = period + self._jitter % spread - (spread >> 1)
        else:
            self._countdown = period

    def advance_external(
        self,
        fn_info: FunctionInfo,
        cycles: int,
        instructions: int,
        loads: int = 0,
        addr: int | None = None,
    ) -> None:
        """Account for work done outside interpreted code (kernel calls).

        The event stream still advances, so samples can land inside the
        external function's code range — this is how kernel samples appear
        in attribution reports (Table 2).
        """
        self.state.cycles += cycles
        self.state.instructions += instructions
        self.state.loads += loads
        self.state.kernel_cycles += cycles
        config = self.pmu_config
        if config is None:
            return
        event = config.event
        if event is Event.INSTRUCTIONS:
            increments = instructions
        elif event is Event.CYCLES:
            increments = cycles
        elif event is Event.LOADS:
            increments = loads
        else:
            increments = 0
        span = max(1, fn_info.end - fn_info.start)
        while increments >= self._countdown:
            increments -= self._countdown
            fake_ip = fn_info.start + (self._external_ip_rotor % span)
            self._external_ip_rotor += 1
            self._take_sample(fake_ip, addr)  # re-arms the countdown
        self._countdown -= increments

    # ------------------------------------------------------------------
    # execution

    def call(self, entry_ip: int, args: tuple = ()) -> int | float:
        """Run the function at ``entry_ip`` to completion; return r0."""
        regs = self.regs
        for i, value in enumerate(args):
            regs[i] = value
        if self._fast_blocks is not None:
            if self.tier >= 2 and not self._tier2_guarded:
                # Promoted and guard-free: the map cannot change mid-call
                # (deopt needs the guard hook) and counting stopped at
                # promotion, so the hoisted-map driver is exact and the
                # per-dispatch re-read would be pure overhead.
                self._run_fast(entry_ip)
            elif self._tiering is not None or self._tier1_blocks is not None:
                self._run_fast_tiered(entry_ip)
            else:
                self._run_fast(entry_ip)
        else:
            self._run(entry_ip)
        return regs[0]

    def _run(self, entry_ip: int) -> None:
        """Pure interpretation, one instruction at a time."""
        self.call_stack.append(-1)
        self._interp(entry_ip, None)

    def _run_fast(self, entry_ip: int) -> None:
        """Dual-mode driver: translated blocks plus interpreter fallback.

        A translated block only runs when neither a PMU sample nor an
        instruction-budget fault could fall due inside it: the live
        countdown must strictly exceed the block's worst-case event bound
        (``b[2]``), and the budget must cover the whole block.  When the
        check fails, ``_interp`` takes over instruction-by-instruction for
        the rest of the sampling window and suspends at the next block
        leader that passes the same check — so sample streams, counters,
        and VMError behavior are bit-identical to pure interpretation.
        """
        blocks = self._fast_blocks
        self.call_stack.append(-1)
        regs = self.regs
        words = self.memory.words
        state = self.state
        caches = self.caches
        predictor = self.predictor
        get = blocks.get
        config = self.pmu_config
        interp = self._interp
        ip = entry_ip
        if config is None:
            max_instructions = state.max_instructions
            while ip >= 0:
                b = get(ip)
                if b is not None and state.instructions + b[1] <= max_instructions:
                    ip = b[0](self, regs, words, state, caches, predictor)
                else:
                    ip = interp(ip, blocks)
        else:
            while ip >= 0:
                b = get(ip)
                if b is not None:
                    if (
                        self._countdown > b[2]
                        and state.instructions + b[1]
                        <= state.max_instructions
                    ):
                        ip = b[0](self, regs, words, state, caches, predictor)
                        continue
                    fb = b[3]
                    if (
                        fb is not None
                        and self._countdown > fb[2]
                        and state.instructions + fb[1]
                        <= state.max_instructions
                    ):
                        ip = fb[0](
                            self, regs, words, state, caches, predictor
                        )
                        continue
                ip = interp(ip, blocks)

    def _run_fast_tiered(self, entry_ip: int) -> None:
        """The dual-mode driver for tiered machines.

        Identical admission logic to :meth:`_run_fast`, but the block map
        is re-read from ``self._fast_blocks`` on every dispatch so a
        guard-miss demotion (``_tier_deopt``) or a controller promotion
        takes effect at the very next block boundary.  Tier-1 machines
        keep the hoisted-map driver and pay nothing for this.

        While the machine is still at tier 1 under a controller, every
        dispatch also bumps ``block_entries[ip]`` — the per-block
        execution counts the tiering controller aggregates into its
        rolling profile.  A loop head entered once per row (a join-probe
        chain) and one entered once per morsel (a scan loop) look the
        same statically; the entry counts tell them apart, and tier-2
        deferred sync is only worth compiling into the latter.  Once the
        program is promoted the profile is consumed, so tier-2 machines
        skip the counting entirely.
        """
        self.call_stack.append(-1)
        regs = self.regs
        words = self.memory.words
        state = self.state
        caches = self.caches
        predictor = self.predictor
        config = self.pmu_config
        interp = self._interp
        counting = self._tiering is not None and self.tier < 2
        entries = self.block_entries
        ip = entry_ip
        if config is None:
            max_instructions = state.max_instructions
            while ip >= 0:
                blocks = self._fast_blocks
                b = blocks.get(ip)
                if b is not None and state.instructions + b[1] <= max_instructions:
                    if counting:
                        entries[ip] = entries.get(ip, 0) + 1
                    ip = b[0](self, regs, words, state, caches, predictor)
                else:
                    ip = interp(ip, blocks)
        else:
            while ip >= 0:
                blocks = self._fast_blocks
                b = blocks.get(ip)
                if b is not None:
                    if (
                        self._countdown > b[2]
                        and state.instructions + b[1]
                        <= state.max_instructions
                    ):
                        if counting:
                            entries[ip] = entries.get(ip, 0) + 1
                        ip = b[0](self, regs, words, state, caches, predictor)
                        continue
                    fb = b[3]
                    if (
                        fb is not None
                        and self._countdown > fb[2]
                        and state.instructions + fb[1]
                        <= state.max_instructions
                    ):
                        # fallback dispatches are sampling-window tail
                        # artifacts, not workload structure — counting
                        # them would inflate the entry profile of every
                        # loop the window happens to cut (the interpreter
                        # handoff they replace was never counted either)
                        ip = fb[0](
                            self, regs, words, state, caches, predictor
                        )
                        continue
                ip = interp(ip, blocks)

    def _interp(self, entry_ip: int, blocks) -> int:  # noqa: C901 - interpreter core
        """Interpret from ``entry_ip``; return -1 once the run completes.

        In fast mode ``blocks`` is the translation map: the loop suspends
        and returns the current ip as soon as it stands on a translated
        block that is safe to run fast again (same condition as the
        ``_run_fast`` driver, checked *before* executing, so the two
        engines can never livelock handing the same ip back and forth).
        """
        code = self.program.code
        words = self.memory.words
        regs = self.regs
        caches = self.caches
        predictor = self.predictor
        state = self.state
        config = self.pmu_config
        sample_on_instr = config is not None and config.event is Event.INSTRUCTIONS
        sample_on_cycles = config is not None and config.event is Event.CYCLES
        sample_on_loads = config is not None and config.event is Event.LOADS
        sample_on_l1 = config is not None and config.event is Event.L1_MISS
        sample_on_brmiss = config is not None and config.event is Event.BRANCH_MISS
        has_blocks = blocks is not None
        blocks_get = blocks.get if has_blocks else None

        ip = entry_ip
        cycles = state.cycles
        instructions = state.instructions
        max_instructions = state.max_instructions
        # Opcode members hoisted to plain-int locals: LOAD_FAST in the
        # dispatch chain beats a class-attribute lookup per comparison.
        _NOP, _MOV, _MOVI, _LOAD, _STORE = (
            Opcode.NOP, Opcode.MOV, Opcode.MOVI, Opcode.LOAD, Opcode.STORE)
        _ADD, _SUB, _MUL, _SDIV, _SREM = (
            Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SDIV, Opcode.SREM)
        _AND, _OR, _XOR, _SHL, _SHR, _ROTR = (
            Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
            Opcode.ROTR)
        _ADDI, _MULI, _ANDI, _SHLI, _SHRI, _XORI = (
            Opcode.ADDI, Opcode.MULI, Opcode.ANDI, Opcode.SHLI, Opcode.SHRI,
            Opcode.XORI)
        _CMPEQ, _CMPNE, _CMPLT, _CMPLE, _CMPGT, _CMPGE = (
            Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
            Opcode.CMPGT, Opcode.CMPGE)
        _CMPEQI, _CMPNEI, _CMPLTI, _CMPLEI, _CMPGTI, _CMPGEI = (
            Opcode.CMPEQI, Opcode.CMPNEI, Opcode.CMPLTI, Opcode.CMPLEI,
            Opcode.CMPGTI, Opcode.CMPGEI)
        _FDIV, _CVTIF, _CVTFI, _CRC32, _SELECT, _MIN, _MAX = (
            Opcode.FDIV, Opcode.CVTIF, Opcode.CVTFI, Opcode.CRC32,
            Opcode.SELECT, Opcode.MIN, Opcode.MAX)
        _JMP, _BRZ, _BRNZ, _CALL, _RET, _KCALL, _HALT = (
            Opcode.JMP, Opcode.BRZ, Opcode.BRNZ, Opcode.CALL, Opcode.RET,
            Opcode.KCALL, Opcode.HALT)

        while True:
            if has_blocks:
                blk = blocks_get(ip)
                if blk is not None:
                    if (
                        instructions + blk[1] <= max_instructions
                        and (config is None or self._countdown > blk[2])
                    ):
                        state.cycles, state.instructions = (
                            cycles, instructions
                        )
                        return ip
                    fb = blk[3]
                    if (
                        fb is not None
                        and instructions + fb[1] <= max_instructions
                        and self._countdown > fb[2]
                    ):
                        state.cycles, state.instructions = (
                            cycles, instructions
                        )
                        return ip
            try:
                op, f1, f2, f3 = code[ip]
            except IndexError:
                state.cycles, state.instructions = cycles, instructions
                raise VMError("instruction fetch out of bounds", ip) from None
            instructions += 1
            if instructions > max_instructions:
                state.cycles, state.instructions = cycles, instructions
                raise VMError(f"instruction budget exceeded ({max_instructions})", ip)
            cost = 1
            memaddr = None

            if op == _LOAD:
                addr = regs[f2] + f3
                memaddr = addr
                if addr & 7 or addr < 8:
                    state.cycles, state.instructions = cycles, instructions
                    raise VMError(f"unaligned or null load at {addr:#x}", ip)
                try:
                    regs[f1] = words[addr >> 3]
                except IndexError:
                    state.cycles, state.instructions = cycles, instructions
                    raise VMError(f"load out of bounds at {addr:#x}", ip) from None
                cost = caches.access(addr)
                state.loads += 1
                if sample_on_loads:
                    self._countdown -= 1
                elif sample_on_l1 and cost > costs.LAT_L1:
                    self._countdown -= 1
            elif op == _STORE:
                addr = regs[f1] + f3
                memaddr = addr
                if addr & 7 or addr < 8:
                    state.cycles, state.instructions = cycles, instructions
                    raise VMError(f"unaligned or null store at {addr:#x}", ip)
                try:
                    words[addr >> 3] = regs[f2]
                except IndexError:
                    state.cycles, state.instructions = cycles, instructions
                    raise VMError(f"store out of bounds at {addr:#x}", ip) from None
                caches.access(addr)
                state.stores += 1
                cost = costs.CYCLES_STORE
            elif op == _ADDI:
                regs[f1] = regs[f2] + f3
            elif op == _ADD:
                regs[f1] = regs[f2] + regs[f3]
            elif op == _MOV:
                regs[f1] = regs[f2]
            elif op == _MOVI:
                regs[f1] = f2
            elif op == _CMPEQ:
                regs[f1] = 1 if regs[f2] == regs[f3] else 0
            elif op == _CMPNE:
                regs[f1] = 1 if regs[f2] != regs[f3] else 0
            elif op == _CMPLT:
                regs[f1] = 1 if regs[f2] < regs[f3] else 0
            elif op == _CMPLE:
                regs[f1] = 1 if regs[f2] <= regs[f3] else 0
            elif op == _CMPGT:
                regs[f1] = 1 if regs[f2] > regs[f3] else 0
            elif op == _CMPGE:
                regs[f1] = 1 if regs[f2] >= regs[f3] else 0
            elif op == _CMPEQI:
                regs[f1] = 1 if regs[f2] == f3 else 0
            elif op == _CMPNEI:
                regs[f1] = 1 if regs[f2] != f3 else 0
            elif op == _CMPLTI:
                regs[f1] = 1 if regs[f2] < f3 else 0
            elif op == _CMPLEI:
                regs[f1] = 1 if regs[f2] <= f3 else 0
            elif op == _CMPGTI:
                regs[f1] = 1 if regs[f2] > f3 else 0
            elif op == _CMPGEI:
                regs[f1] = 1 if regs[f2] >= f3 else 0
            elif op == _BRZ:
                cond_true = regs[f1] != 0
                taken = not cond_true
                miss = predictor.record(ip, taken)
                cost = costs.CYCLES_BRANCH + (costs.CYCLES_BRANCH_MISS if miss else 0)
                if miss and sample_on_brmiss:
                    self._countdown -= 1
                if taken:
                    cycles += cost
                    if sample_on_instr:
                        self._countdown -= 1
                    elif sample_on_cycles:
                        self._countdown -= cost
                    if self._countdown <= 0 and config is not None:
                        state.cycles, state.instructions = cycles, instructions
                        self._take_sample(ip, None, branch=cond_true)
                        cycles, instructions = state.cycles, state.instructions
                    ip = f2
                    continue
                cycles += cost
                ip += 1
                if sample_on_instr:
                    self._countdown -= 1
                elif sample_on_cycles:
                    self._countdown -= cost
                if self._countdown <= 0 and config is not None:
                    state.cycles, state.instructions = cycles, instructions
                    self._take_sample(ip - 1, None, branch=cond_true)
                    cycles, instructions = state.cycles, state.instructions
                continue
            elif op == _BRNZ:
                taken = regs[f1] != 0
                miss = predictor.record(ip, taken)
                cost = costs.CYCLES_BRANCH + (costs.CYCLES_BRANCH_MISS if miss else 0)
                if miss and sample_on_brmiss:
                    self._countdown -= 1
                if taken:
                    cycles += cost
                    if sample_on_instr:
                        self._countdown -= 1
                    elif sample_on_cycles:
                        self._countdown -= cost
                    if self._countdown <= 0 and config is not None:
                        state.cycles, state.instructions = cycles, instructions
                        self._take_sample(ip, None, branch=True)
                        cycles, instructions = state.cycles, state.instructions
                    ip = f2
                    continue
                cycles += cost
                ip += 1
                if sample_on_instr:
                    self._countdown -= 1
                elif sample_on_cycles:
                    self._countdown -= cost
                if self._countdown <= 0 and config is not None:
                    state.cycles, state.instructions = cycles, instructions
                    self._take_sample(ip - 1, None, branch=False)
                    cycles, instructions = state.cycles, state.instructions
                continue
            elif op == _JMP:
                cycles += costs.CYCLES_BRANCH
                if sample_on_instr:
                    self._countdown -= 1
                elif sample_on_cycles:
                    self._countdown -= costs.CYCLES_BRANCH
                if self._countdown <= 0 and config is not None:
                    state.cycles, state.instructions = cycles, instructions
                    self._take_sample(ip, None)
                    cycles, instructions = state.cycles, state.instructions
                ip = f1
                continue
            elif op == _SUB:
                regs[f1] = regs[f2] - regs[f3]
            elif op == _MUL:
                r = regs[f2] * regs[f3]
                if isinstance(r, int):
                    r &= _MASK64
                    if r & _SIGN64:
                        r -= 1 << 64
                regs[f1] = r
                cost = costs.CYCLES_MUL
            elif op == _MULI:
                r = regs[f2] * f3
                if isinstance(r, int):
                    r &= _MASK64
                    if r & _SIGN64:
                        r -= 1 << 64
                regs[f1] = r
                cost = costs.CYCLES_MUL
            elif op == _SDIV:
                try:
                    regs[f1] = _sdiv(regs[f2], regs[f3])
                except ZeroDivisionError:
                    state.cycles, state.instructions = cycles, instructions
                    raise VMError("division by zero", ip) from None
                cost = costs.CYCLES_DIV
            elif op == _SREM:
                b = regs[f3]
                if b == 0:
                    state.cycles, state.instructions = cycles, instructions
                    raise VMError("remainder by zero", ip)
                a = regs[f2]
                regs[f1] = a - b * _sdiv(a, b)
                cost = costs.CYCLES_DIV
            elif op == _AND:
                regs[f1] = regs[f2] & regs[f3]
            elif op == _OR:
                regs[f1] = regs[f2] | regs[f3]
            elif op == _XOR:
                regs[f1] = regs[f2] ^ regs[f3]
            elif op == _SHL:
                regs[f1] = (regs[f2] << (regs[f3] & 63)) & _MASK64
            elif op == _SHR:
                regs[f1] = (regs[f2] & _MASK64) >> (regs[f3] & 63)
            elif op == _ROTR:
                v = regs[f2] & _MASK64
                s = regs[f3] & 63
                regs[f1] = ((v >> s) | (v << (64 - s))) & _MASK64
            elif op == _ANDI:
                regs[f1] = regs[f2] & f3
            elif op == _SHLI:
                regs[f1] = (regs[f2] << (f3 & 63)) & _MASK64
            elif op == _SHRI:
                regs[f1] = (regs[f2] & _MASK64) >> (f3 & 63)
            elif op == _XORI:
                regs[f1] = regs[f2] ^ f3
            elif op == _FDIV:
                b = regs[f3]
                if b == 0:
                    state.cycles, state.instructions = cycles, instructions
                    raise VMError("fdiv by zero", ip)
                regs[f1] = regs[f2] / b
                cost = costs.CYCLES_DIV
            elif op == _CVTIF:
                regs[f1] = float(regs[f2])
            elif op == _CVTFI:
                regs[f1] = int(regs[f2])
            elif op == _CRC32:
                regs[f1] = crc32_mix(regs[f2], regs[f3])
                cost = costs.CYCLES_CRC32
            elif op == _SELECT:
                rt, rf = f3
                regs[f1] = regs[rt] if regs[f2] else regs[rf]
            elif op == _MIN:
                a, b = regs[f2], regs[f3]
                regs[f1] = a if a <= b else b
            elif op == _MAX:
                a, b = regs[f2], regs[f3]
                regs[f1] = a if a >= b else b
            elif op == _CALL:
                cost = costs.CYCLES_CALL
                cycles += cost
                self.call_stack.append(ip + 1)
                if len(self.call_stack) > 256:
                    state.cycles, state.instructions = cycles, instructions
                    raise VMError("call stack overflow", ip)
                if sample_on_instr:
                    self._countdown -= 1
                elif sample_on_cycles:
                    self._countdown -= cost
                if self._countdown <= 0 and config is not None:
                    state.cycles, state.instructions = cycles, instructions
                    self._take_sample(ip, None)
                    cycles, instructions = state.cycles, state.instructions
                ip = f1
                continue
            elif op == _RET:
                cost = costs.CYCLES_RET
                cycles += cost
                ret = self.call_stack.pop()
                if sample_on_instr:
                    self._countdown -= 1
                elif sample_on_cycles:
                    self._countdown -= cost
                if self._countdown <= 0 and config is not None:
                    state.cycles, state.instructions = cycles, instructions
                    self._take_sample(ip, None)
                    cycles, instructions = state.cycles, state.instructions
                if ret < 0:
                    state.cycles, state.instructions = cycles, instructions
                    return -1
                ip = ret
                continue
            elif op == _KCALL:
                state.cycles, state.instructions = cycles, instructions
                if self.kernel is None:
                    raise VMError("kernel call without a kernel", ip)
                self.kernel.call(self, f1)
                cycles, instructions = state.cycles, state.instructions
                ip += 1
                continue
            elif op == _NOP:
                pass
            elif op == _HALT:
                state.cycles, state.instructions = cycles, instructions
                self.call_stack.pop()
                return -1
            else:
                state.cycles, state.instructions = cycles, instructions
                raise VMError(f"illegal opcode {op}", ip)

            cycles += cost
            if sample_on_instr:
                self._countdown -= 1
            elif sample_on_cycles:
                self._countdown -= cost
            if self._countdown <= 0 and config is not None:
                state.cycles, state.instructions = cycles, instructions
                self._take_sample(ip, memaddr)
                cycles, instructions = state.cycles, state.instructions
            ip += 1
