"""Flat simulated memory with a bump allocator.

The machine is a 64-bit word machine: every load/store moves one 8-byte,
8-byte-aligned word.  Addresses are byte addresses (so cache simulation and
memory-access profiles speak the same units as the paper) but storage is a
Python list of words for interpreter speed.  A word may hold a Python int
(i64 semantics) or a float (f64); the backend's type discipline guarantees
generated code never confuses the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VMError

WORD = 8
NULL = 0
CACHE_LINE = 64


@dataclass(frozen=True)
class Region:
    """A named allocation extent, used for debugging and report labels."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class Memory:
    """Word-addressable simulated memory with bump allocation.

    Address 0 is reserved as the null pointer: allocation starts at one word
    past zero so generated code can use ``0`` for "no entry" (e.g. empty hash
    chain slots) and any dereference of it faults.
    """

    def __init__(self, size_bytes: int = 1 << 24):
        if size_bytes % WORD:
            raise ValueError("memory size must be word aligned")
        self.words: list = [0] * (size_bytes // WORD)
        self.size = size_bytes
        self._brk = WORD  # keep address 0 unmapped (null)
        self.regions: list[Region] = []

    # -- allocation ------------------------------------------------------

    def alloc(self, nbytes: int, name: str = "anon", align: int = WORD) -> int:
        """Bump-allocate ``nbytes`` (rounded up to words), zero-filled.

        ``align`` must be a power-of-two multiple of the word size.  Storage
        segments allocate with ``align=CACHE_LINE`` so every segment starts on
        a cache-line boundary and the L1/L2 set a scan maps to is a function
        of the layout alone, not of whatever was allocated before it.
        """
        if align < WORD or align & (align - 1):
            raise VMError(f"bad alignment {align}")
        nbytes = (nbytes + WORD - 1) & ~(WORD - 1)
        base = (self._brk + align - 1) & ~(align - 1)
        new_brk = base + nbytes
        if new_brk > self.size:
            self._grow(new_brk)
        # Freshly bumped memory may contain stale data from a released arena;
        # zero the alignment gap as well so no stale word stays readable.
        zero_from = self._brk // WORD
        self._brk = new_brk
        zero_to = new_brk // WORD
        for i in range(zero_from, zero_to):
            self.words[i] = 0
        self.regions.append(Region(name, base, nbytes))
        return base

    def mark(self) -> int:
        """Return the current break, for arena-style release."""
        return self._brk

    def release(self, mark: int) -> None:
        """Release all allocations made after :meth:`mark` returned ``mark``."""
        if not WORD <= mark <= self._brk:
            raise VMError(f"bad release mark {mark}")
        self._brk = mark
        self.regions = [r for r in self.regions if r.base < mark]

    def _grow(self, needed: int) -> None:
        new_size = self.size
        while new_size < needed:
            new_size *= 2
        self.words.extend([0] * ((new_size - self.size) // WORD))
        self.size = new_size

    # -- access (checked; the interpreter fast path bypasses these) -------

    def read(self, addr: int):
        if addr & 7 or not WORD <= addr < self._brk:
            raise VMError(f"bad read at {addr:#x}")
        return self.words[addr // WORD]

    def write(self, addr: int, value) -> None:
        if addr & 7 or not WORD <= addr < self._brk:
            raise VMError(f"bad write at {addr:#x}")
        self.words[addr // WORD] = value

    def region_of(self, addr: int) -> Region | None:
        """Find the allocation containing ``addr`` (linear scan; debug only)."""
        for region in reversed(self.regions):
            if region.contains(addr):
                return region
        return None

    def used_bytes(self) -> int:
        return self._brk
