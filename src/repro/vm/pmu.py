"""The PEBS-like Performance Monitoring Unit.

The PMU counts a configured hardware event and, every ``period`` occurrences,
records a sample into an in-memory buffer — exactly the structure of Intel
PEBS as the paper describes it (§2.2): the record is written by the
"hardware" at a fixed cost, the kernel is only involved to drain a full
buffer, and optional payloads (register file, linear memory address) cost
extra.  Call-stack capture is *not* a PEBS payload: it requires taking an
interrupt and walking frames, which is what makes it an order of magnitude
more expensive (Fig. 13).

Timestamps are the machine's cycle counter — the TSC analogue; the paper had
to patch the Linux kernel to get these, we simply expose them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.vm import costs
from repro.vm.isa import REG_TAG, TAG_QUERY_SHIFT


class Event(enum.Enum):
    """Sampleable hardware events (a subset of the paper's)."""

    INSTRUCTIONS = "INST_RETIRED.PREC_DIST"
    CYCLES = "CPU_CLK_UNHALTED"
    LOADS = "MEM_INST_RETIRED.ALL_LOADS"
    L1_MISS = "MEM_LOAD_RETIRED.L1_MISS"
    BRANCH_MISS = "BR_MISP_RETIRED.ALL_BRANCHES"


@dataclass(frozen=True)
class PmuConfig:
    """What to sample and what to record with each sample."""

    event: Event = Event.INSTRUCTIONS
    period: int = costs.DEFAULT_PERIOD_INSTRUCTIONS
    record_registers: bool = False
    record_callstack: bool = False
    record_memaddr: bool = False

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("sampling period must be positive")

    def sample_cost(self, callstack_depth: int = 0) -> int:
        """Cycles charged for recording one sample under this config."""
        if self.record_callstack:
            cost = costs.INTERRUPT_CYCLES
            cost += costs.CALLSTACK_FRAME_CYCLES * max(1, callstack_depth)
        else:
            cost = costs.PEBS_RECORD_CYCLES
        if self.record_registers:
            cost += costs.PEBS_REGS_EXTRA_CYCLES
        if self.record_memaddr:
            cost += costs.PEBS_MEMADDR_EXTRA_CYCLES
        return cost

    def sample_size_bytes(self) -> int:
        """Stored size of one sample record (§6.2 storage discussion)."""
        size = 16  # ip + tsc
        if self.record_registers:
            size += 38  # paper: 54 B total with IP, time, registers
        if self.record_memaddr:
            size += 8
        if self.record_callstack:
            size += 211  # paper: 265 B with call-stack information
        return size


@dataclass(frozen=True)
class Sample:
    """One profiling sample."""

    ip: int
    tsc: int
    registers: tuple | None = None
    callstack: tuple[int, ...] | None = None
    memaddr: int | None = None
    # for samples landing on a conditional branch: whether the branch
    # *condition* was true (stable under BRZ/BRNZ layout inversion) — the
    # LBR-style payload profile-guided optimization consumes
    branch_taken: bool | None = None

    @property
    def tag_value(self) -> int | None:
        """Raw (query-id, component-tag) pair captured in the tag register."""
        if self.registers is None:
            return None
        value = self.registers[REG_TAG]
        return value if isinstance(value, int) else None

    @property
    def query_id(self) -> int | None:
        """The query-id half of the captured tag (0 outside repro.serve)."""
        value = self.tag_value
        return None if value is None else value >> TAG_QUERY_SHIFT


@dataclass
class SampleBuffer:
    """The PEBS buffer plus drain bookkeeping.

    ``samples`` accumulates everything ever recorded (the drained output the
    post-processing phase reads); ``pending`` models the hardware buffer
    occupancy that forces kernel flushes.
    """

    capacity: int = costs.PEBS_BUFFER_SAMPLES
    samples: list[Sample] = field(default_factory=list)
    pending: int = 0
    flushes: int = 0
    flush_cycles: int = 0

    def record(self, sample: Sample) -> int:
        """Store a sample; return extra cycles if a kernel flush occurred."""
        self.samples.append(sample)
        self.pending += 1
        if self.pending >= self.capacity:
            drained = self.pending
            self.pending = 0
            self.flushes += 1
            cost = drained * costs.BUFFER_FLUSH_PER_SAMPLE
            self.flush_cycles += cost
            return cost
        return 0

    def storage_bytes(self, config: PmuConfig) -> int:
        return len(self.samples) * config.sample_size_bytes()
