"""Tiered adaptive execution: profile-driven trace specialization.

The controller closes the loop the paper's multi-level profiles open:
tier 0 is the exact interpreter, tier 1 the template-translated
superblocks (:mod:`repro.vm.translate`), and tier 2 a *recompilation* of
the same program specialized against the rolling profile — per-program
retired-instruction counts decide hotness, and a snapshot of the live
branch predictor's 2-bit counters (the observed branch truth-rates)
drives the specialized trace layout: deferred counter/register sync in
loop superblocks, saturated-counter fast paths on strongly-biased
branches, cold arms outlined behind guards, and larger superblock trees.

Promotion is a pure wall-clock optimization: tier choice never changes
simulated counters, sample streams, or results (the fuzz oracle's
``tiered`` config enforces this bit-exactly).  Every specialized loop
re-checks its guards at the back edge; a miss flushes the deferred state
— registers, counters, PMU countdown, predictor — exactly and deopts to
tier 1, so in-flight sampling windows stay bit-identical.

Commit points: new tier-2 maps install only at machine construction and
at :meth:`apply` calls, which the serve scheduler issues at morsel
boundaries (its unit dispatch) — an in-flight long query re-tiers at the
next morsel, never mid-block.
"""

from __future__ import annotations

import weakref

from repro.vm import costs
from repro.vm.isa import Program
from repro.vm.translate import translate_program, translation_key

# Worst-case event bound allowed for a tier-2 armed superblock tree, as
# a right-shift of the sampling period.  Tier 1 uses 1/8 of the period
# (see Machine.__init__); tier-2 traces keep the same cap — the
# segmented linear fallbacks make rejection cheap, but a larger cap also
# raises the bound that gates *loop re-entry*, and that trade measures
# as a wash at the serve period.
TIER2_BOUND_SHIFT = 3


def _tier2_bound_cap(config) -> int:
    return config.period >> TIER2_BOUND_SHIFT if config is not None else 0


class TieringController:
    """Decides when a program graduates from tier 1 to tier 2.

    One controller serves one execution context (a ``Database`` or a
    ``QueryService``); it accumulates retired instructions per program,
    and once a program crosses ``hot_instructions`` it recompiles the
    program's translation at tier 2, seeded with a snapshot of the
    observing machine's predictor counters as the branch-bias profile.

    ``guard_hook=True`` compiles the test-only forced-deopt guard
    (``machine._tier_guard``) into every specialized loop edge; the
    production default pays zero cost for it.  ``trip_guard=True``
    additionally arms that guard on every machine the controller
    promotes, so the very first specialized loop edge deoptimizes —
    the fuzz oracle uses it to drive the deopt path through the whole
    engine stack and still demand bit-identical machine state.
    """

    def __init__(
        self,
        hot_instructions: int | None = None,
        guard_hook: bool = False,
        trip_guard: bool = False,
    ):
        self.hot_instructions = (
            costs.TIER2_HOT_INSTRUCTIONS
            if hot_instructions is None
            else hot_instructions
        )
        self.guard_hook = guard_hook
        self.trip_guard = trip_guard and guard_hook
        self.version = 0  # bumped on every promotion; machines compare epochs
        self.promotions = 0
        self.deopts = 0
        self.deopt_sites: list[int] = []
        # Program is an eq-comparing dataclass (unhashable), so the
        # profile is keyed by identity with weakref finalizers keeping
        # the maps from pinning dead programs.
        self._counts: dict[int, int] = {}
        self._entries: dict[int, dict[int, int]] = {}
        self._hot: dict[int, bool] = {}

    def _key(self, program: Program) -> int:
        pid = id(program)
        if pid not in self._counts:
            self._counts[pid] = 0
            self._entries[pid] = {}
            weakref.finalize(program, self._forget, pid)
        return pid

    def _forget(self, pid: int) -> None:
        self._counts.pop(pid, None)
        self._entries.pop(pid, None)
        self._hot.pop(pid, None)

    # ------------------------------------------------------------------
    # profile consumption

    def observe(self, machine, instructions: int) -> bool:
        """Feed ``instructions`` retired by ``machine`` into the profile.

        Returns True when this observation promoted the program.  The
        observing machine's private branch predictor is the rolling
        truth-rate source: its 2-bit counters at observation time are the
        bias snapshot the tier-2 recompile specializes against.
        """
        pid = self._key(machine.program)
        count = self._counts[pid] + instructions
        self._counts[pid] = count
        entries = self._entries[pid]
        for ip, n in machine.block_entries.items():
            entries[ip] = entries.get(ip, 0) + n
        machine.block_entries.clear()
        if count < self.hot_instructions or self._hot.get(pid):
            return False
        self._hot[pid] = True
        self._promote(machine)
        return True

    def _promote(self, machine) -> None:
        program = machine.program
        config = machine.pmu_config
        event = config.event if config is not None else None
        bound_cap = _tier2_bound_cap(config)
        key = translation_key(event, bound_cap, 2, self.guard_hook)
        cache = getattr(program, "_vm_translations", None)
        if cache is None:
            cache = {}
            program._vm_translations = cache
        entry = cache.get(key)
        if entry is None or entry.stale_for(program):
            pid = self._key(program)
            entry = translate_program(
                program, event, bound_cap, tier=2,
                bias=dict(machine.predictor.counters),
                entries=dict(self._entries[pid]),
                hot_weight=self._counts[pid],
                guard_hook=self.guard_hook,
            )
            cache[key] = entry
        self.promotions += 1
        self.version += 1
        # the observing machine re-tiers immediately (it sits at a call
        # boundary); everyone else picks it up at their next apply()
        machine._tier_epoch = self.version
        machine.install_tier2(entry.blocks, guarded=self.guard_hook)
        if self.trip_guard:
            machine._tier_guard = True

    # ------------------------------------------------------------------
    # commit points

    def apply(self, machine) -> None:
        """Install any pending tier-2 map on ``machine``.

        Cheap enough for per-dispatch use: an int compare unless a
        promotion happened since this machine last looked.  The serve
        scheduler calls this on every unit dispatch, which is what makes
        morsel boundaries the re-tier commit points.
        """
        if machine._tier_epoch == self.version:
            return
        machine._tier_epoch = self.version
        if machine._fast_blocks is None or machine.tier >= 2:
            return
        config = machine.pmu_config
        event = config.event if config is not None else None
        bound_cap = _tier2_bound_cap(config)
        cache = getattr(machine.program, "_vm_translations", None)
        if not cache:
            return
        entry = cache.get(
            translation_key(event, bound_cap, 2, self.guard_hook)
        )
        if entry is not None and not entry.stale_for(machine.program):
            machine.install_tier2(entry.blocks, guarded=self.guard_hook)
            if self.trip_guard:
                machine._tier_guard = True

    # ------------------------------------------------------------------
    # deoptimization accounting

    def note_deopt(self, program, ip: int) -> None:
        self.deopts += 1
        self.deopt_sites.append(ip)

    def tier_for(self, program) -> int:
        """The tier a fresh machine for ``program`` would start at."""
        return 2 if self._hot.get(id(program)) else 1

    def stats(self) -> dict:
        return {
            "promotions": self.promotions,
            "deopts": self.deopts,
            "hot_programs": sum(1 for hot in self._hot.values() if hot),
        }
